//! The engine refactor must not move a single bit: these goldens pin the
//! exact iteration counts, oracle-query counts, and recovered keys the
//! pre-engine free-function attacks produced, now reproduced through
//! [`attacks::engine::run`]. They also pin the interrupt semantics: budgets
//! stop attacks at the oracle boundary, cancels and deadlines stop them
//! mid-solve, and an interrupted-then-resumed session lands on the same key
//! by the same trajectory as an uninterrupted run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use attacks::appsat::{AppSatConfig, AppSatEngine};
use attacks::double_dip::{DoubleDipConfig, DoubleDipEngine};
use attacks::dyn_unlock::{DynUnlockConfig, DynUnlockEngine, ScanSessionOracle};
use attacks::engine::{
    self, AttackCtl, AttackEngine, Interrupt, ProgressEvent, StepStatus, ENGINE_NAMES,
};
use attacks::hill_climbing::{HillClimbConfig, HillClimbEngine};
use attacks::sat::{SatAttackConfig, SatEngine};
use attacks::sensitization::{SensitizationConfig, SensitizationEngine};
use attacks::{CombOracle, FailureReason, Oracle};
use locking::random::RllConfig;
use locking::LockedCircuit;
use netlist::samples;

fn rll(circuit: &netlist::Circuit, key_bits: usize, seed: u64) -> LockedCircuit {
    locking::random::lock(circuit, &RllConfig { key_bits, seed }).expect("lockable")
}

fn key_string(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Runs `engine` through the unified driver and asserts the exact golden
/// (iterations, oracle queries, key bits) captured from the pre-engine code.
fn assert_golden(
    engine: &dyn AttackEngine,
    locked: &LockedCircuit,
    iterations: usize,
    queries: usize,
    key: &str,
) {
    let mut oracle = CombOracle::from_locked(locked).expect("valid lock");
    let out = engine::run(engine, locked, &mut oracle, &mut AttackCtl::new());
    assert_eq!(out.iterations, iterations, "{}: iterations", engine.name());
    assert_eq!(out.oracle_queries, queries, "{}: queries", engine.name());
    let got = key_string(out.key.as_deref().unwrap_or_else(|| {
        panic!("{}: expected key, got failure {:?}", engine.name(), out.failure)
    }));
    assert_eq!(got, key, "{}: recovered key", engine.name());
}

#[test]
fn sat_goldens_are_bit_identical_to_pre_engine_attack() {
    let e = SatEngine { config: SatAttackConfig::default() };
    assert_golden(&e, &rll(&samples::ripple_adder(4), 8, 3), 4, 4, "00010100");
    let comb = netlist::generate::random_comb(41, 10, 6, 150).unwrap();
    assert_golden(&e, &rll(&comb, 12, 7), 6, 6, "000011101111");
}

#[test]
fn appsat_golden_is_bit_identical_to_pre_engine_attack() {
    let e = AppSatEngine { config: AppSatConfig::default() };
    assert_golden(&e, &rll(&samples::ripple_adder(4), 8, 9), 3, 3, "11011011");
}

#[test]
fn double_dip_golden_is_bit_identical_to_pre_engine_attack() {
    let e = DoubleDipEngine { config: DoubleDipConfig::default() };
    assert_golden(&e, &rll(&samples::ripple_adder(3), 6, 2), 3, 3, "011011");
}

#[test]
fn hill_climbing_golden_is_bit_identical_to_pre_engine_attack() {
    let config = HillClimbConfig { seed: 0xC11B, ..Default::default() };
    let e = HillClimbEngine { config };
    assert_golden(&e, &rll(&samples::ripple_adder(4), 8, 6), 3, 64, "10110110");
}

#[test]
fn sensitization_golden_is_bit_identical_to_pre_engine_attack() {
    let e = SensitizationEngine {
        config: SensitizationConfig { probes_per_bit: 16 },
    };
    assert_golden(&e, &rll(&samples::ripple_adder(8), 3, 21), 48, 48, "111");
}

/// Records every stimulus an oracle answers, so the golden can pin the
/// exact distinguishing-session sequence, not just its length.
struct RecordingOracle<'a> {
    inner: &'a mut dyn Oracle,
    stimuli: Vec<String>,
}

impl Oracle for RecordingOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }
    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }
    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        self.stimuli.push(key_string(input));
        self.inner.query(input)
    }
    fn queries_attempted(&self) -> usize {
        self.inner.queries_attempted()
    }
}

/// DynUnlock on the scan-obfuscation battery workload: the exact frame
/// layout of the unrolled session, the distinguishing-session sequence the
/// attack sent through the scan interface, and the recovered LFSR seed are
/// all pinned bit-for-bit.
#[test]
fn dyn_unlock_golden_pins_the_session_frame_sequence() {
    use locking::scan_obfuscation::{self, ScanObfConfig, UnrollOptions};

    let original = samples::counter(8);
    let locked = scan_obfuscation::lock(
        &original,
        &ScanObfConfig {
            key_bits: 8,
            num_chains: 2,
            invert_spacing: 2,
            swap_spacing: 2,
            seed: 3,
        },
    )
    .expect("lockable");
    let unrolled = locked.unroll(&UnrollOptions::default()).expect("acyclic");

    // Frame layout golden: 4 load shifts + capture + 4 unload shifts, two
    // bits per frame, eight capture outputs.
    assert_eq!(unrolled.unroll_depth(), 9);
    assert_eq!(unrolled.frame_bits(), 2);
    assert_eq!(unrolled.capture_outputs, 8);
    assert_eq!(unrolled.locked.circuit.primary_outputs().len(), 24);

    let mut chip = ScanSessionOracle::new(&locked, &unrolled).expect("chip oracle");
    let mut oracle = RecordingOracle { inner: &mut chip, stimuli: Vec::new() };
    let engine = DynUnlockEngine { config: DynUnlockConfig::for_session(&unrolled) };
    let out = engine::run(&engine, &unrolled.locked, &mut oracle, &mut AttackCtl::new());

    assert_eq!(out.iterations, 1, "dyn_unlock: iterations");
    assert_eq!(out.oracle_queries, 1, "dyn_unlock: queries");
    assert_eq!(
        key_string(out.key.as_deref().expect("seed recovered")),
        "10110100",
        "dyn_unlock: recovered seed"
    );
    // The distinguishing-session stimulus: 8 scan-stream bits (cycle-major,
    // two chains × four load cycles) then the single primary input.
    assert_eq!(oracle.stimuli, vec!["011011000".to_string()]);
    assert!(
        attacks::verify::key_exact_counterexample(&unrolled.locked, out.key.as_ref().unwrap())
            .is_none(),
        "recovered seed must be session-exact"
    );
}

#[test]
fn by_name_covers_every_engine_and_rejects_unknowns() {
    for name in ENGINE_NAMES {
        let e = engine::by_name(name).unwrap_or_else(|| panic!("missing engine {name}"));
        assert_eq!(e.name(), name);
    }
    assert_eq!(engine::by_name("double-dip").unwrap().name(), "double_dip");
    assert_eq!(engine::by_name("hill-climb").unwrap().name(), "hill_climbing");
    assert_eq!(engine::by_name("sensitize").unwrap().name(), "sensitization");
    assert!(engine::by_name("smt").is_none());
}

#[test]
fn progress_sink_sees_stages_and_monotonic_milestones() {
    let locked = rll(&samples::ripple_adder(4), 8, 3);
    let mut oracle = CombOracle::from_locked(&locked).unwrap();
    let events: Arc<Mutex<Vec<ProgressEvent>>> = Arc::default();
    let sink = Arc::clone(&events);
    let mut ctl =
        AttackCtl::new().with_progress(Box::new(move |e| sink.lock().unwrap().push(*e)));
    let out = engine::run(
        &SatEngine { config: SatAttackConfig::default() },
        &locked,
        &mut oracle,
        &mut ctl,
    );
    assert!(out.succeeded());
    let events = events.lock().unwrap();
    let stages: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::Stage { name } => Some(*name),
            ProgressEvent::Milestone(_) => None,
        })
        .collect();
    assert_eq!(stages, ["dip-search", "extract"]);
    let milestones: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::Milestone(m) => Some(*m),
            ProgressEvent::Stage { .. } => None,
        })
        .collect();
    assert_eq!(milestones.len(), out.iterations, "one milestone per DIP");
    for w in milestones.windows(2) {
        assert!(w[1].iterations > w[0].iterations, "iterations monotonic");
        assert!(w[1].oracle_queries > w[0].oracle_queries, "queries monotonic");
    }
    assert_eq!(milestones.last().unwrap().oracle_queries as usize, out.oracle_queries);
}

#[test]
fn query_budget_stops_the_attack_at_the_oracle_boundary() {
    let locked = rll(&samples::ripple_adder(4), 8, 3);
    let mut oracle = CombOracle::from_locked(&locked).unwrap();
    let mut ctl = AttackCtl::new().with_query_budget(Some(2));
    let out = engine::run(
        &SatEngine { config: SatAttackConfig::default() },
        &locked,
        &mut oracle,
        &mut ctl,
    );
    assert_eq!(out.failure, Some(FailureReason::QueryBudgetExhausted));
    // The budget is enforced *before* the oracle is consulted: exactly the
    // budgeted number of queries reached it, and the ledger agrees.
    assert_eq!(oracle.queries_attempted(), 2);
    assert_eq!(ctl.queries(), 2);
}

/// An interrupted-then-resumed session recovers the same key by the same
/// trajectory as an uninterrupted run: the budget interrupt fires at the
/// oracle boundary, the pending distinguishing input is stashed, and the
/// resumed session replays it without re-solving.
#[test]
fn interrupted_then_resumed_session_matches_uninterrupted_run() {
    qcheck::qcheck!(
        "resume_equals_uninterrupted",
        qcheck::Config::with_cases(12),
        (lock_seed, budget) in (0u64..40, 1u64..5) => {
            let circuit = samples::ripple_adder(4);
            let locked = rll(&circuit, 8, lock_seed);
            let engine = SatEngine { config: SatAttackConfig::default() };

            let mut oracle_a = CombOracle::from_locked(&locked).unwrap();
            let baseline =
                engine::run(&engine, &locked, &mut oracle_a, &mut AttackCtl::new());

            let mut oracle_b = CombOracle::from_locked(&locked).unwrap();
            let mut session = engine.start(&locked, &mut oracle_b);
            let mut budgeted = AttackCtl::new().with_query_budget(Some(budget));
            let mut interrupted = false;
            loop {
                match session.step(&mut budgeted) {
                    StepStatus::Running => {}
                    StepStatus::Done => break,
                    StepStatus::Interrupted(why) => {
                        qcheck::prop_assert_eq!(why, Interrupt::QueryBudgetExhausted);
                        interrupted = true;
                        break;
                    }
                }
            }
            // Resume with a fresh, unbudgeted ctl.
            let mut open = AttackCtl::new();
            let resumed = engine::drive(session.as_mut(), &mut open);
            qcheck::prop_assert_eq!(&resumed.key, &baseline.key);
            qcheck::prop_assert_eq!(resumed.iterations, baseline.iterations);
            qcheck::prop_assert_eq!(resumed.oracle_queries, baseline.oracle_queries);
            // When the budget was genuinely smaller than the attack's needs
            // the first drive really was cut short.
            if (budget as usize) < baseline.oracle_queries {
                qcheck::prop_assert!(interrupted);
            }
        });
}

/// A cancel raised while the SAT attack is deep in a large-circuit solve
/// takes effect promptly: the conflict-granularity solver hook (not just the
/// per-DIP poll) observes the flag mid-solve.
#[test]
fn cancel_interrupts_a_sat_attack_on_a_large_circuit_mid_solve() {
    // ~20k gates, 32 key bits: every miter solve is big enough that a whole
    // DIP iteration takes far longer than the cancel latency we assert.
    let comb = netlist::generate::random_comb(7, 48, 24, 20_000).unwrap();
    let locked = rll(&comb, 32, 11);
    let mut oracle = CombOracle::from_locked(&locked).unwrap();
    let cancel = Arc::new(AtomicBool::new(false));
    let setter = Arc::clone(&cancel);
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        setter.store(true, Ordering::Relaxed);
    });
    let start = Instant::now();
    let mut ctl = AttackCtl::new().with_cancel(Arc::clone(&cancel));
    let out = engine::run(
        &SatEngine { config: SatAttackConfig::default() },
        &locked,
        &mut oracle,
        &mut ctl,
    );
    let elapsed = start.elapsed();
    t.join().unwrap();
    assert_eq!(out.failure, Some(FailureReason::Cancelled));
    assert!(
        elapsed < Duration::from_secs(30),
        "cancel took {elapsed:?} to be observed"
    );
}

#[test]
fn expired_deadline_times_an_attack_out() {
    let locked = rll(&samples::ripple_adder(4), 8, 3);
    let mut oracle = CombOracle::from_locked(&locked).unwrap();
    let mut ctl = AttackCtl::new().with_deadline(Some(Instant::now() - Duration::from_secs(1)));
    let out = engine::run(
        &SatEngine { config: SatAttackConfig::default() },
        &locked,
        &mut oracle,
        &mut ctl,
    );
    assert_eq!(out.failure, Some(FailureReason::TimedOut));
    assert_eq!(oracle.queries_attempted(), 0, "no query after the deadline");
}

/// Every engine family honours a pre-set cancel flag before touching the
/// oracle.
#[test]
fn preset_cancel_stops_every_engine_before_any_query() {
    let locked = rll(&samples::ripple_adder(4), 8, 3);
    for name in ENGINE_NAMES {
        let engine = engine::by_name(name).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let cancel = Arc::new(AtomicBool::new(true));
        let mut ctl = AttackCtl::new().with_cancel(cancel);
        let out = engine::run(engine.as_ref(), &locked, &mut oracle, &mut ctl);
        assert_eq!(out.failure, Some(FailureReason::Cancelled), "{name}");
        assert_eq!(oracle.queries_attempted(), 0, "{name} queried after cancel");
    }
}
