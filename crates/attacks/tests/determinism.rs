//! Attack determinism: the same circuit and seed must produce the exact
//! same DIP sequence, iteration count, and telemetry on every run — and the
//! sequence must not depend on how many worker threads evaluate the oracle
//! (the `ORAP_THREADS` knob exercised here through explicit pools).

use attacks::{sat, AttackOutcome, CombOracle, Oracle};
use exec::Pool;
use gatesim::CombSim;
use locking::weighted::WllConfig;
use locking::LockedCircuit;

/// Oracle wrapper recording every queried input verbatim.
struct Recording<O> {
    inner: O,
    log: Vec<Vec<bool>>,
}

impl<O: Oracle> Oracle for Recording<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }
    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }
    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        self.log.push(input.to_vec());
        self.inner.query(input)
    }
    fn queries_attempted(&self) -> usize {
        self.inner.queries_attempted()
    }
}

/// A functional oracle whose responses are computed through the chunked
/// parallel simulator on an explicit thread pool, so the attack's oracle
/// path genuinely runs across worker threads.
struct PooledOracle {
    sim: CombSim,
    data_pos: Vec<usize>,
    key_values: Vec<(usize, bool)>,
    pool: Pool,
    queries: usize,
}

impl PooledOracle {
    fn new(locked: &LockedCircuit, threads: usize) -> Self {
        let sim = CombSim::new(&locked.circuit).expect("acyclic");
        let key_set: std::collections::HashMap<_, _> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(locked.correct_key.iter().copied())
            .collect();
        let mut data_pos = Vec::new();
        let mut key_values = Vec::new();
        for (i, n) in sim.inputs().iter().enumerate() {
            match key_set.get(n) {
                Some(&v) => key_values.push((i, v)),
                None => data_pos.push(i),
            }
        }
        PooledOracle {
            sim,
            data_pos,
            key_values,
            pool: Pool::with_threads(threads),
            queries: 0,
        }
    }
}

impl Oracle for PooledOracle {
    fn num_inputs(&self) -> usize {
        self.data_pos.len()
    }
    fn num_outputs(&self) -> usize {
        self.sim.outputs().len()
    }
    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        self.queries += 1;
        assert_eq!(input.len(), self.data_pos.len());
        let mut words = vec![0u64; self.sim.inputs().len()];
        for (&p, &b) in self.data_pos.iter().zip(input) {
            words[p] = if b { !0 } else { 0 };
        }
        for &(p, b) in &self.key_values {
            words[p] = if b { !0 } else { 0 };
        }
        // Several identical batches fan out across the pool's workers; the
        // answers must agree regardless of which worker computed them.
        let batches = vec![words.clone(), words.clone(), words.clone(), words];
        let outs = self.sim.eval_words_many(&self.pool, &batches);
        for other in &outs[1..] {
            assert_eq!(&outs[0], other, "pooled evaluation must be uniform");
        }
        Some(outs[0].iter().map(|w| w & 1 == 1).collect())
    }
    fn queries_attempted(&self) -> usize {
        self.queries
    }
}

fn test_target() -> LockedCircuit {
    let original = netlist::generate::random_comb(0xD17, 12, 8, 220).expect("generatable");
    locking::weighted::lock(
        &original,
        &WllConfig {
            key_bits: 12,
            control_width: 3,
            seed: 0x5EED,
        },
    )
    .expect("lockable")
}

fn run_with_oracle<O: Oracle>(locked: &LockedCircuit, inner: O) -> (AttackOutcome, Vec<Vec<bool>>) {
    let mut oracle = Recording {
        inner,
        log: Vec::new(),
    };
    let out = sat::attack(locked, &mut oracle, &sat::SatAttackConfig::default());
    (out, oracle.log)
}

#[test]
fn same_seed_same_dip_sequence_across_runs() {
    let locked = test_target();
    let (out1, log1) = run_with_oracle(&locked, CombOracle::from_locked(&locked).unwrap());
    let (out2, log2) = run_with_oracle(&locked, CombOracle::from_locked(&locked).unwrap());
    assert!(out1.key.is_some(), "attack must succeed on WLL");
    assert!(out1.iterations > 0, "needs a nontrivial DIP sequence");
    assert_eq!(log1, log2, "DIP sequences must be identical");
    // Full outcome equality covers key, iteration count, and telemetry
    // (per-DIP clause counts and solver statistics).
    assert_eq!(out1, out2);
}

#[test]
fn dip_sequence_invariant_across_thread_counts() {
    let locked = test_target();
    let (out1, log1) = run_with_oracle(&locked, PooledOracle::new(&locked, 1));
    let (out8, log8) = run_with_oracle(&locked, PooledOracle::new(&locked, 8));
    assert!(out1.key.is_some(), "attack must succeed on WLL");
    assert_eq!(log1, log8, "DIP sequence must not depend on thread count");
    assert_eq!(out1, out8, "outcome must not depend on thread count");
    // And the pooled oracle must agree with the plain sequential one.
    let (out_seq, log_seq) = run_with_oracle(&locked, CombOracle::from_locked(&locked).unwrap());
    assert_eq!(log1, log_seq);
    assert_eq!(out1.key, out_seq.key);
    assert_eq!(out1.iterations, out_seq.iterations);
}

/// The scaling-tier trajectory check: hill climbing on a 10⁵-gate locked
/// circuit must walk a bit-identical trajectory — same oracle query
/// sequence, same recovered key, same iteration count, same engine and
/// solver telemetry — no matter how many worker threads serve the oracle.
/// The search itself is sequential by design; the pool only parallelizes
/// oracle evaluation, which this test routes through explicit 1/2/8-thread
/// pools.
#[test]
fn hill_climb_trajectory_invariant_across_thread_counts_at_1e5_gates() {
    use attacks::hill_climbing::{self, HillClimbConfig};
    use netlist::generate::{profile, synthesize, BenchmarkId};

    let original =
        synthesize(&profile(BenchmarkId::B18).scaled_to_gates(100_000)).expect("synthesizable");
    let locked = locking::random::lock(
        &original,
        &locking::random::RllConfig {
            key_bits: 16,
            seed: 0x10C5,
        },
    )
    .expect("lockable");
    let config = HillClimbConfig {
        sample_patterns: 64,
        restarts: 2,
        max_sweeps: 4,
        seed: 0xC11B,
    };

    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut oracle = Recording {
            inner: PooledOracle::new(&locked, threads),
            log: Vec::new(),
        };
        let out = hill_climbing::attack(&locked, &mut oracle, &config);
        runs.push((threads, out, oracle.log));
    }
    let (_, out1, log1) = &runs[0];
    assert_eq!(log1.len(), config.sample_patterns, "one query per sample");
    assert!(
        out1.telemetry.engine.incremental_props > 0,
        "hill climbing must exercise the incremental kernel"
    );
    for (threads, out, log) in &runs[1..] {
        assert_eq!(log, log1, "query sequence diverged on {threads} threads");
        assert_eq!(out, out1, "trajectory diverged on {threads} threads");
    }
}
