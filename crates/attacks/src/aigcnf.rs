//! AIG-reduced CNF encoding for the SAT-attack family.
//!
//! The legacy [`crate::cnf`] encoder Tseitin-translates the raw netlist
//! gate-by-gate, so every miter copy and every per-DIP I/O constraint adds a
//! full, unreduced circuit clone to the solver. This module routes all
//! encoding through the workspace's and-inverter graph instead
//! ([`aigsynth::Aig`]), which buys five structural reductions before a
//! single clause is emitted:
//!
//! 1. **Structural hashing** — identical subcircuits collapse to one AIG
//!    node, so shared logic is encoded once per copy.
//! 2. **Constant propagation** — inputs bound to constants (every per-DIP
//!    I/O constraint fixes the data inputs) cofactor the graph down to the
//!    key-dependent residue at encode time; the data-side logic folds away
//!    entirely instead of becoming thousands of unit-implied clauses.
//! 3. **Cone-of-influence restriction** — the miter is built only over
//!    outputs whose transitive fanin contains a key input; key-independent
//!    outputs can never distinguish two keys. Within the key-affected
//!    cones, nodes *below* the key frontier are encoded once and shared
//!    between the two (or four) key copies.
//! 4. **Polarity-aware (Plaisted–Greenbaum) emission** — each AND node gets
//!    only the implication clauses for the polarities actually demanded by
//!    the constraints above it, roughly halving clause count. Polarity
//!    demand is tracked per copy, so later constraints (e.g. an oracle
//!    response fixing an output the other way) incrementally add the
//!    missing direction.
//! 5. **XOR-cluster recovery** — the AIG lowers `a ^ b` to three AND
//!    nodes whose per-node clauses cannot propagate backwards (knowing
//!    the XOR output and one input implies nothing about the other input
//!    until a full case split). Weighted locking splices an XOR/XNOR key
//!    gate onto every locked net, so this pattern sits on the attack's
//!    critical path; the encoder detects the two-level AND shape and
//!    emits the flat four-clause XOR gadget, restoring two-way
//!    propagation.
//!
//! Soundness: Plaisted–Greenbaum preserves satisfiability, and any model of
//! the emitted clauses, restricted to the input/key variables, satisfies the
//! original circuit constraints — so extracted DIPs and keys are exactly as
//! valid as under the full Tseitin encoding, while UNSAT ("no DIP remains")
//! verdicts carry over unchanged.

use aigsynth::{Aig, AigLit};
use cdcl::{Lit, Solver, Var};
use locking::LockedCircuit;
use netlist::NetId;

/// Clause-polarity bit: the gate variable may be asserted true, so the
/// clauses `y → fanins` must exist.
const POS: u8 = 1;
/// Clause-polarity bit: the gate variable may be asserted false.
const NEG: u8 = 2;
/// Both polarities.
const BOTH: u8 = POS | NEG;

#[inline]
fn flip(mask: u8) -> u8 {
    ((mask & POS) << 1) | ((mask & NEG) >> 1)
}

/// Encoded value of an AIG literal in one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EncVal {
    Const(bool),
    Lit(Lit),
}

/// Per-node encoding state within one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Not yet reached by any constraint.
    Unvisited,
    /// Folded to a constant (data cofactoring or AIG constant).
    Const(bool),
    /// A bound input: the literal needs no defining clauses.
    Leaf(Lit),
    /// Folded onto another AIG literal (e.g. `AND(x, TRUE) = x`).
    Alias(AigLit),
    /// A real AND gate with a fresh solver variable; `emitted` tracks which
    /// polarity clauses have been added so far.
    Gate { lit: Lit, emitted: u8 },
    /// A recognized XOR cluster `a ^ b` (the AIG builds XOR from three AND
    /// nodes, which encodes to clauses that cannot propagate backwards —
    /// e.g. `z=1, a=1` no longer implies `b=0`). Locking splices XOR/XNOR
    /// key gates on every locked net, so those clusters sit exactly where
    /// the miter search happens; emitting the flat 4-clause XOR gadget
    /// restores two-way unit propagation there.
    Xor {
        lit: Lit,
        a: AigLit,
        b: AigLit,
        emitted: u8,
    },
}

/// Matches the structural-hash shape of [`aigsynth::Aig::xor_lit`]:
/// `n = !(u·v) · !(!u·!v) = u ^ v`. Returns the XOR operands.
fn xor_fanins(aig: &Aig, n: usize) -> Option<(AigLit, AigLit)> {
    let (p, q) = aig.and_fanins(n)?;
    if !p.complemented() || !q.complemented() {
        return None;
    }
    let (a1, b1) = aig.and_fanins(p.node())?;
    let (a2, b2) = aig.and_fanins(q.node())?;
    if (a2 == !a1 && b2 == !b1) || (a2 == !b1 && b2 == !a1) {
        Some((a1, b1))
    } else {
        None
    }
}

/// The compiled circuit: one strashed AIG plus the key/data input split and
/// the key cone-of-influence, shared by every copy an attack encodes.
#[derive(Debug, Clone)]
struct Compiled {
    aig: Aig,
    data_inputs: Vec<NetId>,
    /// Per AIG input: `Ok(j)` = j-th data input, `Err(j)` = j-th key input.
    input_src: Vec<Result<usize, usize>>,
    /// Per AIG node: whether a key input lies in its cone.
    key_dep: Vec<bool>,
    /// Output positions (into `comb_outputs`) whose cones contain a key.
    key_dep_outputs: Vec<usize>,
    outputs: Vec<NetId>,
}

impl Compiled {
    fn new(locked: &LockedCircuit) -> Self {
        let c = &locked.circuit;
        let aig = Aig::from_circuit(c).expect("attack targets are acyclic");
        let comb_inputs = c.comb_inputs();
        let outputs = c.comb_outputs();
        let mut data_inputs = Vec::new();
        let mut input_src = Vec::with_capacity(comb_inputs.len());
        let mut key_flag = vec![false; comb_inputs.len()];
        for (i, &net) in comb_inputs.iter().enumerate() {
            match locked.key_inputs.iter().position(|&k| k == net) {
                Some(j) => {
                    key_flag[i] = true;
                    input_src.push(Err(j));
                }
                None => {
                    input_src.push(Ok(data_inputs.len()));
                    data_inputs.push(net);
                }
            }
        }
        let key_dep = aig.input_dependence(&key_flag);
        let key_dep_outputs = aig
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, l)| key_dep[l.node()])
            .map(|(j, _)| j)
            .collect();
        Compiled {
            aig,
            data_inputs,
            input_src,
            key_dep,
            key_dep_outputs,
            outputs,
        }
    }
}

/// Test-only semantic faults for the conformance mutation-kill harness
/// (`crates/conformance`). Each variant plants one deliberate encoding bug
/// so the harness can prove the conformance battery detects it. Production
/// code must never install one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderSabotage {
    /// AND-gate clause emission flips the polarity of the first fanin
    /// literal in the positive-polarity clauses.
    FlipGateClauseLit,
    /// [`ReducedEncoder::assert_miter`] silently omits the last
    /// key-dependent output from the difference disjunction.
    SkipMiterOutput,
    /// [`ReducedEncoder::add_io_constraint`] asserts the complement of the
    /// oracle response on output 0.
    FlipIoConstraintBit,
    /// The flat XOR gadget flips the polarity of one literal in its first
    /// positive-polarity clause.
    FlipXorGadgetLit,
}

/// Multi-copy encoder for one locked circuit: the symbolic copies share the
/// data variables (and the entire key-independent cone), differing only in
/// their key variables. See the [module docs](self) for the reduction
/// pipeline.
#[derive(Debug, Clone)]
pub struct ReducedEncoder {
    cnf: Compiled,
    /// Key-independent cone over the symbolic data vars, shared by copies.
    shared: Vec<Slot>,
    /// Key-dependent cone per copy.
    copies: Vec<Vec<Slot>>,
    data_vars: Vec<Var>,
    key_vars: Vec<Vec<Var>>,
    /// Test-only fault injection, always `None` in production use.
    sabotage: Option<EncoderSabotage>,
}

impl ReducedEncoder {
    /// Compiles `locked` and allocates shared data variables plus
    /// `n_copies` independent key-variable sets in `solver`.
    pub fn new(locked: &LockedCircuit, solver: &mut Solver, n_copies: usize) -> Self {
        let cnf = Compiled::new(locked);
        let data_vars: Vec<Var> = cnf.data_inputs.iter().map(|_| solver.new_var()).collect();
        let key_vars: Vec<Vec<Var>> = (0..n_copies)
            .map(|_| locked.key_inputs.iter().map(|_| solver.new_var()).collect())
            .collect();
        let shared = Self::input_slots(&cnf, |src| match src {
            Ok(j) => Slot::Leaf(data_vars[j].positive()),
            // Key inputs are key-dependent by definition, so the shared
            // cone never reads them; poison them to catch bugs.
            Err(_) => Slot::Unvisited,
        });
        let copies = (0..n_copies)
            .map(|k| {
                Self::input_slots(&cnf, |src| match src {
                    Ok(j) => Slot::Leaf(data_vars[j].positive()),
                    Err(j) => Slot::Leaf(key_vars[k][j].positive()),
                })
            })
            .collect();
        ReducedEncoder {
            cnf,
            shared,
            copies,
            data_vars,
            key_vars,
            sabotage: None,
        }
    }

    /// Test-only mutation hook: installs (or clears) an [`EncoderSabotage`]
    /// fault on this encoder instance. Only the conformance mutation-kill
    /// harness calls this.
    pub fn set_sabotage(&mut self, sabotage: Option<EncoderSabotage>) {
        self.sabotage = sabotage;
    }

    fn input_slots(cnf: &Compiled, mut bind: impl FnMut(Result<usize, usize>) -> Slot) -> Vec<Slot> {
        let mut slots = vec![Slot::Unvisited; cnf.aig.num_nodes()];
        slots[0] = Slot::Const(false); // AIG node 0 is constant FALSE
        for (n, slot) in slots.iter_mut().enumerate() {
            if let Some(i) = cnf.aig.input_of(n) {
                *slot = bind(cnf.input_src[i]);
            }
        }
        slots
    }

    /// The non-key combinational inputs, in encoding order.
    pub fn data_inputs(&self) -> &[NetId] {
        &self.cnf.data_inputs
    }

    /// The combinational outputs (all of them, in `comb_outputs` order).
    pub fn outputs(&self) -> &[NetId] {
        &self.cnf.outputs
    }

    /// Number of outputs whose cone contains a key input — the only ones a
    /// miter needs to compare.
    pub fn num_key_dep_outputs(&self) -> usize {
        self.cnf.key_dep_outputs.len()
    }

    /// The shared data variables, aligned with [`data_inputs`](Self::data_inputs).
    pub fn data_vars(&self) -> &[Var] {
        &self.data_vars
    }

    /// The key variables of one copy, aligned with the locked circuit's
    /// `key_inputs`.
    pub fn key_vars(&self, copy: usize) -> &[Var] {
        &self.key_vars[copy]
    }

    /// Asserts that copies `a` and `b` differ on at least one key-dependent
    /// output. `extra` is appended to the disjunction (the activation
    /// literal that lets the same solver later run extraction queries with
    /// the miter disabled).
    pub fn assert_miter(&mut self, solver: &mut Solver, a: usize, b: usize, extra: Option<Lit>) {
        let mut diffs: Vec<Lit> = Vec::with_capacity(self.cnf.key_dep_outputs.len() + 1);
        // Fault injection (test-only): drop the last key-dependent output.
        let n_outputs = if self.sabotage == Some(EncoderSabotage::SkipMiterOutput) {
            self.cnf.key_dep_outputs.len().saturating_sub(1)
        } else {
            self.cnf.key_dep_outputs.len()
        };
        for idx in 0..n_outputs {
            let j = self.cnf.key_dep_outputs[idx];
            let root = self.cnf.aig.outputs()[j];
            // The difference indicator constrains both sides in both
            // directions, so demand both polarities.
            let o1 = self.encode(solver, a, root, BOTH);
            let o2 = self.encode(solver, b, root, BOTH);
            match (o1, o2) {
                (EncVal::Const(x), EncVal::Const(y)) => {
                    if x != y {
                        // Cannot happen for two copies of one circuit, but
                        // keep the encoding total: a constant difference.
                        let t = solver.new_var().positive();
                        solver.add_clause(&[t]);
                        diffs.push(t);
                    }
                }
                (EncVal::Lit(l), EncVal::Const(c)) | (EncVal::Const(c), EncVal::Lit(l)) => {
                    diffs.push(if c { !l } else { l });
                }
                (EncVal::Lit(l1), EncVal::Lit(l2)) => {
                    if l1 == l2 {
                        continue; // structurally identical: never differs
                    }
                    if l1 == !l2 {
                        let t = solver.new_var().positive();
                        solver.add_clause(&[t]);
                        diffs.push(t);
                        continue;
                    }
                    diffs.push(xor_pos(solver, l1, l2));
                }
            }
        }
        if let Some(e) = extra {
            diffs.push(e);
        }
        solver.add_clause(&diffs);
    }

    /// Constrains copy `copy` to reproduce the oracle response `y` on the
    /// data input `x`: the data cone is cofactored under the constants of
    /// `x`, leaving only the key-dependent residue as fresh clauses.
    /// Returns `false` if the constraint made the solver unsatisfiable
    /// (inconsistent oracle).
    pub fn add_io_constraint(
        &mut self,
        solver: &mut Solver,
        copy: usize,
        x: &[bool],
        y: &[bool],
    ) -> bool {
        self.add_io_constraint_prefix(solver, copy, x, y, y.len())
    }

    /// Like [`add_io_constraint`](ReducedEncoder::add_io_constraint) but
    /// asserts only the first `limit` outputs of the response. The session
    /// attacks use this to learn bounded unrollings frame by frame; the
    /// dropped-unroll-frame kill-matrix mutant drives it with a short limit
    /// to prove the conformance loop notices under-constrained learning.
    pub fn add_io_constraint_prefix(
        &mut self,
        solver: &mut Solver,
        copy: usize,
        x: &[bool],
        y: &[bool],
        limit: usize,
    ) -> bool {
        assert_eq!(x.len(), self.cnf.data_inputs.len(), "input width mismatch");
        assert_eq!(y.len(), self.cnf.outputs.len(), "output width mismatch");
        assert!(limit <= y.len(), "prefix limit exceeds output width");
        // A fresh cofactor scope: data inputs become constants, so none of
        // the symbolic caches apply.
        let key_vars = &self.key_vars[copy];
        let mut slots = Self::input_slots(&self.cnf, |src| match src {
            Ok(j) => Slot::Const(x[j]),
            Err(j) => Slot::Leaf(key_vars[j].positive()),
        });
        let mut scope = Scope {
            aig: &self.cnf.aig,
            key_dep: None,
            shared: &mut slots,
            own: None,
            sabotage: self.sabotage,
        };
        let mut ok = true;
        for (j, &root) in self.cnf.aig.outputs().iter().enumerate().take(limit) {
            // Only the demanded polarity of each output cone is emitted.
            // (Fault injection, test-only: complement the response on
            // output 0.)
            let want =
                y[j] ^ (j == 0 && self.sabotage == Some(EncoderSabotage::FlipIoConstraintBit));
            match scope.encode(solver, root, if want { POS } else { NEG }) {
                EncVal::Const(b) => {
                    if b != want {
                        ok &= solver.add_clause(&[]);
                    }
                }
                EncVal::Lit(l) => {
                    ok &= solver.add_clause(&[if want { l } else { !l }]);
                }
            }
        }
        ok
    }

    /// Encodes output cones of one symbolic copy (shared cone split off by
    /// key dependence).
    fn encode(&mut self, solver: &mut Solver, copy: usize, root: AigLit, mask: u8) -> EncVal {
        let mut scope = Scope {
            aig: &self.cnf.aig,
            key_dep: Some(&self.cnf.key_dep),
            shared: &mut self.shared,
            own: Some(&mut self.copies[copy]),
            sabotage: self.sabotage,
        };
        scope.encode(solver, root, mask)
    }
}

/// A borrowed encoding scope: either a single slot table (cofactor scopes)
/// or a shared/per-copy split keyed by the key cone-of-influence.
struct Scope<'a> {
    aig: &'a Aig,
    key_dep: Option<&'a [bool]>,
    shared: &'a mut Vec<Slot>,
    own: Option<&'a mut Vec<Slot>>,
    /// Test-only fault injection inherited from the owning encoder.
    sabotage: Option<EncoderSabotage>,
}

impl Scope<'_> {
    #[inline]
    fn is_own(&self, n: usize) -> bool {
        matches!(self.key_dep, Some(dep) if dep[n]) && self.own.is_some()
    }

    #[inline]
    fn slot(&self, n: usize) -> Slot {
        if self.is_own(n) {
            self.own.as_ref().expect("checked")[n]
        } else {
            self.shared[n]
        }
    }

    #[inline]
    fn set(&mut self, n: usize, s: Slot) {
        if self.is_own(n) {
            self.own.as_mut().expect("checked")[n] = s;
        } else {
            self.shared[n] = s;
        }
    }

    /// Resolves an AIG literal to its encoded value, following aliases.
    fn resolve(&self, l: AigLit) -> EncVal {
        let mut cur = l;
        loop {
            match self.slot(cur.node()) {
                Slot::Const(b) => return EncVal::Const(b ^ cur.complemented()),
                Slot::Leaf(lit) | Slot::Gate { lit, .. } | Slot::Xor { lit, .. } => {
                    return EncVal::Lit(if cur.complemented() { !lit } else { lit });
                }
                Slot::Alias(of) => {
                    cur = if cur.complemented() { !of } else { of };
                }
                Slot::Unvisited => unreachable!("resolve before compute"),
            }
        }
    }

    /// Phase A: bottom-up value computation (with constant folding and
    /// aliasing) over the cone of `root`. Allocates gate variables but adds
    /// no clauses yet.
    fn compute(&mut self, solver: &mut Solver, root: usize) {
        if self.slot(root) != Slot::Unvisited {
            return;
        }
        let mut stack: Vec<usize> = vec![root];
        while let Some(&n) = stack.last() {
            if self.slot(n) != Slot::Unvisited {
                stack.pop();
                continue;
            }
            // XOR clusters bypass their intermediate AND nodes entirely:
            // the children to wait on are the XOR operands themselves.
            let xor = xor_fanins(self.aig, n);
            let (a, b) = match xor {
                Some(ops) => ops,
                None => self
                    .aig
                    .and_fanins(n)
                    .expect("inputs and constant are pre-bound"),
            };
            let mut ready = true;
            for child in [a.node(), b.node()] {
                if self.slot(child) == Slot::Unvisited {
                    stack.push(child);
                    ready = false;
                }
            }
            if !ready {
                continue;
            }
            stack.pop();
            let va = self.resolve(a);
            let vb = self.resolve(b);
            let slot = if xor.is_some() {
                match (va, vb) {
                    (EncVal::Const(x), EncVal::Const(y)) => Slot::Const(x ^ y),
                    (EncVal::Const(x), EncVal::Lit(_)) => Slot::Alias(if x { !b } else { b }),
                    (EncVal::Lit(_), EncVal::Const(y)) => Slot::Alias(if y { !a } else { a }),
                    (EncVal::Lit(l1), EncVal::Lit(l2)) => {
                        if l1 == l2 {
                            Slot::Const(false)
                        } else if l1 == !l2 {
                            Slot::Const(true)
                        } else {
                            Slot::Xor {
                                lit: solver.new_var().positive(),
                                a,
                                b,
                                emitted: 0,
                            }
                        }
                    }
                }
            } else {
                match (va, vb) {
                    (EncVal::Const(false), _) | (_, EncVal::Const(false)) => Slot::Const(false),
                    (EncVal::Const(true), EncVal::Const(true)) => Slot::Const(true),
                    (EncVal::Const(true), _) => Slot::Alias(b),
                    (_, EncVal::Const(true)) => Slot::Alias(a),
                    (EncVal::Lit(l1), EncVal::Lit(l2)) => {
                        if l1 == l2 {
                            Slot::Alias(a)
                        } else if l1 == !l2 {
                            Slot::Const(false)
                        } else {
                            Slot::Gate {
                                lit: solver.new_var().positive(),
                                emitted: 0,
                            }
                        }
                    }
                }
            };
            self.set(n, slot);
        }
    }

    /// Phase B: demand-driven polarity propagation, emitting the missing
    /// implication clauses top-down.
    fn demand(&mut self, solver: &mut Solver, root: AigLit, mask: u8) {
        let mut work: Vec<(AigLit, u8)> = vec![(root, mask)];
        while let Some((l, m)) = work.pop() {
            let nm = if l.complemented() { flip(m) } else { m };
            let n = l.node();
            match self.slot(n) {
                Slot::Const(_) | Slot::Leaf(_) => {}
                Slot::Alias(of) => work.push((of, nm)),
                Slot::Gate { lit, emitted } => {
                    let new = nm & !emitted;
                    if new == 0 {
                        continue;
                    }
                    self.set(
                        n,
                        Slot::Gate {
                            lit,
                            emitted: emitted | new,
                        },
                    );
                    let (a, b) = self.aig.and_fanins(n).expect("gate slots are ANDs");
                    let (EncVal::Lit(la), EncVal::Lit(lb)) = (self.resolve(a), self.resolve(b))
                    else {
                        unreachable!("constant fanins fold in compute")
                    };
                    if new & POS != 0 {
                        // Fault injection (test-only): flip the first fanin
                        // literal's polarity in the positive clauses.
                        let la_emit = if self.sabotage == Some(EncoderSabotage::FlipGateClauseLit)
                        {
                            !la
                        } else {
                            la
                        };
                        solver.add_clause(&[!lit, la_emit]);
                        solver.add_clause(&[!lit, lb]);
                        work.push((a, POS));
                        work.push((b, POS));
                    }
                    if new & NEG != 0 {
                        solver.add_clause(&[lit, !la, !lb]);
                        work.push((a, NEG));
                        work.push((b, NEG));
                    }
                }
                Slot::Xor {
                    lit,
                    a,
                    b,
                    emitted,
                } => {
                    let new = nm & !emitted;
                    if new == 0 {
                        continue;
                    }
                    self.set(
                        n,
                        Slot::Xor {
                            lit,
                            a,
                            b,
                            emitted: emitted | new,
                        },
                    );
                    let (EncVal::Lit(la), EncVal::Lit(lb)) = (self.resolve(a), self.resolve(b))
                    else {
                        unreachable!("constant operands fold in compute")
                    };
                    if new & POS != 0 {
                        // Fault injection (test-only): corrupt one literal
                        // of the first gadget clause.
                        let la_emit = if self.sabotage == Some(EncoderSabotage::FlipXorGadgetLit)
                        {
                            !la
                        } else {
                            la
                        };
                        solver.add_clause(&[!lit, la_emit, lb]);
                        solver.add_clause(&[!lit, !la, !lb]);
                    }
                    if new & NEG != 0 {
                        solver.add_clause(&[lit, !la, lb]);
                        solver.add_clause(&[lit, la, !lb]);
                    }
                    // Every XOR clause mentions both signs of both operands.
                    work.push((a, BOTH));
                    work.push((b, BOTH));
                }
                Slot::Unvisited => unreachable!("demand before compute"),
            }
        }
    }

    fn encode(&mut self, solver: &mut Solver, root: AigLit, mask: u8) -> EncVal {
        self.compute(solver, root.node());
        self.demand(solver, root, mask);
        self.resolve(root)
    }
}

impl ReducedEncoder {
    /// Breaks the `K_a ↔ K_b` swap symmetry of a two-copy miter by asserting
    /// `K_a ≤ K_b` lexicographically. The miter predicate is symmetric in
    /// its key copies, so every distinguishing pair has an ordered
    /// representative and the UNSAT proof ("no DIP remains") covers half the
    /// pair space. Key extraction is unaffected: any single consistent key
    /// `K` extends to the ordered model `K_a = K_b = K`.
    pub fn assert_key_lex_le(&self, solver: &mut Solver, a: usize, b: usize) {
        // eq-prefix chain: e[0] = true; e[i+1] <-> e[i] & (ka[i] = kb[i]);
        // ordering: e[i] -> (ka[i] -> kb[i]).
        let mut eq: Option<Lit> = None; // None encodes the constant TRUE
        let n = self.key_vars[a].len();
        for i in 0..n {
            let ka = self.key_vars[a][i].positive();
            let kb = self.key_vars[b][i].positive();
            match eq {
                None => solver.add_clause(&[!ka, kb]),
                Some(e) => solver.add_clause(&[!e, !ka, kb]),
            };
            if i + 1 == n {
                break; // the last equality chain link is never read
            }
            let next = solver.new_var().positive();
            match eq {
                None => {
                    // e[1] <-> (ka = kb)
                    solver.add_clause(&[!next, !ka, kb]);
                    solver.add_clause(&[!next, ka, !kb]);
                    solver.add_clause(&[next, !ka, !kb]);
                    solver.add_clause(&[next, ka, kb]);
                }
                Some(e) => {
                    solver.add_clause(&[!next, e]);
                    solver.add_clause(&[!next, !ka, kb]);
                    solver.add_clause(&[!next, ka, !kb]);
                    solver.add_clause(&[next, !e, !ka, !kb]);
                    solver.add_clause(&[next, !e, ka, kb]);
                }
            }
            eq = Some(next);
        }
    }
}

/// XOR difference indicator with positive-polarity (Plaisted–Greenbaum)
/// clauses only: asserting the returned literal forces `a != b`; leaving it
/// free never constrains them.
pub fn xor_pos(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let d = solver.new_var().positive();
    solver.add_clause(&[!d, a, b]);
    solver.add_clause(&[!d, !a, !b]);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl::SolveResult;
    use netlist::samples;

    /// The reduced encoding must agree with simulation for every assignment
    /// (positive and negative output polarity both exercised).
    #[test]
    fn reduced_encoding_matches_simulation() {
        let c = samples::full_adder();
        let locked = locking::random::lock(
            &c,
            &locking::random::RllConfig { key_bits: 2, seed: 7 },
        )
        .unwrap();
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let n_in = locked.circuit.comb_inputs().len();
        let n_data = n_in - 2;
        for m in 0..(1u32 << n_in) {
            let all: Vec<bool> = (0..n_in).map(|k| (m >> k) & 1 == 1).collect();
            // Split per the simulator's comb_inputs order.
            let comb = locked.circuit.comb_inputs();
            let mut solver = Solver::new();
            let enc = ReducedEncoder::new(&locked, &mut solver, 1);
            let mut x = vec![false; n_data];
            let mut key = vec![false; 2];
            for (i, &net) in comb.iter().enumerate() {
                if let Some(j) = enc.data_inputs().iter().position(|&d| d == net) {
                    x[j] = all[i];
                } else {
                    let j = locked.key_inputs.iter().position(|&k| k == net).unwrap();
                    key[j] = all[i];
                }
            }
            let expect = sim.eval_bools(&all);
            // Constrain the copy to the expected response; with the key
            // fixed to the matching bits this must be satisfiable, with any
            // output bit flipped it must not.
            let mut s_ok = solver.clone();
            assert!(enc.clone().add_io_constraint(&mut s_ok, 0, &x, &expect));
            let assumptions: Vec<Lit> = enc
                .key_vars(0)
                .iter()
                .zip(&key)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            assert_eq!(s_ok.solve_with(&assumptions), SolveResult::Sat, "m={m}");
            for flip_out in 0..expect.len() {
                let mut wrong = expect.clone();
                wrong[flip_out] = !wrong[flip_out];
                let mut s_bad = solver.clone();
                let ok = enc.clone().add_io_constraint(&mut s_bad, 0, &x, &wrong);
                assert!(
                    !ok || s_bad.solve_with(&assumptions) == SolveResult::Unsat,
                    "m={m} flipped output {flip_out} must be inconsistent"
                );
            }
        }
    }

    /// Key-independent outputs are excluded from the miter.
    #[test]
    fn key_independent_outputs_skipped() {
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let k = c.add_input("k");
        let free = c.add_gate(netlist::GateKind::And, vec![a, b], "free").unwrap();
        let dep = c.add_gate(netlist::GateKind::Xor, vec![a, k], "dep").unwrap();
        c.mark_output(free);
        c.mark_output(dep);
        let locked = LockedCircuit {
            circuit: c,
            key_inputs: vec![k],
            correct_key: vec![false],
            scheme: "test",
        };
        let mut solver = Solver::new();
        let mut enc = ReducedEncoder::new(&locked, &mut solver, 2);
        assert_eq!(enc.num_key_dep_outputs(), 1);
        enc.assert_miter(&mut solver, 0, 1, None);
        // The miter is satisfiable exactly when the two key copies differ.
        assert_eq!(solver.solve(), SolveResult::Sat);
        let k0 = enc.key_vars(0)[0];
        let k1 = enc.key_vars(1)[0];
        assert_ne!(solver.value(k0), solver.value(k1));
    }

    /// PG emission must still produce correct *models* (not just verdicts):
    /// a satisfying assignment projected onto inputs satisfies the circuit.
    #[test]
    fn miter_models_are_genuine_dips() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 11 },
        )
        .unwrap();
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let mut solver = Solver::new();
        let mut enc = ReducedEncoder::new(&locked, &mut solver, 2);
        enc.assert_miter(&mut solver, 0, 1, None);
        assert_eq!(solver.solve(), SolveResult::Sat);
        // Read the model: x, k1, k2; simulating must show an output diff.
        let x: Vec<bool> = enc
            .data_vars()
            .iter()
            .map(|&v| solver.value(v).unwrap_or(false))
            .collect();
        let eval = |key: Vec<bool>| {
            let comb = locked.circuit.comb_inputs();
            let mut input = vec![false; comb.len()];
            for (i, &net) in comb.iter().enumerate() {
                if let Some(j) = enc.data_inputs().iter().position(|&d| d == net) {
                    input[i] = x[j];
                } else {
                    let j = locked.key_inputs.iter().position(|&k| k == net).unwrap();
                    input[i] = key[j];
                }
            }
            sim.eval_bools(&input)
        };
        let key_of = |copy: usize| -> Vec<bool> {
            enc.key_vars(copy)
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect()
        };
        assert_ne!(
            eval(key_of(0)),
            eval(key_of(1)),
            "model must be a genuine distinguishing input"
        );
    }
}
