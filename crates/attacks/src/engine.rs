//! The unified attack-engine surface: one session/progress/interrupt
//! contract for every oracle-guided attack.
//!
//! Historically each attack was a free function with its own loop, its own
//! way of counting oracle queries, and no way to stop it short of killing
//! the thread. This module defines the control surface the serving layer,
//! the bench binaries, and the conformance loops all drive:
//!
//! - [`AttackEngine`] — a named factory that [`start`](AttackEngine::start)s
//!   a session over a locked circuit and an oracle.
//! - [`AttackSession`] — a resumable state machine advanced one unit of work
//!   at a time (one DIP, one restart, one key bit) by
//!   [`step`](AttackSession::step).
//! - [`AttackCtl`] — the per-step control block: a cooperative interrupt
//!   check (cancel flag + wall-clock deadline, also threaded into the CDCL
//!   solver as a conflict-granularity hook so even a single long
//!   `solve_with` call observes it), an oracle-query ledger with an
//!   enforceable budget (every engine query goes through
//!   [`AttackCtl::query`], so the paper's protect-the-oracle metric is
//!   counted uniformly at the oracle boundary), and a progress-event sink
//!   emitting typed [`ProgressEvent`] milestones.
//!
//! An interrupted session is *resumable*: [`StepStatus::Interrupted`] leaves
//! the session state intact (a distinguishing input whose oracle query was
//! cut short is stashed, not discarded), so calling `step` again — e.g. with
//! a fresh [`AttackCtl`] carrying a bigger budget — continues the attack
//! exactly where it stopped, with a bit-identical trajectory to a run that
//! was never interrupted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cdcl::Solver;
use locking::LockedCircuit;

use crate::{AttackOutcome, FailureReason, Oracle};

/// Why a [`step`](AttackSession::step) was cut short. Maps onto
/// [`FailureReason`] when the caller gives up instead of resuming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The cancel flag fired.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The oracle-query budget is exhausted.
    QueryBudgetExhausted,
}

impl From<Interrupt> for FailureReason {
    fn from(i: Interrupt) -> FailureReason {
        match i {
            Interrupt::Cancelled => FailureReason::Cancelled,
            Interrupt::DeadlineExpired => FailureReason::TimedOut,
            Interrupt::QueryBudgetExhausted => FailureReason::QueryBudgetExhausted,
        }
    }
}

/// Result of one [`AttackSession::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Progress was made; call `step` again.
    Running,
    /// The attack concluded; [`AttackSession::outcome`] is final.
    Done,
    /// An interrupt fired mid-step. The session state is intact and the
    /// session may be resumed by calling `step` again (typically with a
    /// fresh [`AttackCtl`]); [`AttackSession::interrupted_outcome`] renders
    /// the current state as an outcome for callers that give up instead.
    Interrupted(Interrupt),
}

/// A typed progress milestone pushed through the [`AttackCtl`] sink.
///
/// Every field is a deterministic counter — no wall-clock times — so
/// progress streams replay byte-identically (the serve layer's golden
/// transcripts depend on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Milestone {
    /// The stage the attack is currently in (e.g. `"dip-search"`).
    pub stage: &'static str,
    /// Attack iterations executed so far (DIPs, restarts, or probed bits).
    pub iterations: usize,
    /// Distinguishing inputs eliminated so far (0 for non-SAT attacks).
    pub dips_eliminated: usize,
    /// Cumulative clauses the attack solver has learned (0 when no solver).
    pub clauses_learned: u64,
    /// Oracle queries counted by the control block's ledger.
    pub oracle_queries: u64,
}

/// One progress event, emitted through [`AttackCtl::with_progress`]'s sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressEvent {
    /// The attack entered a new stage.
    Stage {
        /// Stage name (stable identifier, e.g. `"dip-search"`).
        name: &'static str,
    },
    /// A unit of work completed (one DIP learned, one restart finished, one
    /// key bit probed).
    Milestone(Milestone),
}

/// A boxed progress-event callback: whatever the embedding layer does with
/// milestones (the daemon appends them to the job's progress log; tests
/// collect them into vectors).
pub type ProgressSink = Box<dyn FnMut(&ProgressEvent) + Send>;

/// Test-only semantic faults in the engine control layer, installed via
/// [`AttackCtl::set_sabotage`] by the conformance mutation-kill harness to
/// prove the test battery would catch these bugs. Never set in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSabotage {
    /// The cooperative interrupt poll is skipped and the solver hook is
    /// never installed, so cancels and deadlines are silently ignored and
    /// an attack runs to completion despite them.
    SkipInterruptPoll,
    /// The oracle-query ledger counts only every other query, so budget
    /// enforcement lets roughly twice the allowed queries through and the
    /// reported `oracle_queries` accounting diverges from the oracle's own
    /// count.
    UndercountOracleQuery,
}

/// The per-step control block threaded through [`AttackSession::step`]:
/// interrupt sources, the oracle-query ledger/budget, and the progress sink.
///
/// A default `AttackCtl` (no cancel flag, no deadline, no budget, no sink)
/// is inert — stepping a session with it behaves exactly like the historical
/// free-function attacks.
#[derive(Default)]
pub struct AttackCtl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    query_budget: Option<u64>,
    /// Queries counted at the oracle boundary ([`AttackCtl::query`]).
    ledger: u64,
    /// Raw call count, kept separate from `ledger` only so the undercount
    /// sabotage has something honest to skip against.
    calls: u64,
    sink: Option<ProgressSink>,
    sabotage: Option<EngineSabotage>,
}

impl std::fmt::Debug for AttackCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackCtl")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("query_budget", &self.query_budget)
            .field("ledger", &self.ledger)
            .field("has_sink", &self.sink.is_some())
            .field("sabotage", &self.sabotage)
            .finish()
    }
}

impl AttackCtl {
    /// An inert control block: never interrupts, never limits, sinks nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a cancel flag. Polled at every step boundary and oracle
    /// query, and installed into the CDCL solver so a long solve observes it
    /// at conflict granularity.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attaches a wall-clock deadline (same polling points as the cancel
    /// flag; inside the solver it is checked every
    /// [`cdcl::DEADLINE_CHECK_MASK`]`+1` conflicts).
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Caps the number of oracle queries this control block will allow;
    /// the budget is enforced against the ledger *before* each query, so
    /// at most `budget` queries reach the oracle through this ctl.
    pub fn with_query_budget(mut self, budget: Option<u64>) -> Self {
        self.query_budget = budget;
        self
    }

    /// Attaches a progress sink; every [`ProgressEvent`] an engine emits is
    /// passed to it synchronously, in order.
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Test-only mutation hook for the conformance kill matrix.
    pub fn set_sabotage(&mut self, sabotage: Option<EngineSabotage>) {
        self.sabotage = sabotage;
    }

    /// Oracle queries this control block has counted so far.
    pub fn queries(&self) -> u64 {
        self.ledger
    }

    /// The cooperative interrupt poll: engines call this at every step
    /// boundary (per DIP / per restart / per probed bit).
    ///
    /// # Errors
    ///
    /// [`Interrupt::Cancelled`] when the cancel flag fired,
    /// [`Interrupt::DeadlineExpired`] when the deadline passed.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.sabotage == Some(EngineSabotage::SkipInterruptPoll) {
            return Ok(());
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// Installs this control block's interrupt sources into a solver, so a
    /// single long `solve_with` call observes cancellation at conflict
    /// granularity. Engines re-arm at every step, which keeps resumed
    /// sessions honouring whatever ctl they are resumed with.
    pub fn arm_solver(&self, solver: &mut Solver) {
        if self.sabotage == Some(EngineSabotage::SkipInterruptPoll) {
            solver.set_interrupt(None);
            solver.set_deadline(None);
            return;
        }
        solver.set_interrupt(self.cancel.clone());
        solver.set_deadline(self.deadline);
    }

    /// Classifies a solver's `Unknown` result: `Some(interrupt)` when this
    /// control block's hook stopped the solve, `None` when the solver's own
    /// conflict budget ran out.
    pub fn solver_interrupt(&self, solver: &Solver) -> Option<Interrupt> {
        if !solver.interrupted() {
            return None;
        }
        let cancelled = self
            .cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed));
        if cancelled {
            Some(Interrupt::Cancelled)
        } else {
            Some(Interrupt::DeadlineExpired)
        }
    }

    /// The uniform oracle boundary: checks interrupts and the query budget,
    /// counts the query in the ledger, then forwards it to the oracle.
    ///
    /// The interrupt/budget check happens *before* the ledger increment and
    /// the oracle call, so an `Err` here means the oracle was not consulted
    /// — the engine stashes its pending input and the session resumes
    /// without perturbing the query sequence.
    ///
    /// # Errors
    ///
    /// Everything [`AttackCtl::check`] returns, plus
    /// [`Interrupt::QueryBudgetExhausted`] once the ledger reaches the
    /// budget.
    #[allow(clippy::type_complexity)]
    pub fn query(
        &mut self,
        oracle: &mut dyn Oracle,
        input: &[bool],
    ) -> Result<Option<Vec<bool>>, Interrupt> {
        self.check()?;
        if let Some(budget) = self.query_budget {
            if self.ledger >= budget {
                return Err(Interrupt::QueryBudgetExhausted);
            }
        }
        let undercount = self.sabotage == Some(EngineSabotage::UndercountOracleQuery)
            && self.calls % 2 == 1;
        self.calls += 1;
        if !undercount {
            self.ledger += 1;
        }
        Ok(oracle.query(input))
    }

    /// Emits a progress event to the sink (no-op without one).
    pub fn emit(&mut self, event: ProgressEvent) {
        if let Some(sink) = &mut self.sink {
            sink(&event);
        }
    }

    /// Convenience: emits a [`ProgressEvent::Stage`].
    pub fn emit_stage(&mut self, name: &'static str) {
        self.emit(ProgressEvent::Stage { name });
    }
}

/// A named attack factory. Engines are cheap value types carrying their
/// attack's configuration; [`start`](AttackEngine::start) builds the session
/// (encoders, solvers, compiled circuits) without running any of the loop.
pub trait AttackEngine {
    /// Stable attack name (`"sat"`, `"appsat"`, `"double_dip"`,
    /// `"hill_climbing"`, `"sensitization"`).
    fn name(&self) -> &'static str;

    /// Builds a session over `locked` and `oracle`. The session borrows
    /// both for its lifetime.
    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a>;
}

/// A resumable attack in progress. One `step` performs one unit of work —
/// one distinguishing input for the SAT family, one restart for hill
/// climbing, one probed key bit for sensitization — and polls `ctl`'s
/// interrupt sources at least once.
pub trait AttackSession {
    /// Advances the attack by one unit of work.
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus;

    /// The final outcome; `None` until `step` has returned
    /// [`StepStatus::Done`].
    fn outcome(&self) -> Option<&AttackOutcome>;

    /// Renders the *current* (interrupted, still-resumable) state as an
    /// outcome, for callers that stop instead of resuming. The session is
    /// not consumed and remains resumable.
    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome;
}

/// Drives a session to completion under `ctl`, mapping an interrupt to its
/// failure outcome. This is the single loop the legacy `attack()` wrappers,
/// the serve layer, the bench binaries, and the conformance loops all use.
pub fn run(
    engine: &dyn AttackEngine,
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    ctl: &mut AttackCtl,
) -> AttackOutcome {
    let mut session = engine.start(locked, oracle);
    drive(session.as_mut(), ctl)
}

/// Drives an existing session to completion or first interrupt under `ctl`.
pub fn drive(session: &mut dyn AttackSession, ctl: &mut AttackCtl) -> AttackOutcome {
    loop {
        match session.step(ctl) {
            StepStatus::Running => {}
            StepStatus::Done => {
                return session
                    .outcome()
                    .cloned()
                    .expect("Done implies a final outcome");
            }
            StepStatus::Interrupted(why) => return session.interrupted_outcome(why),
        }
    }
}

/// Looks an engine up by its wire/CLI name. Accepts the canonical names and
/// the hyphenated aliases the bench binaries historically used.
pub fn by_name(name: &str) -> Option<Box<dyn AttackEngine>> {
    match name {
        "sat" => Some(Box::new(crate::sat::SatEngine::default())),
        "appsat" => Some(Box::new(crate::appsat::AppSatEngine::default())),
        "double_dip" | "double-dip" => {
            Some(Box::new(crate::double_dip::DoubleDipEngine::default()))
        }
        "hill_climbing" | "hill-climb" | "hill" => {
            Some(Box::new(crate::hill_climbing::HillClimbEngine::default()))
        }
        "sensitization" | "sensitize" => {
            Some(Box::new(crate::sensitization::SensitizationEngine::default()))
        }
        "dyn_unlock" | "dyn-unlock" | "dynunlock" => {
            Some(Box::new(crate::dyn_unlock::DynUnlockEngine::default()))
        }
        _ => None,
    }
}

/// The canonical engine names, in bench/report order.
pub const ENGINE_NAMES: [&str; 6] = [
    "sat",
    "appsat",
    "double_dip",
    "hill_climbing",
    "sensitization",
    "dyn_unlock",
];
