use gatesim::CombSim;
use locking::LockedCircuit;
use netlist::{Error, NetId};

/// A functional chip the attacker can query: apply a data input, observe the
/// combinational outputs.
///
/// Conventional scan access makes every query answerable ([`CombOracle`]).
/// An OraP-protected chip (the `orap` crate's `ProtectedChipOracle`) returns
/// `None` — the scan-side responses it produces come from the *locked*
/// circuit and are useless to the attacker, which is precisely the paper's
/// defence.
pub trait Oracle {
    /// Data input width (non-key combinational inputs).
    fn num_inputs(&self) -> usize;

    /// Output width.
    fn num_outputs(&self) -> usize;

    /// Attempts to obtain the *correct* (unlocked) response for `input`.
    /// Returns `None` when the platform yields no correct response.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input.len() != num_inputs()`.
    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>>;

    /// Number of queries attempted so far (answered or refused).
    fn queries_attempted(&self) -> usize;
}

/// The ideal oracle every pre-OraP attack paper assumes: unfettered
/// combinational access to the activated chip via its scan chains.
#[derive(Debug, Clone)]
pub struct CombOracle {
    sim: CombSim,
    /// Positions of the data inputs within the activated circuit's
    /// comb-input list (key inputs are left dangling constants).
    data_pos: Vec<usize>,
    key_values: Vec<(usize, bool)>,
    queries: usize,
}

impl CombOracle {
    /// Builds the oracle from a locked circuit by fixing its correct key.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the locked circuit is cyclic.
    pub fn from_locked(locked: &LockedCircuit) -> Result<Self, Error> {
        let sim = CombSim::new(&locked.circuit)?;
        Ok(Self::from_locked_sim(locked, sim))
    }

    /// Builds the oracle over an already-compiled artifact of the locked
    /// circuit, so concurrent consumers (e.g. a serving layer holding a
    /// content-hashed artifact cache) share one `CompiledCircuit` instead of
    /// re-levelizing per oracle.
    ///
    /// The artifact must be the compilation of `locked.circuit`; a mismatch
    /// makes oracle responses meaningless (input positions are resolved
    /// against the artifact's input list).
    pub fn from_locked_compiled(
        locked: &LockedCircuit,
        compiled: std::sync::Arc<netlist::CompiledCircuit>,
    ) -> Self {
        Self::from_locked_sim(locked, CombSim::from_compiled(compiled))
    }

    fn from_locked_sim(locked: &LockedCircuit, sim: CombSim) -> Self {
        let key_set: std::collections::HashMap<NetId, bool> = locked
            .key_inputs
            .iter()
            .copied()
            .zip(locked.correct_key.iter().copied())
            .collect();
        let mut data_pos = Vec::new();
        let mut key_values = Vec::new();
        for (i, n) in sim.inputs().iter().enumerate() {
            match key_set.get(n) {
                Some(&v) => key_values.push((i, v)),
                None => data_pos.push(i),
            }
        }
        CombOracle {
            sim,
            data_pos,
            key_values,
            queries: 0,
        }
    }
}

impl Oracle for CombOracle {
    fn num_inputs(&self) -> usize {
        self.data_pos.len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.outputs().len()
    }

    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(input.len(), self.data_pos.len(), "input width mismatch");
        self.queries += 1;
        let mut words = vec![0u64; self.sim.inputs().len()];
        for (&pos, &b) in self.data_pos.iter().zip(input) {
            words[pos] = if b { !0 } else { 0 };
        }
        for &(pos, v) in &self.key_values {
            words[pos] = if v { !0 } else { 0 };
        }
        Some(
            self.sim
                .eval_words(&words)
                .into_iter()
                .map(|w| w & 1 == 1)
                .collect(),
        )
    }

    fn queries_attempted(&self) -> usize {
        self.queries
    }
}

/// An oracle that refuses every query — handy for tests; behaviourally what
/// the attacker experiences against OraP without modelling the whole chip.
#[derive(Debug, Clone)]
pub struct DeadOracle {
    /// Data input width to report.
    pub inputs: usize,
    /// Output width to report.
    pub outputs: usize,
    queries: usize,
}

impl DeadOracle {
    /// Creates a dead oracle with the given interface.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        DeadOracle {
            inputs,
            outputs,
            queries: 0,
        }
    }
}

impl Oracle for DeadOracle {
    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn num_outputs(&self) -> usize {
        self.outputs
    }

    fn query(&mut self, _input: &[bool]) -> Option<Vec<bool>> {
        self.queries += 1;
        None
    }

    fn queries_attempted(&self) -> usize {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::random::{self, RllConfig};
    use netlist::samples;

    #[test]
    fn comb_oracle_matches_original() {
        let original = samples::full_adder();
        let locked = random::lock(&original, &RllConfig { key_bits: 3, seed: 1 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        assert_eq!(oracle.num_inputs(), 3);
        assert_eq!(oracle.num_outputs(), 2);
        let orig = gatesim::CombSim::new(&original).unwrap();
        for m in 0..8u32 {
            let input: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
            let y = oracle.query(&input).expect("comb oracle always answers");
            assert_eq!(y, orig.eval_bools(&input), "input {input:?}");
        }
        assert_eq!(oracle.queries_attempted(), 8);
    }

    #[test]
    fn dead_oracle_refuses() {
        let mut d = DeadOracle::new(4, 2);
        assert_eq!(d.query(&[false; 4]), None);
        assert_eq!(d.queries_attempted(), 1);
    }
}
