//! Tseitin encoding of netlists into CNF.
//!
//! The SAT-attack family encodes the locked circuit several times over
//! shared input/key variables; this module provides that machinery on top
//! of the [`cdcl`] solver.

use std::collections::HashMap;

use cdcl::{Lit, Solver, Var};
use netlist::{CompiledCircuit, GateKind, NetId};

/// Encodes one instance of the compiled circuit into `solver`.
///
/// `bound` maps nets (typically the combinational inputs) to existing
/// literals so that several instances can share inputs or key variables;
/// unbound inputs receive fresh variables. Returns a literal for every net,
/// indexed by [`NetId::index`].
///
/// Taking a [`CompiledCircuit`] means the levelization is computed once per
/// artifact, no matter how many miter copies or per-observation instances an
/// attack encodes.
pub fn encode(
    solver: &mut Solver,
    cc: &CompiledCircuit,
    bound: &HashMap<NetId, Lit>,
) -> Vec<Lit> {
    // Fallback constant (lazily created on first Const gate).
    let mut const_false: Option<Lit> = None;
    let mut lits: Vec<Option<Lit>> = vec![None; cc.num_nets()];
    for &id in cc.order() {
        if let Some(&l) = bound.get(&id) {
            lits[id.index()] = Some(l);
            continue;
        }
        match cc.kind_of(id.index() as u32) {
            None => {
                // Unbound input: fresh free variable.
                lits[id.index()] = Some(solver.new_var().positive());
            }
            Some(kind) => {
                let fan: Vec<Lit> = cc
                    .fanin(id.index() as u32)
                    .iter()
                    .map(|f| lits[*f as usize].expect("topological order"))
                    .collect();
                let lit = match kind {
                    GateKind::Buf => fan[0],
                    GateKind::Not => !fan[0],
                    GateKind::And => encode_and(solver, &fan),
                    GateKind::Nand => !encode_and(solver, &fan),
                    GateKind::Or => !encode_and(solver, &fan.iter().map(|&l| !l).collect::<Vec<_>>()),
                    GateKind::Nor => encode_and(solver, &fan.iter().map(|&l| !l).collect::<Vec<_>>()),
                    GateKind::Xor => fan
                        .iter()
                        .copied()
                        .reduce(|a, b| encode_xor(solver, a, b))
                        .expect("arity"),
                    GateKind::Xnor => !fan
                        .iter()
                        .copied()
                        .reduce(|a, b| encode_xor(solver, a, b))
                        .expect("arity"),
                    GateKind::Const0 => *const_false.get_or_insert_with(|| {
                        let v = solver.new_var();
                        solver.add_clause(&[v.negative()]);
                        v.positive()
                    }),
                    GateKind::Const1 => !*const_false.get_or_insert_with(|| {
                        let v = solver.new_var();
                        solver.add_clause(&[v.negative()]);
                        v.positive()
                    }),
                };
                lits[id.index()] = Some(lit);
            }
        }
    }
    lits.into_iter()
        .map(|l| l.expect("all nets encoded"))
        .collect()
}

/// Fresh literal `y` with `y <-> AND(fanins)`.
pub fn encode_and(solver: &mut Solver, fanins: &[Lit]) -> Lit {
    let y = solver.new_var().positive();
    let mut big = Vec::with_capacity(fanins.len() + 1);
    for &f in fanins {
        solver.add_clause(&[!y, f]);
        big.push(!f);
    }
    big.push(y);
    solver.add_clause(&big);
    y
}

/// Fresh literal `z` with `z <-> a XOR b`.
pub fn encode_xor(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let z = solver.new_var().positive();
    solver.add_clause(&[!z, a, b]);
    solver.add_clause(&[!z, !a, !b]);
    solver.add_clause(&[z, !a, b]);
    solver.add_clause(&[z, a, !b]);
    z
}

/// Allocates fresh variables for a list of nets and returns the binding map
/// plus the variables in order.
pub fn bind_fresh(solver: &mut Solver, nets: &[NetId]) -> (HashMap<NetId, Lit>, Vec<Var>) {
    let mut map = HashMap::with_capacity(nets.len());
    let mut vars = Vec::with_capacity(nets.len());
    for &n in nets {
        let v = solver.new_var();
        map.insert(n, v.positive());
        vars.push(v);
    }
    (map, vars)
}

/// Adds the I/O consistency constraint `C(x, key_vars) == y` by encoding an
/// instance with the data inputs fixed to the constants of `x`.
///
/// `data_inputs`/`x` and `outputs`/`y` are positionally matched.
pub fn add_io_constraint(
    solver: &mut Solver,
    cc: &CompiledCircuit,
    data_inputs: &[NetId],
    key_binding: &HashMap<NetId, Lit>,
    x: &[bool],
    y: &[bool],
    outputs: &[NetId],
) {
    assert_eq!(data_inputs.len(), x.len(), "input width mismatch");
    assert_eq!(outputs.len(), y.len(), "output width mismatch");
    let mut bound = key_binding.clone();
    for (&n, &b) in data_inputs.iter().zip(x) {
        let v = solver.new_var();
        solver.add_clause(&[v.lit(b)]);
        bound.insert(n, v.positive());
    }
    let lits = encode(solver, cc, &bound);
    for (&o, &b) in outputs.iter().zip(y) {
        let l = lits[o.index()];
        solver.add_clause(&[if b { l } else { !l }]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl::SolveResult;
    use netlist::samples;

    /// The encoded circuit must agree with simulation for every assignment.
    #[test]
    fn encoding_matches_simulation() {
        let c = samples::full_adder();
        let cc = netlist::CompiledCircuit::compile(&c).unwrap();
        let sim = gatesim::CombSim::new(&c).unwrap();
        for m in 0..8u32 {
            let input: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
            let mut solver = Solver::new();
            let (bound, vars) = bind_fresh(&mut solver, &c.comb_inputs());
            let lits = encode(&mut solver, &cc, &bound);
            for (v, &b) in vars.iter().zip(&input) {
                solver.add_clause(&[v.lit(b)]);
            }
            assert_eq!(solver.solve(), SolveResult::Sat);
            let expect = sim.eval_bools(&input);
            for (&o, &e) in c.comb_outputs().iter().zip(&expect) {
                let l = lits[o.index()];
                let got = solver.value(l.var()).expect("assigned") ^ !l.is_positive();
                assert_eq!(got, e, "input {input:?} output {o}");
            }
        }
    }

    #[test]
    fn encoding_matches_simulation_random_circuit() {
        let c = netlist::generate::random_comb(13, 8, 5, 80).unwrap();
        let cc = netlist::CompiledCircuit::compile(&c).unwrap();
        let sim = gatesim::CombSim::new(&c).unwrap();
        let mut rng = netlist::rng::SplitMix64::new(2);
        for _ in 0..20 {
            let input: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
            let mut solver = Solver::new();
            let (bound, vars) = bind_fresh(&mut solver, &c.comb_inputs());
            let lits = encode(&mut solver, &cc, &bound);
            for (v, &b) in vars.iter().zip(&input) {
                solver.add_clause(&[v.lit(b)]);
            }
            assert_eq!(solver.solve(), SolveResult::Sat);
            let expect = sim.eval_bools(&input);
            for (&o, &e) in c.comb_outputs().iter().zip(&expect) {
                let l = lits[o.index()];
                let got = solver.value(l.var()).expect("assigned") ^ !l.is_positive();
                assert_eq!(got, e);
            }
        }
    }

    #[test]
    fn io_constraint_prunes_keys() {
        // Lock a tiny circuit; the correct key must satisfy every I/O
        // constraint, a key violating one must be excluded.
        let original = samples::majority3();
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 2, seed: 1 },
        )
        .unwrap();
        let c = &locked.circuit;
        let cc = netlist::CompiledCircuit::compile(c).unwrap();
        let data: Vec<NetId> = c
            .comb_inputs()
            .into_iter()
            .filter(|n| !locked.key_inputs.contains(n))
            .collect();
        let mut solver = Solver::new();
        let (key_bind, key_vars) = bind_fresh(&mut solver, &locked.key_inputs);
        // Constrain with the true behaviour on all 8 inputs.
        let sim = gatesim::CombSim::new(&original).unwrap();
        for m in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
            let y = sim.eval_bools(&x);
            add_io_constraint(
                &mut solver,
                &cc,
                &data,
                &key_bind,
                &x,
                &y,
                &c.comb_outputs(),
            );
        }
        assert_eq!(solver.solve(), SolveResult::Sat);
        let key: Vec<bool> = key_vars
            .iter()
            .map(|&v| solver.value(v).unwrap_or(false))
            .collect();
        // The extracted key must unlock correctly.
        assert!(crate::key_is_functionally_correct(&locked, &key, 256).unwrap());
    }

    #[test]
    fn xor_gadget_truth() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let z = encode_xor(&mut s, a.positive(), b.positive());
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let r = s.solve_with(&[a.lit(va), b.lit(vb)]);
            assert_eq!(r, SolveResult::Sat);
            let got = s.value(z.var()).unwrap() ^ !z.is_positive();
            assert_eq!(got, va ^ vb);
        }
    }
}
