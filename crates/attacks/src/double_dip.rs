//! Double-DIP attack variant (Shen & Zhou, GLSVLSI 2017).
//!
//! A *2-discriminating* input distinguishes at least two distinct pairs of
//! still-viable keys, so each oracle query eliminates at least two wrong-key
//! classes — this is what defeats SARLock-plus-traditional compounds faster
//! than the plain SAT attack. We encode it with a four-copy miter:
//!
//! ```text
//! C(X,K1) ≠ C(X,K2)  ∧  C(X,K3) ≠ C(X,K4)  ∧  (K1 ≠ K3 ∨ K2 ≠ K4)
//! ```
//!
//! When no 2-discriminating input remains, the attack falls back to the
//! plain SAT attack seeded with everything learnt so far.

use std::collections::HashMap;

use cdcl::{Lit, SolveResult, Solver, Var};
use locking::LockedCircuit;
use netlist::NetId;

use crate::cnf::{add_io_constraint, bind_fresh, encode, encode_xor};
use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// Double-DIP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleDipConfig {
    /// Maximum 2-discriminating iterations before the fallback phase.
    pub max_iterations: usize,
    /// Iteration cap for the fallback plain SAT attack.
    pub fallback_iterations: usize,
}

impl Default for DoubleDipConfig {
    fn default() -> Self {
        DoubleDipConfig {
            max_iterations: 2048,
            fallback_iterations: 4096,
        }
    }
}

struct FourCopyMiter {
    solver: Solver,
    data_vars: Vec<Var>,
    keys: [HashMap<NetId, Lit>; 4],
}

fn build_miter(locked: &LockedCircuit, data_inputs: &[NetId], outputs: &[NetId]) -> FourCopyMiter {
    let c = &locked.circuit;
    let mut solver = Solver::new();
    let (data_bind, data_vars) = bind_fresh(&mut solver, data_inputs);
    let keys: [HashMap<NetId, Lit>; 4] = std::array::from_fn(|_| {
        let (k, _) = bind_fresh(&mut solver, &locked.key_inputs);
        k
    });
    let mut out_lits: Vec<Vec<Lit>> = Vec::with_capacity(4);
    for k in &keys {
        let mut bound = data_bind.clone();
        bound.extend(k.iter().map(|(n, l)| (*n, *l)));
        let lits = encode(&mut solver, c, &bound);
        out_lits.push(outputs.iter().map(|o| lits[o.index()]).collect());
    }
    // Pair miters.
    for pair in [(0usize, 1usize), (2, 3)] {
        let diffs: Vec<Lit> = (0..outputs.len())
            .map(|i| encode_xor(&mut solver, out_lits[pair.0][i], out_lits[pair.1][i]))
            .collect();
        solver.add_clause(&diffs);
    }
    // Distinctness: (K1,K2) != (K3,K4).
    let mut distinct = Vec::new();
    for &n in &locked.key_inputs {
        distinct.push(encode_xor(&mut solver, keys[0][&n], keys[2][&n]));
        distinct.push(encode_xor(&mut solver, keys[1][&n], keys[3][&n]));
    }
    solver.add_clause(&distinct);
    FourCopyMiter {
        solver,
        data_vars,
        keys,
    }
}

/// Runs the Double-DIP attack.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &DoubleDipConfig,
) -> AttackOutcome {
    // Reuse the plain attack context for extraction bookkeeping; build the
    // four-copy miter separately.
    let mut ctx = AttackContext::new(locked);
    let mut miter = build_miter(locked, &ctx.data_inputs, &ctx.outputs);
    let mut iterations = 0usize;

    loop {
        if iterations >= config.max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            );
        }
        match miter.solver.solve() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                );
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x: Vec<bool> = miter
                    .data_vars
                    .iter()
                    .map(|&v| miter.solver.value(v).unwrap_or(false))
                    .collect();
                let Some(y) = oracle.query(&x) else {
                    return AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        iterations,
                        oracle.queries_attempted(),
                    );
                };
                // Constrain all four key copies plus the extraction context.
                for k in &miter.keys {
                    add_io_constraint(
                        &mut miter.solver,
                        &locked.circuit,
                        &ctx.data_inputs,
                        k,
                        &x,
                        &y,
                        &ctx.outputs,
                    );
                }
                ctx.learn(&x, &y);
            }
        }
    }

    // No 2-discriminating input remains: finish with the plain SAT attack,
    // replaying the accumulated history into a fresh context.
    let history = ctx.history.clone();
    let mut fresh = AttackContext::new(locked);
    for (x, y) in &history {
        fresh.learn(x, y);
    }
    let fallback = run_plain_from(fresh, oracle, config.fallback_iterations);
    AttackOutcome {
        iterations: iterations + fallback.iterations,
        ..fallback
    }
}

fn run_plain_from(
    mut ctx: AttackContext<'_>,
    oracle: &mut dyn Oracle,
    max_iterations: usize,
) -> AttackOutcome {
    let mut iterations = 0usize;
    loop {
        if iterations >= max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            );
        }
        match ctx.solver.solve() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                );
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x = ctx.model_dip();
                let Some(y) = oracle.query(&x) else {
                    return AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        iterations,
                        oracle.queries_attempted(),
                    );
                };
                ctx.learn(&x, &y);
            }
        }
    }
    match ctx.extract_key() {
        Some(key) => AttackOutcome {
            key: Some(key),
            failure: None,
            iterations,
            oracle_queries: oracle.queries_attempted(),
        },
        None => AttackOutcome::failed(
            FailureReason::Inconclusive,
            iterations,
            oracle.queries_attempted(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn recovers_rll_key() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        let key = out.key.expect("Double-DIP breaks RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn skips_sarlock_tail_faster_than_plain_sat_on_compound() {
        // RLL + SARLock compound: plain SAT burns one DIP per SARLock key;
        // Double-DIP's 2-discriminating inputs cannot come from the
        // SARLock tail, so its miter phase ends early.
        let original = samples::ripple_adder(3);
        let rll = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 8 },
        )
        .unwrap();
        let compound = locking::point_function::sarlock(
            &rll.circuit,
            &locking::point_function::SarLockConfig { key_bits: 6, seed: 9 },
        )
        .unwrap();
        let mut key_inputs = rll.key_inputs.clone();
        key_inputs.extend(compound.key_inputs.iter().copied());
        let mut correct_key = rll.correct_key.clone();
        correct_key.extend(compound.correct_key.iter().copied());
        let locked = locking::LockedCircuit {
            circuit: compound.circuit.clone(),
            key_inputs,
            correct_key,
            scheme: "rll+sarlock",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        // The returned key (exact after fallback) must unlock.
        let key = out.key.expect("compound falls to Double-DIP");
        assert!(key_is_functionally_correct(&locked, &key, 4096).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_double_dip() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(6, 4);
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
