//! Double-DIP attack variant (Shen & Zhou, GLSVLSI 2017).
//!
//! A *2-discriminating* input distinguishes at least two distinct pairs of
//! still-viable keys, so each oracle query eliminates at least two wrong-key
//! classes — this is what defeats SARLock-plus-traditional compounds faster
//! than the plain SAT attack. We encode it with a four-copy miter:
//!
//! ```text
//! C(X,K1) ≠ C(X,K2)  ∧  C(X,K3) ≠ C(X,K4)  ∧  (K1 ≠ K3 ∨ K2 ≠ K4)
//! ```
//!
//! All four copies go through the AIG-reduced encoder, so they share the
//! key-independent cone and one strashed structure. When no 2-discriminating
//! input remains, the attack falls back to the plain SAT attack on the
//! two-copy context that has been accumulating the same constraints all
//! along (no re-encoding or history replay needed).

use cdcl::{SolveResult, Solver};
use locking::LockedCircuit;

use crate::aigcnf::{xor_pos, ReducedEncoder};
use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// Double-DIP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleDipConfig {
    /// Maximum 2-discriminating iterations before the fallback phase.
    pub max_iterations: usize,
    /// Iteration cap for the fallback plain SAT attack.
    pub fallback_iterations: usize,
}

impl Default for DoubleDipConfig {
    fn default() -> Self {
        DoubleDipConfig {
            max_iterations: 2048,
            fallback_iterations: 4096,
        }
    }
}

struct FourCopyMiter {
    solver: Solver,
    enc: ReducedEncoder,
}

fn build_miter(locked: &LockedCircuit) -> FourCopyMiter {
    let mut solver = Solver::new();
    let mut enc = ReducedEncoder::new(locked, &mut solver, 4);
    enc.assert_miter(&mut solver, 0, 1, None);
    enc.assert_miter(&mut solver, 2, 3, None);
    // Distinctness: (K1,K2) != (K3,K4).
    let mut distinct = Vec::new();
    for j in 0..locked.key_inputs.len() {
        let (k1, k2) = (enc.key_vars(0)[j], enc.key_vars(1)[j]);
        let (k3, k4) = (enc.key_vars(2)[j], enc.key_vars(3)[j]);
        distinct.push(xor_pos(&mut solver, k1.positive(), k3.positive()));
        distinct.push(xor_pos(&mut solver, k2.positive(), k4.positive()));
    }
    solver.add_clause(&distinct);
    // Per-DIP constraints keep arriving against all four key copies; freeze
    // them so inprocessing never has to restore an eliminated key variable.
    for copy in 0..4 {
        for &k in enc.key_vars(copy) {
            solver.set_frozen(k, true);
        }
    }
    FourCopyMiter { solver, enc }
}

/// Runs the Double-DIP attack.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &DoubleDipConfig,
) -> AttackOutcome {
    // The plain two-copy context accumulates the same constraints in
    // parallel; after the 2-discriminating phase it continues as the
    // fallback attack and performs key extraction.
    let mut ctx = AttackContext::new(locked);
    let mut miter = build_miter(locked);
    let mut iterations = 0usize;

    loop {
        if iterations >= config.max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            )
            .with_telemetry(ctx.telemetry());
        }
        match miter.solver.solve() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                )
                .with_telemetry(ctx.telemetry());
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x: Vec<bool> = miter
                    .enc
                    .data_vars()
                    .iter()
                    .map(|&v| miter.solver.value(v).unwrap_or(false))
                    .collect();
                let Some(y) = oracle.query(&x) else {
                    return AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        iterations,
                        oracle.queries_attempted(),
                    )
                    .with_telemetry(ctx.telemetry());
                };
                // Constrain all four key copies plus the fallback context.
                for copy in 0..4 {
                    miter.enc.add_io_constraint(&mut miter.solver, copy, &x, &y);
                }
                ctx.learn(&x, &y);
            }
        }
    }

    // No 2-discriminating input remains: finish with the plain SAT attack
    // on the context that already holds every learnt constraint.
    let fallback = run_plain_from(ctx, oracle, config.fallback_iterations);
    AttackOutcome {
        iterations: iterations + fallback.iterations,
        ..fallback
    }
}

fn run_plain_from(
    mut ctx: AttackContext,
    oracle: &mut dyn Oracle,
    max_iterations: usize,
) -> AttackOutcome {
    let mut iterations = 0usize;
    loop {
        if iterations >= max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            )
            .with_telemetry(ctx.telemetry());
        }
        match ctx.solve_miter() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                )
                .with_telemetry(ctx.telemetry());
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x = ctx.model_dip();
                let Some(y) = oracle.query(&x) else {
                    return AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        iterations,
                        oracle.queries_attempted(),
                    )
                    .with_telemetry(ctx.telemetry());
                };
                ctx.learn(&x, &y);
            }
        }
    }
    let key = ctx.extract_key();
    let telemetry = ctx.telemetry();
    match key {
        Some(key) => AttackOutcome {
            key: Some(key),
            failure: None,
            iterations,
            oracle_queries: oracle.queries_attempted(),
            telemetry,
        },
        None => AttackOutcome::failed(
            FailureReason::Inconclusive,
            iterations,
            oracle.queries_attempted(),
        )
        .with_telemetry(telemetry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn recovers_rll_key() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        let key = out.key.expect("Double-DIP breaks RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn skips_sarlock_tail_faster_than_plain_sat_on_compound() {
        // RLL + SARLock compound: plain SAT burns one DIP per SARLock key;
        // Double-DIP's 2-discriminating inputs cannot come from the
        // SARLock tail, so its miter phase ends early.
        let original = samples::ripple_adder(3);
        let rll = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 8 },
        )
        .unwrap();
        let compound = locking::point_function::sarlock(
            &rll.circuit,
            &locking::point_function::SarLockConfig { key_bits: 6, seed: 9 },
        )
        .unwrap();
        let mut key_inputs = rll.key_inputs.clone();
        key_inputs.extend(compound.key_inputs.iter().copied());
        let mut correct_key = rll.correct_key.clone();
        correct_key.extend(compound.correct_key.iter().copied());
        let locked = locking::LockedCircuit {
            circuit: compound.circuit.clone(),
            key_inputs,
            correct_key,
            scheme: "rll+sarlock",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        // The returned key (exact after fallback) must unlock.
        let key = out.key.expect("compound falls to Double-DIP");
        assert!(key_is_functionally_correct(&locked, &key, 4096).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_double_dip() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(6, 4);
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
