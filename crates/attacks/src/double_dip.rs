//! Double-DIP attack variant (Shen & Zhou, GLSVLSI 2017).
//!
//! A *2-discriminating* input distinguishes at least two distinct pairs of
//! still-viable keys, so each oracle query eliminates at least two wrong-key
//! classes — this is what defeats SARLock-plus-traditional compounds faster
//! than the plain SAT attack. We encode it with a four-copy miter:
//!
//! ```text
//! C(X,K1) ≠ C(X,K2)  ∧  C(X,K3) ≠ C(X,K4)  ∧  (K1 ≠ K3 ∨ K2 ≠ K4)
//! ```
//!
//! All four copies go through the AIG-reduced encoder, so they share the
//! key-independent cone and one strashed structure. When no 2-discriminating
//! input remains, the attack falls back to the plain SAT attack on the
//! two-copy context that has been accumulating the same constraints all
//! along (no re-encoding or history replay needed).

use cdcl::{SolveResult, Solver};
use locking::LockedCircuit;

use crate::aigcnf::{xor_pos, ReducedEncoder};
use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// Double-DIP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleDipConfig {
    /// Maximum 2-discriminating iterations before the fallback phase.
    pub max_iterations: usize,
    /// Iteration cap for the fallback plain SAT attack.
    pub fallback_iterations: usize,
}

impl Default for DoubleDipConfig {
    fn default() -> Self {
        DoubleDipConfig {
            max_iterations: 2048,
            fallback_iterations: 4096,
        }
    }
}

struct FourCopyMiter {
    solver: Solver,
    enc: ReducedEncoder,
}

fn build_miter(locked: &LockedCircuit) -> FourCopyMiter {
    let mut solver = Solver::new();
    let mut enc = ReducedEncoder::new(locked, &mut solver, 4);
    enc.assert_miter(&mut solver, 0, 1, None);
    enc.assert_miter(&mut solver, 2, 3, None);
    // Distinctness: (K1,K2) != (K3,K4).
    let mut distinct = Vec::new();
    for j in 0..locked.key_inputs.len() {
        let (k1, k2) = (enc.key_vars(0)[j], enc.key_vars(1)[j]);
        let (k3, k4) = (enc.key_vars(2)[j], enc.key_vars(3)[j]);
        distinct.push(xor_pos(&mut solver, k1.positive(), k3.positive()));
        distinct.push(xor_pos(&mut solver, k2.positive(), k4.positive()));
    }
    solver.add_clause(&distinct);
    // Per-DIP constraints keep arriving against all four key copies; freeze
    // them so inprocessing never has to restore an eliminated key variable.
    for copy in 0..4 {
        for &k in enc.key_vars(copy) {
            solver.set_frozen(k, true);
        }
    }
    FourCopyMiter { solver, enc }
}

/// Double-DIP as an [`AttackEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleDipEngine {
    /// Attack parameters.
    pub config: DoubleDipConfig,
}

impl AttackEngine for DoubleDipEngine {
    fn name(&self) -> &'static str {
        "double_dip"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        // The plain two-copy context accumulates the same constraints in
        // parallel; after the 2-discriminating phase it continues as the
        // fallback attack and performs key extraction.
        Box::new(DoubleDipSession {
            ctx: AttackContext::new(locked),
            miter: build_miter(locked),
            oracle,
            config: self.config,
            in_fallback: false,
            miter_iterations: 0,
            fallback_iterations: 0,
            pending_dip: None,
            started: false,
            outcome: None,
        })
    }
}

/// A Double-DIP attack in progress: 2-discriminating DIPs first, then the
/// plain SAT fallback on the two-copy context that accumulated the same
/// constraints all along.
pub struct DoubleDipSession<'a> {
    ctx: AttackContext,
    miter: FourCopyMiter,
    oracle: &'a mut dyn Oracle,
    config: DoubleDipConfig,
    in_fallback: bool,
    miter_iterations: usize,
    fallback_iterations: usize,
    /// A DIP (of the current phase) whose oracle query was interrupted.
    pending_dip: Option<Vec<bool>>,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl DoubleDipSession<'_> {
    fn total_iterations(&self) -> usize {
        self.miter_iterations + self.fallback_iterations
    }

    fn finish(&mut self, outcome: AttackOutcome) -> StepStatus {
        self.outcome = Some(outcome);
        StepStatus::Done
    }

    fn finish_failed(&mut self, reason: FailureReason) -> StepStatus {
        let out = AttackOutcome::failed(
            reason,
            self.total_iterations(),
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry());
        self.finish(out)
    }

    fn emit_milestone(&self, ctl: &mut AttackCtl, stage: &'static str) {
        ctl.emit(ProgressEvent::Milestone(Milestone {
            stage,
            iterations: self.total_iterations(),
            dips_eliminated: self.ctx.dips.len(),
            clauses_learned: self.ctx.solver.stats().learned_clauses,
            oracle_queries: ctl.queries(),
        }));
    }

    /// One step of the 2-discriminating phase.
    fn step_miter(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        ctl.arm_solver(&mut self.miter.solver);
        let x = match self.pending_dip.take() {
            Some(x) => x,
            None => {
                if self.miter_iterations >= self.config.max_iterations {
                    return self.finish_failed(FailureReason::IterationLimit);
                }
                match self.miter.solver.solve() {
                    SolveResult::Unknown => {
                        return match ctl.solver_interrupt(&self.miter.solver) {
                            Some(why) => StepStatus::Interrupted(why),
                            None => self.finish_failed(FailureReason::SolverBudget),
                        };
                    }
                    SolveResult::Unsat => {
                        // No 2-discriminating input remains: switch to the
                        // plain SAT fallback.
                        self.in_fallback = true;
                        ctl.emit_stage("fallback");
                        return StepStatus::Running;
                    }
                    SolveResult::Sat => self
                        .miter
                        .enc
                        .data_vars()
                        .iter()
                        .map(|&v| self.miter.solver.value(v).unwrap_or(false))
                        .collect(),
                }
            }
        };
        match ctl.query(self.oracle, &x) {
            Err(why) => {
                self.pending_dip = Some(x);
                StepStatus::Interrupted(why)
            }
            Ok(None) => {
                self.miter_iterations += 1;
                self.finish_failed(FailureReason::OracleUnavailable)
            }
            Ok(Some(y)) => {
                self.miter_iterations += 1;
                // Constrain all four key copies plus the fallback context.
                for copy in 0..4 {
                    self.miter
                        .enc
                        .add_io_constraint(&mut self.miter.solver, copy, &x, &y);
                }
                self.ctx.learn(&x, &y);
                self.emit_milestone(ctl, "2dip-search");
                StepStatus::Running
            }
        }
    }

    /// One step of the plain-SAT fallback phase.
    fn step_fallback(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        ctl.arm_solver(&mut self.ctx.solver);
        let x = match self.pending_dip.take() {
            Some(x) => x,
            None => {
                if self.fallback_iterations >= self.config.fallback_iterations {
                    return self.finish_failed(FailureReason::IterationLimit);
                }
                match self.ctx.solve_miter() {
                    SolveResult::Unknown => {
                        return match ctl.solver_interrupt(&self.ctx.solver) {
                            Some(why) => StepStatus::Interrupted(why),
                            None => self.finish_failed(FailureReason::SolverBudget),
                        };
                    }
                    SolveResult::Unsat => {
                        ctl.emit_stage("extract");
                        let key = self.ctx.extract_key();
                        let telemetry = self.ctx.telemetry();
                        return match key {
                            Some(key) => self.finish(AttackOutcome {
                                key: Some(key),
                                failure: None,
                                iterations: self.total_iterations(),
                                oracle_queries: self.oracle.queries_attempted(),
                                telemetry,
                            }),
                            None => self.finish_failed(FailureReason::Inconclusive),
                        };
                    }
                    SolveResult::Sat => self.ctx.model_dip(),
                }
            }
        };
        match ctl.query(self.oracle, &x) {
            Err(why) => {
                self.pending_dip = Some(x);
                StepStatus::Interrupted(why)
            }
            Ok(None) => {
                self.fallback_iterations += 1;
                self.finish_failed(FailureReason::OracleUnavailable)
            }
            Ok(Some(y)) => {
                self.fallback_iterations += 1;
                self.ctx.learn(&x, &y);
                self.emit_milestone(ctl, "fallback");
                StepStatus::Running
            }
        }
    }
}

impl AttackSession for DoubleDipSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage("2dip-search");
        }
        if self.in_fallback {
            self.step_fallback(ctl)
        } else {
            self.step_miter(ctl)
        }
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        AttackOutcome::failed(
            why.into(),
            self.total_iterations(),
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry())
    }
}

/// Runs the Double-DIP attack to completion (thin wrapper over the engine
/// with an inert control block).
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &DoubleDipConfig,
) -> AttackOutcome {
    crate::engine::run(
        &DoubleDipEngine { config: *config },
        locked,
        oracle,
        &mut AttackCtl::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn recovers_rll_key() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        let key = out.key.expect("Double-DIP breaks RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn skips_sarlock_tail_faster_than_plain_sat_on_compound() {
        // RLL + SARLock compound: plain SAT burns one DIP per SARLock key;
        // Double-DIP's 2-discriminating inputs cannot come from the
        // SARLock tail, so its miter phase ends early.
        let original = samples::ripple_adder(3);
        let rll = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 8 },
        )
        .unwrap();
        let compound = locking::point_function::sarlock(
            &rll.circuit,
            &locking::point_function::SarLockConfig { key_bits: 6, seed: 9 },
        )
        .unwrap();
        let mut key_inputs = rll.key_inputs.clone();
        key_inputs.extend(compound.key_inputs.iter().copied());
        let mut correct_key = rll.correct_key.clone();
        correct_key.extend(compound.correct_key.iter().copied());
        let locked = locking::LockedCircuit {
            circuit: compound.circuit.clone(),
            key_inputs,
            correct_key,
            scheme: "rll+sarlock",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        // The returned key (exact after fallback) must unlock.
        let key = out.key.expect("compound falls to Double-DIP");
        assert!(key_is_functionally_correct(&locked, &key, 4096).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_double_dip() {
        let original = samples::ripple_adder(3);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 2 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(6, 4);
        let out = attack(&locked, &mut oracle, &DoubleDipConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
