//! Key-sensitization probing (Yasin et al., TCAD 2016).
//!
//! For each key bit the attacker finds an input that *sensitizes* the bit to
//! an output (a SAT query on a two-copy miter differing only in that bit),
//! queries the oracle there, and keeps whichever polarity remains consistent
//! with the observation. A bit is *inferred* when exactly one polarity is
//! consistent with all observations so far. Isolated key gates (as in plain
//! RLL) leak this way; interference between key bits (or — the OraP case —
//! a dead oracle) stops the attack.

use std::collections::HashMap;

use cdcl::{Lit, SolveResult, Solver, Var};
use locking::LockedCircuit;
use netlist::NetId;

use crate::cnf::{add_io_constraint, bind_fresh, encode, encode_xor};
use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::{AttackOutcome, AttackTelemetry, FailureReason, Oracle};

/// Sensitization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitizationConfig {
    /// Sensitizing inputs tried per key bit.
    pub probes_per_bit: usize,
}

impl Default for SensitizationConfig {
    fn default() -> Self {
        SensitizationConfig { probes_per_bit: 4 }
    }
}

/// Per-bit inference state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitVerdict {
    /// The bit's value was uniquely determined.
    Inferred(bool),
    /// Both polarities remain consistent (interference / muting).
    Ambiguous,
    /// No sensitizing input exists for this bit.
    Unsensitizable,
}

/// Detailed sensitization report.
#[derive(Debug, Clone)]
pub struct SensitizationReport {
    /// Per-key-bit verdicts.
    pub verdicts: Vec<BitVerdict>,
    /// The standard outcome view (key present iff all bits inferred).
    pub outcome: AttackOutcome,
}

/// Key sensitization as an [`AttackEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SensitizationEngine {
    /// Attack parameters.
    pub config: SensitizationConfig,
}

impl AttackEngine for SensitizationEngine {
    fn name(&self) -> &'static str {
        "sensitization"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        Box::new(SensitizationSession::new(locked, oracle, &self.config))
    }
}

/// One key bit's in-flight probe state: its sensitization miter plus how
/// many probes were answered so far.
struct BitProbe {
    miter: Solver,
    data_vars: Vec<Var>,
    probe: usize,
    found_any: bool,
    /// A sensitizing input found but not yet answered (interrupt stash).
    pending_x: Option<Vec<bool>>,
}

/// A sensitization attack in progress; each step probes one key bit, the
/// final step runs consistency inference.
pub struct SensitizationSession<'a> {
    locked: &'a LockedCircuit,
    oracle: &'a mut dyn Oracle,
    config: SensitizationConfig,
    cc: netlist::CompiledCircuit,
    data_inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    nk: usize,
    /// Consistency solver: accumulates every oracle observation over one set
    /// of key variables.
    consistency: Solver,
    kc: HashMap<NetId, Lit>,
    kc_vars: Vec<Var>,
    verdicts: Vec<BitVerdict>,
    probes: usize,
    bit: usize,
    current: Option<BitProbe>,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl<'a> SensitizationSession<'a> {
    fn new(
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
        config: &SensitizationConfig,
    ) -> Self {
        let c = &locked.circuit;
        // One compiled artifact feeds every miter copy and consistency
        // constraint: the circuit is levelized once for the whole attack.
        let cc = netlist::CompiledCircuit::compile(c).expect("attack targets are acyclic");
        let data_inputs: Vec<NetId> = c
            .comb_inputs()
            .into_iter()
            .filter(|n| !locked.key_inputs.contains(n))
            .collect();
        let outputs = c.comb_outputs();
        let nk = locked.key_inputs.len();
        let mut consistency = Solver::new();
        let (kc, kc_vars) = bind_fresh(&mut consistency, &locked.key_inputs);
        SensitizationSession {
            locked,
            oracle,
            config: *config,
            cc,
            data_inputs,
            outputs,
            nk,
            consistency,
            kc,
            kc_vars,
            verdicts: vec![BitVerdict::Ambiguous; nk],
            probes: 0,
            bit: 0,
            current: None,
            started: false,
            outcome: None,
        }
    }

    /// Builds the sensitization miter for key bit `self.bit`: two copies
    /// share X and all key bits except that bit, which is 0 in copy 1 and 1
    /// in copy 2; outputs must differ.
    fn build_probe(&self) -> BitProbe {
        let key_net = self.locked.key_inputs[self.bit];
        let mut miter = Solver::new();
        let (data_bind, data_vars) = bind_fresh(&mut miter, &self.data_inputs);
        let shared_keys: HashMap<NetId, Lit> = {
            let others: Vec<NetId> = self
                .locked
                .key_inputs
                .iter()
                .copied()
                .filter(|&k| k != key_net)
                .collect();
            let (m, _) = bind_fresh(&mut miter, &others);
            m
        };
        let bit0 = miter.new_var();
        miter.add_clause(&[bit0.negative()]);
        let bit1 = miter.new_var();
        miter.add_clause(&[bit1.positive()]);

        let mut bound1 = data_bind.clone();
        bound1.extend(shared_keys.iter().map(|(n, l)| (*n, *l)));
        bound1.insert(key_net, bit0.positive());
        let lits1 = encode(&mut miter, &self.cc, &bound1);
        let mut bound2 = data_bind.clone();
        bound2.extend(shared_keys.iter().map(|(n, l)| (*n, *l)));
        bound2.insert(key_net, bit1.positive());
        let lits2 = encode(&mut miter, &self.cc, &bound2);
        let diffs: Vec<Lit> = self
            .outputs
            .iter()
            .map(|o| encode_xor(&mut miter, lits1[o.index()], lits2[o.index()]))
            .collect();
        miter.add_clause(&diffs);
        BitProbe {
            miter,
            data_vars,
            probe: 0,
            found_any: false,
            pending_x: None,
        }
    }

    /// Probes the current bit to completion (or interrupt). Returns
    /// `Running` when the bit is done and the session should move on.
    fn step_probe(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.current.is_none() {
            self.current = Some(self.build_probe());
        }
        let mut probe = self.current.take().expect("probe just ensured");
        ctl.arm_solver(&mut probe.miter);
        while probe.probe < self.config.probes_per_bit {
            let x: Vec<bool> = match probe.pending_x.take() {
                Some(x) => x,
                None => match probe.miter.solve() {
                    SolveResult::Sat => {
                        probe.found_any = true;
                        self.probes += 1;
                        probe
                            .data_vars
                            .iter()
                            .map(|&v| probe.miter.value(v).unwrap_or(false))
                            .collect()
                    }
                    SolveResult::Unknown => {
                        if let Some(why) = ctl.solver_interrupt(&probe.miter) {
                            self.current = Some(probe);
                            return StepStatus::Interrupted(why);
                        }
                        break;
                    }
                    SolveResult::Unsat => break,
                },
            };
            match ctl.query(self.oracle, &x) {
                Err(why) => {
                    probe.pending_x = Some(x);
                    self.current = Some(probe);
                    return StepStatus::Interrupted(why);
                }
                Ok(None) => {
                    let queries = self.oracle.queries_attempted();
                    self.current = Some(probe);
                    self.outcome = Some(AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        self.probes,
                        queries,
                    ));
                    return StepStatus::Done;
                }
                Ok(Some(y)) => {
                    add_io_constraint(
                        &mut self.consistency,
                        &self.cc,
                        &self.data_inputs,
                        &self.kc,
                        &x,
                        &y,
                        &self.outputs,
                    );
                    // Block this X so the next probe differs.
                    let block: Vec<Lit> = probe
                        .data_vars
                        .iter()
                        .zip(&x)
                        .map(|(&v, &b)| v.lit(!b))
                        .collect();
                    probe.miter.add_clause(&block);
                    probe.probe += 1;
                }
            }
        }
        if !probe.found_any {
            self.verdicts[self.bit] = BitVerdict::Unsensitizable;
        }
        self.bit += 1;
        self.current = None;
        ctl.emit(ProgressEvent::Milestone(Milestone {
            stage: "probe",
            iterations: self.probes,
            dips_eliminated: 0,
            clauses_learned: 0,
            oracle_queries: ctl.queries(),
        }));
        StepStatus::Running
    }

    /// Per-bit inference from the accumulated observations. Idempotent: an
    /// interrupted inference pass re-derives the same verdicts on resume.
    fn step_infer(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        ctl.emit_stage("infer");
        ctl.arm_solver(&mut self.consistency);
        let mut inferred_key = vec![false; self.nk];
        let mut all_inferred = true;
        for (bi, inferred) in inferred_key.iter_mut().enumerate() {
            if self.verdicts[bi] == BitVerdict::Unsensitizable {
                all_inferred = false;
                continue;
            }
            let assume = |s: &mut Solver, lit: Lit| match s.solve_with(&[lit]) {
                SolveResult::Sat => Ok(true),
                SolveResult::Unsat => Ok(false),
                SolveResult::Unknown => Err(()),
            };
            let can_be_0 = match assume(&mut self.consistency, self.kc_vars[bi].negative()) {
                Ok(v) => v,
                Err(()) => {
                    let why = ctl
                        .solver_interrupt(&self.consistency)
                        .unwrap_or(Interrupt::Cancelled);
                    return StepStatus::Interrupted(why);
                }
            };
            let can_be_1 = match assume(&mut self.consistency, self.kc_vars[bi].positive()) {
                Ok(v) => v,
                Err(()) => {
                    let why = ctl
                        .solver_interrupt(&self.consistency)
                        .unwrap_or(Interrupt::Cancelled);
                    return StepStatus::Interrupted(why);
                }
            };
            self.verdicts[bi] = match (can_be_0, can_be_1) {
                (true, false) => {
                    *inferred = false;
                    BitVerdict::Inferred(false)
                }
                (false, true) => {
                    *inferred = true;
                    BitVerdict::Inferred(true)
                }
                _ => {
                    all_inferred = false;
                    BitVerdict::Ambiguous
                }
            };
        }
        let queries = self.oracle.queries_attempted();
        self.outcome = Some(if all_inferred {
            AttackOutcome {
                key: Some(inferred_key),
                failure: None,
                iterations: self.probes,
                oracle_queries: queries,
                telemetry: AttackTelemetry::default(),
            }
        } else {
            AttackOutcome::failed(FailureReason::Inconclusive, self.probes, queries)
        });
        StepStatus::Done
    }

    /// The per-bit verdicts accumulated so far (complete once the session
    /// reports [`StepStatus::Done`]).
    pub fn verdicts(&self) -> &[BitVerdict] {
        &self.verdicts
    }
}

impl AttackSession for SensitizationSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage("probe");
        }
        if self.bit < self.nk {
            self.step_probe(ctl)
        } else {
            self.step_infer(ctl)
        }
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        AttackOutcome::failed(why.into(), self.probes, self.oracle.queries_attempted())
    }
}

/// Runs the key-sensitization attack, returning the per-bit verdict detail
/// alongside the standard outcome. (Drives a [`SensitizationSession`] with
/// an inert control block.)
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &SensitizationConfig,
) -> SensitizationReport {
    let mut session = SensitizationSession::new(locked, oracle, config);
    let outcome = crate::engine::drive(&mut session, &mut AttackCtl::new());
    SensitizationReport {
        verdicts: session.verdicts.clone(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn infers_isolated_key_bits() {
        // RLL on a wide adder: key gates sit on separate cones, so each bit
        // sensitizes cleanly — the classic key-sensitization victim.
        let original = samples::ripple_adder(6);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 12 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 8 });
        let inferred = report
            .verdicts
            .iter()
            .filter(|v| matches!(v, BitVerdict::Inferred(_)))
            .count();
        assert!(inferred >= 2, "expected some bits inferred, got {report:?}");
        // Every inferred bit must match the real key (soundness).
        for (bi, v) in report.verdicts.iter().enumerate() {
            if let BitVerdict::Inferred(b) = v {
                assert_eq!(
                    *b, locked.correct_key[bi],
                    "bit {bi} inferred incorrectly"
                );
            }
        }
    }

    #[test]
    fn full_key_recovery_when_everything_sensitizes() {
        let original = samples::ripple_adder(8);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 3, seed: 21 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 16 });
        if let Some(key) = &report.outcome.key {
            assert!(crate::key_is_functionally_correct(&locked, key, 1024).unwrap());
        }
    }

    #[test]
    fn dead_oracle_defeats_sensitization() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 2 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let report = attack(&locked, &mut oracle, &SensitizationConfig::default());
        assert_eq!(
            report.outcome.failure,
            Some(FailureReason::OracleUnavailable)
        );
    }

    #[test]
    fn wll_interferes_with_inference() {
        // Weighted control gates couple key bits; individual bits become
        // harder to pin down than with isolated RLL key gates. We only check
        // soundness here: inferred bits must be correct.
        let original = samples::ripple_adder(6);
        let locked = locking::weighted::lock(
            &original,
            &locking::weighted::WllConfig {
                key_bits: 6,
                control_width: 3,
                seed: 5,
            },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 6 });
        for (bi, v) in report.verdicts.iter().enumerate() {
            if let BitVerdict::Inferred(b) = v {
                assert_eq!(*b, locked.correct_key[bi], "unsound inference at {bi}");
            }
        }
    }
}
