//! Key-sensitization probing (Yasin et al., TCAD 2016).
//!
//! For each key bit the attacker finds an input that *sensitizes* the bit to
//! an output (a SAT query on a two-copy miter differing only in that bit),
//! queries the oracle there, and keeps whichever polarity remains consistent
//! with the observation. A bit is *inferred* when exactly one polarity is
//! consistent with all observations so far. Isolated key gates (as in plain
//! RLL) leak this way; interference between key bits (or — the OraP case —
//! a dead oracle) stops the attack.

use std::collections::HashMap;

use cdcl::{Lit, SolveResult, Solver};
use locking::LockedCircuit;
use netlist::NetId;

use crate::cnf::{add_io_constraint, bind_fresh, encode, encode_xor};
use crate::{AttackOutcome, AttackTelemetry, FailureReason, Oracle};

/// Sensitization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensitizationConfig {
    /// Sensitizing inputs tried per key bit.
    pub probes_per_bit: usize,
}

impl Default for SensitizationConfig {
    fn default() -> Self {
        SensitizationConfig { probes_per_bit: 4 }
    }
}

/// Per-bit inference state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitVerdict {
    /// The bit's value was uniquely determined.
    Inferred(bool),
    /// Both polarities remain consistent (interference / muting).
    Ambiguous,
    /// No sensitizing input exists for this bit.
    Unsensitizable,
}

/// Detailed sensitization report.
#[derive(Debug, Clone)]
pub struct SensitizationReport {
    /// Per-key-bit verdicts.
    pub verdicts: Vec<BitVerdict>,
    /// The standard outcome view (key present iff all bits inferred).
    pub outcome: AttackOutcome,
}

/// Runs the key-sensitization attack.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &SensitizationConfig,
) -> SensitizationReport {
    let c = &locked.circuit;
    // One compiled artifact feeds every miter copy and consistency
    // constraint: the circuit is levelized once for the whole attack.
    let cc = netlist::CompiledCircuit::compile(c).expect("attack targets are acyclic");
    let data_inputs: Vec<NetId> = c
        .comb_inputs()
        .into_iter()
        .filter(|n| !locked.key_inputs.contains(n))
        .collect();
    let outputs = c.comb_outputs();
    let nk = locked.key_inputs.len();

    // Consistency solver: accumulates every oracle observation over one set
    // of key variables.
    let mut consistency = Solver::new();
    let (kc, kc_vars) = bind_fresh(&mut consistency, &locked.key_inputs);

    let mut verdicts = vec![BitVerdict::Ambiguous; nk];
    let mut probes = 0usize;

    for (bi, &key_net) in locked.key_inputs.iter().enumerate() {
        // Sensitization miter: two copies share X and all key bits except
        // bit bi, which is 0 in copy 1 and 1 in copy 2; outputs must differ.
        let mut miter = Solver::new();
        let (data_bind, data_vars) = bind_fresh(&mut miter, &data_inputs);
        let shared_keys: HashMap<NetId, Lit> = {
            let others: Vec<NetId> = locked
                .key_inputs
                .iter()
                .copied()
                .filter(|&k| k != key_net)
                .collect();
            let (m, _) = bind_fresh(&mut miter, &others);
            m
        };
        let bit0 = miter.new_var();
        miter.add_clause(&[bit0.negative()]);
        let bit1 = miter.new_var();
        miter.add_clause(&[bit1.positive()]);

        let mut bound1 = data_bind.clone();
        bound1.extend(shared_keys.iter().map(|(n, l)| (*n, *l)));
        bound1.insert(key_net, bit0.positive());
        let lits1 = encode(&mut miter, &cc, &bound1);
        let mut bound2 = data_bind.clone();
        bound2.extend(shared_keys.iter().map(|(n, l)| (*n, *l)));
        bound2.insert(key_net, bit1.positive());
        let lits2 = encode(&mut miter, &cc, &bound2);
        let diffs: Vec<Lit> = outputs
            .iter()
            .map(|o| encode_xor(&mut miter, lits1[o.index()], lits2[o.index()]))
            .collect();
        miter.add_clause(&diffs);

        let mut found_any = false;
        for _ in 0..config.probes_per_bit {
            match miter.solve() {
                SolveResult::Sat => {
                    found_any = true;
                    let x: Vec<bool> = data_vars
                        .iter()
                        .map(|&v| miter.value(v).unwrap_or(false))
                        .collect();
                    probes += 1;
                    let Some(y) = oracle.query(&x) else {
                        return SensitizationReport {
                            verdicts,
                            outcome: AttackOutcome::failed(
                                FailureReason::OracleUnavailable,
                                probes,
                                oracle.queries_attempted(),
                            ),
                        };
                    };
                    add_io_constraint(
                        &mut consistency,
                        &cc,
                        &data_inputs,
                        &kc,
                        &x,
                        &y,
                        &outputs,
                    );
                    // Block this X so the next probe differs.
                    let block: Vec<Lit> = data_vars
                        .iter()
                        .zip(&x)
                        .map(|(&v, &b)| v.lit(!b))
                        .collect();
                    miter.add_clause(&block);
                }
                _ => break,
            }
        }
        if !found_any {
            verdicts[bi] = BitVerdict::Unsensitizable;
        }
    }

    // Per-bit inference from the accumulated observations.
    let mut inferred_key = vec![false; nk];
    let mut all_inferred = true;
    for bi in 0..nk {
        if verdicts[bi] == BitVerdict::Unsensitizable {
            all_inferred = false;
            continue;
        }
        let can_be_0 = consistency.solve_with(&[kc_vars[bi].negative()]) == SolveResult::Sat;
        let can_be_1 = consistency.solve_with(&[kc_vars[bi].positive()]) == SolveResult::Sat;
        verdicts[bi] = match (can_be_0, can_be_1) {
            (true, false) => {
                inferred_key[bi] = false;
                BitVerdict::Inferred(false)
            }
            (false, true) => {
                inferred_key[bi] = true;
                BitVerdict::Inferred(true)
            }
            _ => {
                all_inferred = false;
                BitVerdict::Ambiguous
            }
        };
    }

    let outcome = if all_inferred {
        AttackOutcome {
            key: Some(inferred_key),
            failure: None,
            iterations: probes,
            oracle_queries: oracle.queries_attempted(),
            telemetry: AttackTelemetry::default(),
        }
    } else {
        AttackOutcome::failed(
            FailureReason::Inconclusive,
            probes,
            oracle.queries_attempted(),
        )
    };
    SensitizationReport { verdicts, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn infers_isolated_key_bits() {
        // RLL on a wide adder: key gates sit on separate cones, so each bit
        // sensitizes cleanly — the classic key-sensitization victim.
        let original = samples::ripple_adder(6);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 12 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 8 });
        let inferred = report
            .verdicts
            .iter()
            .filter(|v| matches!(v, BitVerdict::Inferred(_)))
            .count();
        assert!(inferred >= 2, "expected some bits inferred, got {report:?}");
        // Every inferred bit must match the real key (soundness).
        for (bi, v) in report.verdicts.iter().enumerate() {
            if let BitVerdict::Inferred(b) = v {
                assert_eq!(
                    *b, locked.correct_key[bi],
                    "bit {bi} inferred incorrectly"
                );
            }
        }
    }

    #[test]
    fn full_key_recovery_when_everything_sensitizes() {
        let original = samples::ripple_adder(8);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 3, seed: 21 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 16 });
        if let Some(key) = &report.outcome.key {
            assert!(crate::key_is_functionally_correct(&locked, key, 1024).unwrap());
        }
    }

    #[test]
    fn dead_oracle_defeats_sensitization() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 4, seed: 2 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let report = attack(&locked, &mut oracle, &SensitizationConfig::default());
        assert_eq!(
            report.outcome.failure,
            Some(FailureReason::OracleUnavailable)
        );
    }

    #[test]
    fn wll_interferes_with_inference() {
        // Weighted control gates couple key bits; individual bits become
        // harder to pin down than with isolated RLL key gates. We only check
        // soundness here: inferred bits must be correct.
        let original = samples::ripple_adder(6);
        let locked = locking::weighted::lock(
            &original,
            &locking::weighted::WllConfig {
                key_bits: 6,
                control_width: 3,
                seed: 5,
            },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let report = attack(&locked, &mut oracle, &SensitizationConfig { probes_per_bit: 6 });
        for (bi, v) in report.verdicts.iter().enumerate() {
            if let BitVerdict::Inferred(b) = v {
                assert_eq!(*b, locked.correct_key[bi], "unsound inference at {bi}");
            }
        }
    }
}
