//! Oracle-guided attacks on combinational logic locking.
//!
//! These are the adversaries the OraP paper defends against. Every attack
//! here consumes an [`Oracle`] — an abstraction of "a functional chip whose
//! I/O behaviour the attacker can sample" — and a locked netlist with key
//! inputs. Whether the oracle actually answers is exactly what OraP
//! controls: the conventional scan-equipped chip answers every query, while
//! an OraP-protected chip (implemented in the `orap` crate) yields no
//! correct responses through scan, so every attack below reports
//! [`FailureReason::OracleUnavailable`].
//!
//! Implemented attacks:
//!
//! - [`sat`]: the SAT attack (Subramanyan et al., HOST 2015) — iterative
//!   distinguishing-input elimination with a miter over two key copies.
//! - [`appsat`]: AppSAT-style approximate attack (Shamsi et al., HOST 2017)
//!   — the SAT loop with periodic random-query settlement checks, returning
//!   an approximate key early.
//! - [`double_dip`]: a Double-DIP variant (Shen & Zhou, GLSVLSI 2017) using
//!   a three-copy miter so each distinguishing input eliminates at least two
//!   wrong keys.
//! - [`hill_climbing`]: the hill-climbing attack (Plaza & Markov, TCAD
//!   2015) — greedy key-bit flipping against sampled oracle responses.
//! - [`sensitization`]: key-sensitization probing (Yasin et al., TCAD 2016)
//!   — per-bit consistency inference from sensitizing patterns.
//! - [`sps`]: the oracle-less signal-probability-skew removal attack
//!   (Yasin et al., TETC 2017), which strips Anti-SAT-style blocks.
//! - [`dyn_unlock`]: DynUnlock (Limaye & Sinanoglu, DATE 2020) — the SAT
//!   loop over bounded scan sessions unrolled from dynamically keyed scan
//!   obfuscation, recovering the LFSR seed through the scan interface.
//!
//! # Example
//!
//! ```
//! use attacks::{sat, CombOracle};
//! use locking::random::{self, RllConfig};
//!
//! let original = netlist::samples::ripple_adder(4);
//! let locked = random::lock(&original, &RllConfig { key_bits: 6, seed: 1 }).expect("lockable");
//! let mut oracle = CombOracle::from_locked(&locked).expect("valid lock");
//! let outcome = sat::attack(&locked, &mut oracle, &sat::SatAttackConfig::default());
//! let key = outcome.key.expect("RLL falls to the SAT attack");
//! assert!(attacks::key_is_functionally_correct(&locked, &key, 512).expect("simulable"));
//! ```

#![warn(missing_docs)]

pub mod aigcnf;
pub mod appsat;
pub mod cnf;
pub mod double_dip;
pub mod dyn_unlock;
pub mod engine;
pub mod hill_climbing;
pub mod sat;
pub mod sensitization;
pub mod sps;
pub mod verify;

mod oracle;

pub use oracle::{CombOracle, DeadOracle, Oracle};

use locking::LockedCircuit;
use netlist::Error;

/// Why an attack gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The oracle refused every query — the OraP situation.
    OracleUnavailable,
    /// The iteration limit was reached.
    IterationLimit,
    /// The SAT solver's conflict budget ran out.
    SolverBudget,
    /// The attack concluded without determining a key (e.g. inconsistent
    /// oracle responses, which indicate the oracle was answering with a
    /// locked circuit's outputs).
    Inconclusive,
    /// The session's cancel flag fired ([`engine::AttackCtl`]).
    Cancelled,
    /// The session's wall-clock deadline passed ([`engine::AttackCtl`]).
    TimedOut,
    /// The session's oracle-query budget ran out before the attack could
    /// finish — the paper's protect-the-oracle metric as a hard limit.
    QueryBudgetExhausted,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureReason::OracleUnavailable => "oracle unavailable",
            FailureReason::IterationLimit => "iteration limit reached",
            FailureReason::SolverBudget => "solver budget exhausted",
            FailureReason::Inconclusive => "inconclusive",
            FailureReason::Cancelled => "cancelled",
            FailureReason::TimedOut => "timed out",
            FailureReason::QueryBudgetExhausted => "oracle query budget exhausted",
        };
        f.write_str(s)
    }
}

/// Telemetry for one learned distinguishing input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DipTelemetry {
    /// Clauses the DIP's I/O constraints added to the attack solver — with
    /// the AIG-reduced encoding this is the key-dependent residue of the
    /// cofactored circuit, not two full netlist clones.
    pub clauses_added: usize,
    /// Cumulative solver conflicts right after this DIP was learned.
    pub conflicts: u64,
    /// Cumulative clauses removed by inprocessing subsumption (plus
    /// self-subsuming strengthenings) right after this DIP was learned.
    pub subsumed_clauses: u64,
    /// Cumulative variables removed by bounded variable elimination right
    /// after this DIP was learned.
    pub eliminated_vars: u64,
    /// Cumulative literals removed by clause vivification right after this
    /// DIP was learned.
    pub vivified_literals: u64,
}

/// Aggregate per-run telemetry of the SAT-attack family, surfaced through
/// [`AttackOutcome`] and exported by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttackTelemetry {
    /// One record per distinguishing input, in attack order.
    pub dips: Vec<DipTelemetry>,
    /// Cumulative solver statistics at the end of the run.
    pub solver: cdcl::SolverStats,
    /// Final problem-clause count of the attack solver.
    pub clauses: usize,
    /// Final variable count of the attack solver.
    pub vars: usize,
    /// Simulation-engine work counters (full sweeps vs incremental events;
    /// populated by the simulation-driven attacks such as hill climbing).
    pub engine: netlist::EngineCounters,
}

/// Outcome of an oracle-guided attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The recovered key (functionally correct or best-effort, per attack).
    pub key: Option<Vec<bool>>,
    /// Why the attack failed, when `key` is `None`.
    pub failure: Option<FailureReason>,
    /// Attack iterations executed (distinguishing inputs for the SAT
    /// family, restarts for hill climbing, probes for sensitization).
    pub iterations: usize,
    /// Oracle queries attempted (including refused ones).
    pub oracle_queries: usize,
    /// Solver/encoding telemetry (empty for the non-SAT attacks).
    pub telemetry: AttackTelemetry,
}

impl AttackOutcome {
    /// Whether a key was recovered.
    pub fn succeeded(&self) -> bool {
        self.key.is_some()
    }

    pub(crate) fn failed(reason: FailureReason, iterations: usize, queries: usize) -> Self {
        AttackOutcome {
            key: None,
            failure: Some(reason),
            iterations,
            oracle_queries: queries,
            telemetry: AttackTelemetry::default(),
        }
    }

    pub(crate) fn with_telemetry(mut self, telemetry: AttackTelemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Checks whether `key` unlocks `locked` to the same function as the correct
/// key, over `patterns` pseudorandom patterns (the SAT attack guarantees only
/// *functional* equivalence, not bit-identity).
///
/// # Errors
///
/// Returns a netlist error if the locked circuit is cyclic.
pub fn key_is_functionally_correct(
    locked: &LockedCircuit,
    key: &[bool],
    patterns: usize,
) -> Result<bool, Error> {
    let rep = gatesim::hd::hamming_between_keys(
        &locked.circuit,
        &locked.key_inputs,
        &locked.correct_key,
        key,
        patterns,
        0xC0FFEE,
    )?;
    Ok(rep.flipped == 0)
}
