//! Signal-probability-skew (SPS) removal attack (Yasin et al., TETC 2017).
//!
//! Anti-SAT's flip signal `g(X⊕KA) ∧ ¬g(X⊕KB)` is almost always 0 — its
//! signal probability is heavily *skewed*. The SPS attack estimates signal
//! probabilities by simulation, finds the most skewed net feeding the
//! output-side XOR, replaces it with the constant it is skewed towards, and
//! thereby strips the protection block without ever touching an oracle.
//!
//! The paper notes SPS is "not applicable to OraP, since the proposed
//! scheme neither has signals with high probability skew, nor by removing
//! the LFSR and/or the key gates ... the circuit will unlock" — the tests
//! demonstrate both directions.

use locking::LockedCircuit;
use netlist::rng::SplitMix64;
use netlist::{Circuit, Error, Gate, GateKind, NetId};

use gatesim::CombSim;

/// SPS attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsConfig {
    /// Patterns for probability estimation (rounded up to 64).
    pub patterns: usize,
    /// A net qualifies as "skewed" when `|p(1) − 0.5| ≥ threshold`.
    pub skew_threshold: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for SpsConfig {
    fn default() -> Self {
        SpsConfig {
            patterns: 8192,
            skew_threshold: 0.45,
            seed: 0x595,
        }
    }
}

/// Outcome of the SPS attack.
#[derive(Debug, Clone)]
pub struct SpsOutcome {
    /// The recovered (unlocked) netlist, if a candidate was removed.
    pub recovered: Option<Circuit>,
    /// The net that was identified as the protection block's flip signal.
    pub removed_net: Option<NetId>,
    /// Measured skew of the removed net.
    pub skew: f64,
}

/// Estimates the signal probability `p(net = 1)` of every net over random
/// inputs (random values on key inputs too — the attacker has no key).
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn signal_probabilities(
    circuit: &Circuit,
    patterns: usize,
    seed: u64,
) -> Result<Vec<f64>, Error> {
    let sim = CombSim::new(circuit)?;
    let mut rng = SplitMix64::new(seed);
    let words = patterns.div_ceil(64).max(1);
    let mut ones = vec![0u64; circuit.num_nets()];
    let mut values = Vec::new();
    for _ in 0..words {
        let input: Vec<u64> = (0..sim.inputs().len()).map(|_| rng.next_u64()).collect();
        sim.eval_words_into(&input, &mut values);
        for (net, w) in values.iter().enumerate() {
            ones[net] += w.count_ones() as u64;
        }
    }
    let total = (words * 64) as f64;
    Ok(ones.into_iter().map(|o| o as f64 / total).collect())
}

/// Runs the SPS removal attack on a locked netlist.
///
/// The candidate set is restricted the way the published attack works:
/// nets that (a) feed an XOR/XNOR gate whose output reaches a primary
/// output, and (b) lie in the transitive fanout of key inputs. The most
/// skewed candidate above the threshold is replaced by its skewed-towards
/// constant.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn attack(locked: &LockedCircuit, config: &SpsConfig) -> Result<SpsOutcome, Error> {
    let c = &locked.circuit;
    let probs = signal_probabilities(c, config.patterns, config.seed)?;

    // Nets downstream of key inputs.
    let fanouts = c.fanouts();
    let mut key_cone = vec![false; c.num_nets()];
    let mut stack: Vec<NetId> = locked.key_inputs.clone();
    while let Some(n) = stack.pop() {
        if key_cone[n.index()] {
            continue;
        }
        key_cone[n.index()] = true;
        stack.extend(fanouts[n.index()].iter().copied());
    }

    // Candidates: key-cone nets feeding an XOR/XNOR whose output is a
    // primary output (the splice structure of point-function defences).
    let mut best: Option<(f64, NetId, bool)> = None; // (skew, net, towards)
    for id in c.net_ids() {
        let Some(g) = c.gate(id) else { continue };
        if !matches!(g.kind, GateKind::Xor | GateKind::Xnor) {
            continue;
        }
        if !c.primary_outputs().contains(&id) && !c.dffs().iter().any(|d| d.d == id) {
            continue;
        }
        for &f in &g.fanin {
            if !key_cone[f.index()] {
                continue;
            }
            let p = probs[f.index()];
            let skew = (p - 0.5).abs();
            if skew >= config.skew_threshold
                && best.map(|(s, _, _)| skew > s).unwrap_or(true)
            {
                best = Some((skew, f, p > 0.5));
            }
        }
    }

    let Some((skew, net, towards_one)) = best else {
        return Ok(SpsOutcome {
            recovered: None,
            removed_net: None,
            skew: 0.0,
        });
    };

    // Removal: re-drive the skewed net with its constant.
    let mut recovered = c.clone();
    let kind = if towards_one {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    recovered.set_driver(net, Gate::new(kind, vec![])?)?;
    recovered.validate()?;
    Ok(SpsOutcome {
        recovered: Some(recovered),
        removed_net: Some(net),
        skew,
    })
}

/// Checks whether the recovered netlist matches the oracle function
/// (locked circuit under the correct key) on random patterns — the
/// attacker's success criterion, evaluated with designer knowledge in tests.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
pub fn recovery_is_correct(
    locked: &LockedCircuit,
    recovered: &Circuit,
    patterns: usize,
) -> Result<bool, Error> {
    // Compare recovered(x, any key) against locked(x, correct key): the
    // recovered circuit still has key inputs as PIs; a correct removal makes
    // them don't-cares.
    let sim_r = CombSim::new(recovered)?;
    let sim_l = CombSim::new(&locked.circuit)?;
    let mut rng = SplitMix64::new(0x5950);
    let words = patterns.div_ceil(64).max(1);
    let key_pos: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|k| {
            sim_l
                .inputs()
                .iter()
                .position(|n| n == k)
                .expect("key input present")
        })
        .collect();
    for _ in 0..words {
        let mut input: Vec<u64> = (0..sim_l.inputs().len()).map(|_| rng.next_u64()).collect();
        let out_r = sim_r.eval_words(&input);
        for (k, &pos) in key_pos.iter().enumerate() {
            input[pos] = if locked.correct_key[k] { !0 } else { 0 };
        }
        let out_l = sim_l.eval_words(&input);
        if out_r != out_l {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::point_function::{anti_sat, AntiSatConfig};
    use netlist::samples;

    #[test]
    fn strips_anti_sat() {
        let original = samples::ripple_adder(5);
        let locked = anti_sat(&original, &AntiSatConfig { block_width: 6, seed: 2 }).unwrap();
        let out = attack(&locked, &SpsConfig::default()).unwrap();
        let recovered = out.recovered.expect("Anti-SAT flip signal is skewed");
        assert!(out.skew > 0.45, "skew {}", out.skew);
        assert!(
            recovery_is_correct(&locked, &recovered, 4096).unwrap(),
            "removing the skewed net must restore the original function"
        );
    }

    #[test]
    fn wll_offers_no_skewed_candidate() {
        // The paper's claim: OraP + WLL has no high-skew signals to remove.
        let original = samples::ripple_adder(5);
        let locked = locking::weighted::lock(
            &original,
            &locking::weighted::WllConfig {
                key_bits: 9,
                control_width: 3,
                seed: 4,
            },
        )
        .unwrap();
        let out = attack(&locked, &SpsConfig::default()).unwrap();
        if let Some(recovered) = out.recovered {
            // Even if something qualified, removal must not unlock.
            assert!(
                !recovery_is_correct(&locked, &recovered, 4096).unwrap(),
                "removal must not defeat WLL"
            );
        }
    }

    #[test]
    fn signal_probabilities_sane() {
        let c = samples::majority3();
        let p = signal_probabilities(&c, 8192, 1).unwrap();
        // Majority of 3 uniform inputs is 1 with probability 1/2.
        let y = c.find("y").unwrap();
        assert!((p[y.index()] - 0.5).abs() < 0.05, "p = {}", p[y.index()]);
        for &pi in c.primary_inputs() {
            assert!((p[pi.index()] - 0.5).abs() < 0.05);
        }
    }
}
