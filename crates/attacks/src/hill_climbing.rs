//! The hill-climbing attack (Plaza & Markov, TCAD 2015).
//!
//! A model-free search: sample oracle responses on a pattern set, then
//! greedily flip key bits whenever a flip reduces the number of mismatching
//! output bits between the locked netlist (under the candidate key) and the
//! oracle responses. Random restarts escape local optima.
//!
//! The paper notes the attack can alternatively use designer-provided *test
//! responses* of the unlocked circuit; under OraP the chip is tested locked,
//! so those responses correspond to the locked circuit and the attack learns
//! nothing — [`attack_with_responses`] lets experiments demonstrate exactly
//! that.

use gatesim::CombSim;
use locking::LockedCircuit;
use netlist::rng::SplitMix64;

use crate::{AttackOutcome, AttackTelemetry, FailureReason, Oracle};

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbConfig {
    /// Oracle patterns sampled for the objective function.
    pub sample_patterns: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Maximum improving sweeps per restart.
    pub max_sweeps: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            sample_patterns: 64,
            restarts: 20,
            max_sweeps: 64,
            seed: 0xC11B,
        }
    }
}

/// Runs hill climbing against a live oracle: samples `sample_patterns`
/// responses, then searches the key space.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &HillClimbConfig,
) -> AttackOutcome {
    let mut rng = SplitMix64::new(config.seed);
    let n_data = oracle.num_inputs();
    let mut patterns = Vec::with_capacity(config.sample_patterns);
    let mut responses = Vec::with_capacity(config.sample_patterns);
    for _ in 0..config.sample_patterns {
        let x: Vec<bool> = (0..n_data).map(|_| rng.bool()).collect();
        match oracle.query(&x) {
            None => {
                return AttackOutcome::failed(
                    FailureReason::OracleUnavailable,
                    0,
                    oracle.queries_attempted(),
                );
            }
            Some(y) => {
                patterns.push(x);
                responses.push(y);
            }
        }
    }
    attack_with_responses(locked, &patterns, &responses, config, oracle.queries_attempted())
}

/// Runs hill climbing against a fixed set of stimulus/response pairs (e.g.
/// manufacturing-test data). Returns the recovered key only if it explains
/// every response exactly.
pub fn attack_with_responses(
    locked: &LockedCircuit,
    patterns: &[Vec<bool>],
    responses: &[Vec<bool>],
    config: &HillClimbConfig,
    queries_attempted: usize,
) -> AttackOutcome {
    assert_eq!(patterns.len(), responses.len(), "pattern/response mismatch");
    let Ok(sim) = CombSim::new(&locked.circuit) else {
        return AttackOutcome::failed(FailureReason::Inconclusive, 0, queries_attempted);
    };
    let key_pos: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|k| {
            sim.inputs()
                .iter()
                .position(|n| n == k)
                .expect("key input present")
        })
        .collect();
    let data_pos: Vec<usize> = (0..sim.inputs().len())
        .filter(|i| !key_pos.contains(i))
        .collect();
    let nk = key_pos.len();
    let mut rng = SplitMix64::new(config.seed ^ 0x5eed);

    // Objective: mismatching output bits against the sampled responses,
    // pattern-parallel on the shared pool. The per-pattern counts are u64s
    // summed associatively, so the score — and hence the whole greedy
    // search — is bit-identical for any thread count.
    let pool = exec::global();
    let score = |key: &[bool]| -> u64 {
        pool.par_reduce(
            "hill_climb_score",
            patterns,
            0u64,
            |i, x: &Vec<bool>| {
                let mut input = vec![false; sim.inputs().len()];
                for (&p, &b) in data_pos.iter().zip(x) {
                    input[p] = b;
                }
                for (&p, &b) in key_pos.iter().zip(key) {
                    input[p] = b;
                }
                let got = sim.eval_bools(&input);
                got.iter()
                    .zip(&responses[i])
                    .filter(|(g, w)| g != w)
                    .count() as u64
            },
            |a, b| a + b,
        )
    };

    let mut restarts_used = 0usize;
    for restart in 0..config.restarts {
        restarts_used = restart + 1;
        let mut key: Vec<bool> = (0..nk).map(|_| rng.bool()).collect();
        let mut best = score(&key);
        if best == 0 {
            return AttackOutcome {
                key: Some(key),
                failure: None,
                iterations: restarts_used,
                oracle_queries: queries_attempted,
                telemetry: AttackTelemetry::default(),
            };
        }
        for _sweep in 0..config.max_sweeps {
            let mut improved = false;
            for bit in 0..nk {
                key[bit] = !key[bit];
                let s = score(&key);
                if s < best {
                    best = s;
                    improved = true;
                } else {
                    key[bit] = !key[bit];
                }
            }
            if best == 0 {
                return AttackOutcome {
                    key: Some(key),
                    failure: None,
                    iterations: restarts_used,
                    oracle_queries: queries_attempted,
                    telemetry: AttackTelemetry::default(),
                };
            }
            if !improved {
                break;
            }
        }
    }
    AttackOutcome::failed(
        FailureReason::Inconclusive,
        restarts_used,
        queries_attempted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn climbs_to_rll_key() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        let key = out.key.expect("hill climbing breaks small RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_hill_climbing() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }

    #[test]
    fn locked_test_responses_mislead_the_attack() {
        // OraP's testing story: the chip is tested LOCKED (key register
        // cleared), so test responses reflect the all-zero key, not the
        // correct one. Hill climbing then converges to the all-zero key —
        // which does not unlock the chip.
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        // Build "test responses" from the locked circuit with key = 0.
        let sim = CombSim::new(&locked.circuit).unwrap();
        let key_pos: Vec<usize> = locked
            .key_inputs
            .iter()
            .map(|k| sim.inputs().iter().position(|n| n == k).unwrap())
            .collect();
        let data_pos: Vec<usize> = (0..sim.inputs().len())
            .filter(|i| !key_pos.contains(i))
            .collect();
        let mut rng = SplitMix64::new(3);
        let mut patterns = Vec::new();
        let mut responses = Vec::new();
        for _ in 0..64 {
            let x: Vec<bool> = (0..data_pos.len()).map(|_| rng.bool()).collect();
            let mut input = vec![false; sim.inputs().len()];
            for (&p, &b) in data_pos.iter().zip(&x) {
                input[p] = b;
            }
            // key positions stay false: the cleared key register.
            patterns.push(x);
            responses.push(sim.eval_bools(&input));
        }
        let out = attack_with_responses(
            &locked,
            &patterns,
            &responses,
            &HillClimbConfig::default(),
            0,
        );
        if let Some(key) = out.key {
            // The attack "succeeds" on the locked responses, but the key it
            // finds is the cleared register — functionally wrong.
            assert!(
                !key_is_functionally_correct(&locked, &key, 1024).unwrap(),
                "locked-response key must not unlock the chip"
            );
        }
    }
}
