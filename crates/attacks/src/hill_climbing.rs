//! The hill-climbing attack (Plaza & Markov, TCAD 2015).
//!
//! A model-free search: sample oracle responses on a pattern set, then
//! greedily flip key bits whenever a flip reduces the number of mismatching
//! output bits between the locked netlist (under the candidate key) and the
//! oracle responses. Random restarts escape local optima.
//!
//! The paper notes the attack can alternatively use designer-provided *test
//! responses* of the unlocked circuit; under OraP the chip is tested locked,
//! so those responses correspond to the locked circuit and the attack learns
//! nothing — [`attack_with_responses`] lets experiments demonstrate exactly
//! that.
//!
//! Scoring runs on the compiled engine's *incremental* kernel: the sampled
//! patterns are packed 64 per word batch and fully swept once per restart;
//! each candidate key-bit flip then re-evaluates only the downstream cone of
//! that key input ([`EvalScratch::propagate`]), committing on improvement
//! and reverting otherwise. Scores are exact mismatch counts, so the greedy
//! trajectory is identical to full re-simulation — just without re-running
//! the untouched logic.

use locking::LockedCircuit;
use netlist::rng::SplitMix64;
use netlist::{CompiledCircuit, EngineCounters, EvalScratch};

use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::{AttackOutcome, AttackTelemetry, FailureReason, Oracle};

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbConfig {
    /// Oracle patterns sampled for the objective function.
    pub sample_patterns: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Maximum improving sweeps per restart.
    pub max_sweeps: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            sample_patterns: 64,
            restarts: 20,
            max_sweeps: 64,
            seed: 0xC11B,
        }
    }
}

/// Hill climbing as an [`AttackEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HillClimbEngine {
    /// Attack parameters.
    pub config: HillClimbConfig,
}

impl AttackEngine for HillClimbEngine {
    fn name(&self) -> &'static str {
        "hill_climbing"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        Box::new(HillClimbSession {
            locked,
            oracle: Some(oracle),
            config: self.config,
            phase: HcPhase::Sample {
                rng: SplitMix64::new(self.config.seed),
                patterns: Vec::with_capacity(self.config.sample_patterns),
                responses: Vec::with_capacity(self.config.sample_patterns),
                pending_x: None,
            },
            started: false,
            outcome: None,
        })
    }
}

enum HcPhase {
    /// Sampling oracle responses for the objective function.
    Sample {
        rng: SplitMix64,
        patterns: Vec<Vec<bool>>,
        responses: Vec<Vec<bool>>,
        /// A drawn-but-unqueried pattern stashed by an interrupt.
        pending_x: Option<Vec<bool>>,
    },
    /// Greedy key-bit search over the sampled (or provided) responses.
    Search(Box<HcSearch>),
}

/// The deduplicated hill-climbing core: the packed batches, scratches and
/// greedy restart/sweep state shared by the live-oracle engine path and the
/// fixed-responses shim ([`attack_with_responses`]).
struct HcSearch {
    cc: CompiledCircuit,
    inputs: Vec<netlist::NetId>,
    outputs: Vec<netlist::NetId>,
    key_pos: Vec<usize>,
    nk: usize,
    rng: SplitMix64,
    batch_words: Vec<Vec<u64>>,
    batch_want: Vec<Vec<u64>>,
    batch_mask: Vec<u64>,
    scratches: Vec<EvalScratch>,
    max_sweeps: usize,
    restarts: usize,
    restarts_used: usize,
    /// Oracle queries attempted before the search began (the sampling
    /// phase's count, or the caller-provided count for fixed responses).
    queries_attempted: usize,
}

impl HcSearch {
    /// Builds the search state exactly as the historical
    /// `attack_with_responses` body did (compile, position maps, 64-lane
    /// batch packing), or `None` when the circuit cannot be compiled.
    fn build(
        locked: &LockedCircuit,
        patterns: &[Vec<bool>],
        responses: &[Vec<bool>],
        config: &HillClimbConfig,
        queries_attempted: usize,
    ) -> Option<Self> {
        assert_eq!(patterns.len(), responses.len(), "pattern/response mismatch");
        let cc = CompiledCircuit::compile(&locked.circuit).ok()?;
        let inputs = cc.inputs().to_vec();
        let outputs = cc.outputs().to_vec();
        let key_pos: Vec<usize> = locked
            .key_inputs
            .iter()
            .map(|k| {
                inputs
                    .iter()
                    .position(|n| n == k)
                    .expect("key input present")
            })
            .collect();
        let data_pos: Vec<usize> = (0..inputs.len())
            .filter(|i| !key_pos.contains(i))
            .collect();
        let nk = key_pos.len();

        // Pack the sampled patterns 64 per batch: one scratch and one
        // input-word buffer per batch, the oracle responses as want-words,
        // and a lane mask for the ragged tail.
        let n_p = patterns.len();
        let n_batches = n_p.div_ceil(64);
        let mut batch_words: Vec<Vec<u64>> = vec![vec![0u64; inputs.len()]; n_batches];
        let mut batch_want: Vec<Vec<u64>> = vec![vec![0u64; outputs.len()]; n_batches];
        let mut batch_mask: Vec<u64> = vec![0u64; n_batches];
        for (pi, (x, y)) in patterns.iter().zip(responses).enumerate() {
            let (b, lane) = (pi / 64, pi % 64);
            batch_mask[b] |= 1u64 << lane;
            for (&p, &bit) in data_pos.iter().zip(x) {
                if bit {
                    batch_words[b][p] |= 1u64 << lane;
                }
            }
            for (w, &bit) in batch_want[b].iter_mut().zip(y) {
                if bit {
                    *w |= 1u64 << lane;
                }
            }
        }
        let scratches: Vec<EvalScratch> =
            (0..n_batches).map(|_| EvalScratch::new(&cc)).collect();
        Some(HcSearch {
            cc,
            inputs,
            outputs,
            key_pos,
            nk,
            rng: SplitMix64::new(config.seed ^ 0x5eed),
            batch_words,
            batch_want,
            batch_mask,
            scratches,
            max_sweeps: config.max_sweeps,
            restarts: config.restarts,
            restarts_used: 0,
            queries_attempted,
        })
    }

    /// Mismatching output bits of one batch against the oracle responses.
    fn mismatch(&self, b: usize) -> u64 {
        let s = &self.scratches[b];
        self.outputs
            .iter()
            .zip(&self.batch_want[b])
            .map(|(o, &want)| {
                ((s.value(o.index() as u32) ^ want) & self.batch_mask[b]).count_ones() as u64
            })
            .sum()
    }

    fn drain_counters(&self) -> EngineCounters {
        let mut total = EngineCounters::default();
        for s in &self.scratches {
            total.merge(s.counters());
        }
        total
    }

    /// Runs one random restart (full sweep plus greedy bit-flip sweeps).
    /// Returns the recovered key when the restart explains every response.
    ///
    /// The whole search is sequential over word batches, so the greedy
    /// trajectory (and every score) is bit-identical for any thread count —
    /// and identical whether the session was interrupted between restarts
    /// or not (the PRNG is only consumed here).
    fn run_restart(&mut self) -> Option<Vec<bool>> {
        self.restarts_used += 1;
        let mut key: Vec<bool> = (0..self.nk).map(|_| self.rng.bool()).collect();
        // Full sweep once per restart with the fresh key.
        let mut best = 0u64;
        for b in 0..self.scratches.len() {
            for (&p, &bit) in self.key_pos.iter().zip(&key) {
                self.batch_words[b][p] = if bit { !0u64 } else { 0 };
            }
            self.scratches[b].eval_full(&self.cc, &self.batch_words[b]);
            best += self.mismatch(b);
        }
        if best == 0 {
            return Some(key);
        }
        for _sweep in 0..self.max_sweeps {
            let mut improved = false;
            for (bit, kb) in key.iter_mut().enumerate() {
                // Tentatively flip: propagate only the key input's cone.
                let net = self.inputs[self.key_pos[bit]].index() as u32;
                let word = if *kb { 0u64 } else { !0u64 };
                let mut s_new = 0u64;
                for b in 0..self.scratches.len() {
                    self.scratches[b].propagate(&self.cc, net, word);
                    s_new += self.mismatch(b);
                }
                if s_new < best {
                    best = s_new;
                    improved = true;
                    *kb = !*kb;
                    self.scratches.iter_mut().for_each(EvalScratch::commit);
                } else {
                    self.scratches.iter_mut().for_each(EvalScratch::revert);
                }
            }
            if best == 0 {
                return Some(key);
            }
            if !improved {
                break;
            }
        }
        None
    }

    fn success_outcome(&self, key: Vec<bool>) -> AttackOutcome {
        AttackOutcome {
            key: Some(key),
            failure: None,
            iterations: self.restarts_used,
            oracle_queries: self.queries_attempted,
            telemetry: AttackTelemetry {
                engine: self.drain_counters(),
                ..AttackTelemetry::default()
            },
        }
    }

    fn failed_outcome(&self) -> AttackOutcome {
        let mut out = AttackOutcome::failed(
            FailureReason::Inconclusive,
            self.restarts_used,
            self.queries_attempted,
        );
        out.telemetry.engine = self.drain_counters();
        out
    }
}

/// A hill-climbing attack in progress: the first steps sample oracle
/// responses; each later step runs one random restart.
pub struct HillClimbSession<'a> {
    locked: &'a LockedCircuit,
    /// `None` for the fixed-responses shim, which never samples.
    oracle: Option<&'a mut dyn Oracle>,
    config: HillClimbConfig,
    phase: HcPhase,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl<'a> HillClimbSession<'a> {
    /// A session pre-loaded with fixed stimulus/response pairs (e.g.
    /// manufacturing-test data), skipping the sampling phase entirely.
    pub fn with_responses(
        locked: &'a LockedCircuit,
        patterns: &[Vec<bool>],
        responses: &[Vec<bool>],
        config: &HillClimbConfig,
        queries_attempted: usize,
    ) -> Self {
        let (phase, outcome) =
            match HcSearch::build(locked, patterns, responses, config, queries_attempted) {
                Some(search) => (HcPhase::Search(Box::new(search)), None),
                None => (
                    HcPhase::Sample {
                        rng: SplitMix64::new(config.seed),
                        patterns: Vec::new(),
                        responses: Vec::new(),
                        pending_x: None,
                    },
                    Some(AttackOutcome::failed(
                        FailureReason::Inconclusive,
                        0,
                        queries_attempted,
                    )),
                ),
            };
        HillClimbSession {
            locked,
            oracle: None,
            config: *config,
            phase,
            started: false,
            outcome,
        }
    }

    fn finish(&mut self, outcome: AttackOutcome) -> StepStatus {
        self.outcome = Some(outcome);
        StepStatus::Done
    }

    fn queries_attempted(&self) -> usize {
        match (&self.oracle, &self.phase) {
            (Some(oracle), _) => oracle.queries_attempted(),
            (None, HcPhase::Search(search)) => search.queries_attempted,
            (None, HcPhase::Sample { .. }) => 0,
        }
    }
}

impl AttackSession for HillClimbSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage(match self.phase {
                HcPhase::Sample { .. } => "sample",
                HcPhase::Search(_) => "search",
            });
        }
        match &mut self.phase {
            HcPhase::Sample {
                rng,
                patterns,
                responses,
                pending_x,
            } => {
                let oracle = self
                    .oracle
                    .as_deref_mut()
                    .expect("sampling phase requires a live oracle");
                let n_data = oracle.num_inputs();
                while patterns.len() < self.config.sample_patterns {
                    let x: Vec<bool> = match pending_x.take() {
                        Some(x) => x,
                        None => (0..n_data).map(|_| rng.bool()).collect(),
                    };
                    match ctl.query(oracle, &x) {
                        Err(why) => {
                            *pending_x = Some(x);
                            return StepStatus::Interrupted(why);
                        }
                        Ok(None) => {
                            let queries = oracle.queries_attempted();
                            return self.finish(AttackOutcome::failed(
                                FailureReason::OracleUnavailable,
                                0,
                                queries,
                            ));
                        }
                        Ok(Some(y)) => {
                            patterns.push(x);
                            responses.push(y);
                        }
                    }
                }
                let queries = oracle.queries_attempted();
                match HcSearch::build(self.locked, patterns, responses, &self.config, queries) {
                    Some(search) => {
                        self.phase = HcPhase::Search(Box::new(search));
                        ctl.emit_stage("search");
                        StepStatus::Running
                    }
                    None => self.finish(AttackOutcome::failed(
                        FailureReason::Inconclusive,
                        0,
                        queries,
                    )),
                }
            }
            HcPhase::Search(search) => {
                if search.restarts_used >= search.restarts {
                    let out = search.failed_outcome();
                    return self.finish(out);
                }
                let recovered = search.run_restart();
                ctl.emit(ProgressEvent::Milestone(Milestone {
                    stage: "search",
                    iterations: search.restarts_used,
                    dips_eliminated: 0,
                    clauses_learned: 0,
                    oracle_queries: ctl.queries(),
                }));
                match recovered {
                    Some(key) => {
                        let out = search.success_outcome(key);
                        self.finish(out)
                    }
                    None if search.restarts_used >= search.restarts => {
                        let out = search.failed_outcome();
                        self.finish(out)
                    }
                    None => StepStatus::Running,
                }
            }
        }
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        let (iterations, engine) = match &self.phase {
            HcPhase::Sample { .. } => (0, EngineCounters::default()),
            HcPhase::Search(search) => (search.restarts_used, search.drain_counters()),
        };
        let mut out = AttackOutcome::failed(why.into(), iterations, self.queries_attempted());
        out.telemetry.engine = engine;
        out
    }
}

/// Runs hill climbing against a live oracle: samples `sample_patterns`
/// responses, then searches the key space. (Thin wrapper over the engine
/// with an inert control block.)
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &HillClimbConfig,
) -> AttackOutcome {
    crate::engine::run(
        &HillClimbEngine { config: *config },
        locked,
        oracle,
        &mut AttackCtl::new(),
    )
}

/// Runs hill climbing against a fixed set of stimulus/response pairs (e.g.
/// manufacturing-test data). Returns the recovered key only if it explains
/// every response exactly. (Thin shim over the engine-backed search core.)
pub fn attack_with_responses(
    locked: &LockedCircuit,
    patterns: &[Vec<bool>],
    responses: &[Vec<bool>],
    config: &HillClimbConfig,
    queries_attempted: usize,
) -> AttackOutcome {
    let mut session =
        HillClimbSession::with_responses(locked, patterns, responses, config, queries_attempted);
    crate::engine::drive(&mut session, &mut AttackCtl::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use gatesim::CombSim;
    use netlist::samples;

    #[test]
    fn climbs_to_rll_key() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        let key = out.key.expect("hill climbing breaks small RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn engine_counters_reflect_incremental_scoring() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        let e = out.telemetry.engine;
        assert!(e.full_evals > 0, "each restart starts with a full sweep");
        assert!(
            e.incremental_props > e.full_evals,
            "bit flips must use the incremental kernel: {e:?}"
        );
    }

    #[test]
    fn dead_oracle_defeats_hill_climbing() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }

    #[test]
    fn locked_test_responses_mislead_the_attack() {
        // OraP's testing story: the chip is tested LOCKED (key register
        // cleared), so test responses reflect the all-zero key, not the
        // correct one. Hill climbing then converges to the all-zero key —
        // which does not unlock the chip.
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        // Build "test responses" from the locked circuit with key = 0.
        let sim = CombSim::new(&locked.circuit).unwrap();
        let key_pos: Vec<usize> = locked
            .key_inputs
            .iter()
            .map(|k| sim.inputs().iter().position(|n| n == k).unwrap())
            .collect();
        let data_pos: Vec<usize> = (0..sim.inputs().len())
            .filter(|i| !key_pos.contains(i))
            .collect();
        let mut rng = SplitMix64::new(3);
        let mut patterns = Vec::new();
        let mut responses = Vec::new();
        for _ in 0..64 {
            let x: Vec<bool> = (0..data_pos.len()).map(|_| rng.bool()).collect();
            let mut input = vec![false; sim.inputs().len()];
            for (&p, &b) in data_pos.iter().zip(&x) {
                input[p] = b;
            }
            // key positions stay false: the cleared key register.
            patterns.push(x);
            responses.push(sim.eval_bools(&input));
        }
        let out = attack_with_responses(
            &locked,
            &patterns,
            &responses,
            &HillClimbConfig::default(),
            0,
        );
        if let Some(key) = out.key {
            // The attack "succeeds" on the locked responses, but the key it
            // finds is the cleared register — functionally wrong.
            assert!(
                !key_is_functionally_correct(&locked, &key, 1024).unwrap(),
                "locked-response key must not unlock the chip"
            );
        }
    }
}
