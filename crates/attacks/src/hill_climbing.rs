//! The hill-climbing attack (Plaza & Markov, TCAD 2015).
//!
//! A model-free search: sample oracle responses on a pattern set, then
//! greedily flip key bits whenever a flip reduces the number of mismatching
//! output bits between the locked netlist (under the candidate key) and the
//! oracle responses. Random restarts escape local optima.
//!
//! The paper notes the attack can alternatively use designer-provided *test
//! responses* of the unlocked circuit; under OraP the chip is tested locked,
//! so those responses correspond to the locked circuit and the attack learns
//! nothing — [`attack_with_responses`] lets experiments demonstrate exactly
//! that.
//!
//! Scoring runs on the compiled engine's *incremental* kernel: the sampled
//! patterns are packed 64 per word batch and fully swept once per restart;
//! each candidate key-bit flip then re-evaluates only the downstream cone of
//! that key input ([`EvalScratch::propagate`]), committing on improvement
//! and reverting otherwise. Scores are exact mismatch counts, so the greedy
//! trajectory is identical to full re-simulation — just without re-running
//! the untouched logic.

use locking::LockedCircuit;
use netlist::rng::SplitMix64;
use netlist::{CompiledCircuit, EngineCounters, EvalScratch};

use crate::{AttackOutcome, AttackTelemetry, FailureReason, Oracle};

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbConfig {
    /// Oracle patterns sampled for the objective function.
    pub sample_patterns: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Maximum improving sweeps per restart.
    pub max_sweeps: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            sample_patterns: 64,
            restarts: 20,
            max_sweeps: 64,
            seed: 0xC11B,
        }
    }
}

/// Runs hill climbing against a live oracle: samples `sample_patterns`
/// responses, then searches the key space.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &HillClimbConfig,
) -> AttackOutcome {
    let mut rng = SplitMix64::new(config.seed);
    let n_data = oracle.num_inputs();
    let mut patterns = Vec::with_capacity(config.sample_patterns);
    let mut responses = Vec::with_capacity(config.sample_patterns);
    for _ in 0..config.sample_patterns {
        let x: Vec<bool> = (0..n_data).map(|_| rng.bool()).collect();
        match oracle.query(&x) {
            None => {
                return AttackOutcome::failed(
                    FailureReason::OracleUnavailable,
                    0,
                    oracle.queries_attempted(),
                );
            }
            Some(y) => {
                patterns.push(x);
                responses.push(y);
            }
        }
    }
    attack_with_responses(locked, &patterns, &responses, config, oracle.queries_attempted())
}

/// Runs hill climbing against a fixed set of stimulus/response pairs (e.g.
/// manufacturing-test data). Returns the recovered key only if it explains
/// every response exactly.
pub fn attack_with_responses(
    locked: &LockedCircuit,
    patterns: &[Vec<bool>],
    responses: &[Vec<bool>],
    config: &HillClimbConfig,
    queries_attempted: usize,
) -> AttackOutcome {
    assert_eq!(patterns.len(), responses.len(), "pattern/response mismatch");
    let Ok(cc) = CompiledCircuit::compile(&locked.circuit) else {
        return AttackOutcome::failed(FailureReason::Inconclusive, 0, queries_attempted);
    };
    let inputs = cc.inputs().to_vec();
    let outputs = cc.outputs().to_vec();
    let key_pos: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|k| {
            inputs
                .iter()
                .position(|n| n == k)
                .expect("key input present")
        })
        .collect();
    let data_pos: Vec<usize> = (0..inputs.len())
        .filter(|i| !key_pos.contains(i))
        .collect();
    let nk = key_pos.len();
    let mut rng = SplitMix64::new(config.seed ^ 0x5eed);

    // Pack the sampled patterns 64 per batch: one scratch and one
    // input-word buffer per batch, the oracle responses as want-words, and
    // a lane mask for the ragged tail.
    let n_p = patterns.len();
    let n_batches = n_p.div_ceil(64);
    let mut batch_words: Vec<Vec<u64>> = vec![vec![0u64; inputs.len()]; n_batches];
    let mut batch_want: Vec<Vec<u64>> = vec![vec![0u64; outputs.len()]; n_batches];
    let mut batch_mask: Vec<u64> = vec![0u64; n_batches];
    for (pi, (x, y)) in patterns.iter().zip(responses).enumerate() {
        let (b, lane) = (pi / 64, pi % 64);
        batch_mask[b] |= 1u64 << lane;
        for (&p, &bit) in data_pos.iter().zip(x) {
            if bit {
                batch_words[b][p] |= 1u64 << lane;
            }
        }
        for (w, &bit) in batch_want[b].iter_mut().zip(y) {
            if bit {
                *w |= 1u64 << lane;
            }
        }
    }
    let mut scratches: Vec<EvalScratch> = (0..n_batches).map(|_| EvalScratch::new(&cc)).collect();

    // Mismatching output bits of one batch against the oracle responses.
    let mismatch = |s: &EvalScratch, b: usize| -> u64 {
        outputs
            .iter()
            .zip(&batch_want[b])
            .map(|(o, &want)| ((s.value(o.index() as u32) ^ want) & batch_mask[b]).count_ones() as u64)
            .sum()
    };
    let drain_counters = |scratches: &[EvalScratch]| -> EngineCounters {
        let mut total = EngineCounters::default();
        for s in scratches {
            total.merge(s.counters());
        }
        total
    };
    let done = |key: Vec<bool>, iters: usize, engine: EngineCounters| AttackOutcome {
        key: Some(key),
        failure: None,
        iterations: iters,
        oracle_queries: queries_attempted,
        telemetry: AttackTelemetry {
            engine,
            ..AttackTelemetry::default()
        },
    };

    // The whole search is sequential over word batches, so the greedy
    // trajectory (and every score) is bit-identical for any thread count.
    let mut restarts_used = 0usize;
    for restart in 0..config.restarts {
        restarts_used = restart + 1;
        let key: Vec<bool> = (0..nk).map(|_| rng.bool()).collect();
        // Full sweep once per restart with the fresh key.
        let mut best = 0u64;
        for (b, s) in scratches.iter_mut().enumerate() {
            for (&p, &bit) in key_pos.iter().zip(&key) {
                batch_words[b][p] = if bit { !0u64 } else { 0 };
            }
            s.eval_full(&cc, &batch_words[b]);
            best += mismatch(s, b);
        }
        let mut key = key;
        if best == 0 {
            return done(key, restarts_used, drain_counters(&scratches));
        }
        for _sweep in 0..config.max_sweeps {
            let mut improved = false;
            for bit in 0..nk {
                // Tentatively flip: propagate only the key input's cone.
                let net = inputs[key_pos[bit]].index() as u32;
                let word = if key[bit] { 0u64 } else { !0u64 };
                let mut s_new = 0u64;
                for (b, s) in scratches.iter_mut().enumerate() {
                    s.propagate(&cc, net, word);
                    s_new += mismatch(s, b);
                }
                if s_new < best {
                    best = s_new;
                    improved = true;
                    key[bit] = !key[bit];
                    scratches.iter_mut().for_each(EvalScratch::commit);
                } else {
                    scratches.iter_mut().for_each(EvalScratch::revert);
                }
            }
            if best == 0 {
                return done(key, restarts_used, drain_counters(&scratches));
            }
            if !improved {
                break;
            }
        }
    }
    let mut out = AttackOutcome::failed(
        FailureReason::Inconclusive,
        restarts_used,
        queries_attempted,
    );
    out.telemetry.engine = drain_counters(&scratches);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use gatesim::CombSim;
    use netlist::samples;

    #[test]
    fn climbs_to_rll_key() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        let key = out.key.expect("hill climbing breaks small RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn engine_counters_reflect_incremental_scoring() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        let e = out.telemetry.engine;
        assert!(e.full_evals > 0, "each restart starts with a full sweep");
        assert!(
            e.incremental_props > e.full_evals,
            "bit flips must use the incremental kernel: {e:?}"
        );
    }

    #[test]
    fn dead_oracle_defeats_hill_climbing() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &HillClimbConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }

    #[test]
    fn locked_test_responses_mislead_the_attack() {
        // OraP's testing story: the chip is tested LOCKED (key register
        // cleared), so test responses reflect the all-zero key, not the
        // correct one. Hill climbing then converges to the all-zero key —
        // which does not unlock the chip.
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 6 },
        )
        .unwrap();
        // Build "test responses" from the locked circuit with key = 0.
        let sim = CombSim::new(&locked.circuit).unwrap();
        let key_pos: Vec<usize> = locked
            .key_inputs
            .iter()
            .map(|k| sim.inputs().iter().position(|n| n == k).unwrap())
            .collect();
        let data_pos: Vec<usize> = (0..sim.inputs().len())
            .filter(|i| !key_pos.contains(i))
            .collect();
        let mut rng = SplitMix64::new(3);
        let mut patterns = Vec::new();
        let mut responses = Vec::new();
        for _ in 0..64 {
            let x: Vec<bool> = (0..data_pos.len()).map(|_| rng.bool()).collect();
            let mut input = vec![false; sim.inputs().len()];
            for (&p, &b) in data_pos.iter().zip(&x) {
                input[p] = b;
            }
            // key positions stay false: the cleared key register.
            patterns.push(x);
            responses.push(sim.eval_bools(&input));
        }
        let out = attack_with_responses(
            &locked,
            &patterns,
            &responses,
            &HillClimbConfig::default(),
            0,
        );
        if let Some(key) = out.key {
            // The attack "succeeds" on the locked responses, but the key it
            // finds is the cleared register — functionally wrong.
            assert!(
                !key_is_functionally_correct(&locked, &key, 1024).unwrap(),
                "locked-response key must not unlock the chip"
            );
        }
    }
}
