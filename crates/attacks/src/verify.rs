//! Exact key-equivalence verification via a SAT miter.
//!
//! Sampled verification ([`crate::key_is_functionally_correct`]) can miss a
//! key that corrupts outputs only on a vanishing fraction of the input
//! space — exactly the regime point-function schemes (SARLock/Anti-SAT,
//! SFLL) engineer. These helpers settle equivalence *exactly*: a two-copy
//! miter over the key-dependent outputs (built with the same
//! [`ReducedEncoder`] pipeline the attacks
//! use) with both key vectors fixed as unit clauses. `Unsat` means no input
//! distinguishes the two keys; `Sat` yields a concrete distinguishing
//! input as the counterexample.
//!
//! The intended test idiom keeps the sampled check as a fast pre-filter:
//!
//! ```
//! use attacks::{key_is_functionally_correct, verify};
//! use locking::random::{self, RllConfig};
//!
//! let original = netlist::samples::ripple_adder(3);
//! let locked = random::lock(&original, &RllConfig { key_bits: 4, seed: 1 }).unwrap();
//! let key = locked.correct_key.clone();
//! // Fast sampled pre-filter, then the exact verdict.
//! assert!(key_is_functionally_correct(&locked, &key, 256).unwrap());
//! assert!(verify::key_is_exactly_correct(&locked, &key));
//! ```

use cdcl::{SolveResult, Solver};
use locking::LockedCircuit;

use crate::aigcnf::ReducedEncoder;

/// Searches for an input on which `key_a` and `key_b` unlock `locked` to
/// different output values. Returns `None` when the two keys are *exactly*
/// functionally equivalent, otherwise a distinguishing data-input
/// assignment in [`ReducedEncoder::data_inputs`] order.
///
/// # Panics
///
/// Panics if either key's width differs from the locked circuit's key
/// width, or if the locked circuit is cyclic.
pub fn keys_exact_counterexample(
    locked: &LockedCircuit,
    key_a: &[bool],
    key_b: &[bool],
) -> Option<Vec<bool>> {
    assert_eq!(key_a.len(), locked.key_bits(), "key_a width mismatch");
    assert_eq!(key_b.len(), locked.key_bits(), "key_b width mismatch");
    let mut solver = Solver::new();
    let mut enc = ReducedEncoder::new(locked, &mut solver, 2);
    enc.assert_miter(&mut solver, 0, 1, None);
    for (i, (&a, &b)) in key_a.iter().zip(key_b).enumerate() {
        solver.add_clause(&[enc.key_vars(0)[i].lit(a)]);
        solver.add_clause(&[enc.key_vars(1)[i].lit(b)]);
    }
    match solver.solve() {
        SolveResult::Unsat => None,
        SolveResult::Sat => Some(
            enc.data_vars()
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect(),
        ),
        SolveResult::Unknown => unreachable!("no conflict budget was set"),
    }
}

/// Like [`keys_exact_counterexample`] with `key_b` fixed to the correct
/// key: returns a distinguishing input proving `candidate` is wrong, or
/// `None` when `candidate` unlocks the exact original function.
pub fn key_exact_counterexample(locked: &LockedCircuit, candidate: &[bool]) -> Option<Vec<bool>> {
    keys_exact_counterexample(locked, candidate, &locked.correct_key)
}

/// Exact-equivalence verdict: `true` iff `candidate` unlocks `locked` to
/// the same function as the correct key on *every* input.
pub fn key_is_exactly_correct(locked: &LockedCircuit, candidate: &[bool]) -> bool {
    key_exact_counterexample(locked, candidate).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::point_function;

    /// A one-bit-flipped key on a SARLock-style point function corrupts a
    /// single input pattern; sampling misses it, the miter does not.
    #[test]
    fn exact_check_catches_point_function_keys() {
        let original = netlist::samples::ripple_adder(2);
        let locked = point_function::sarlock(
            &original,
            &point_function::SarLockConfig { key_bits: 4, seed: 3 },
        )
        .unwrap();
        assert!(key_is_exactly_correct(&locked, &locked.correct_key));
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        let cex = key_exact_counterexample(&locked, &wrong);
        if let Some(x) = &cex {
            assert_eq!(x.len(), locked.circuit.comb_inputs().len() - locked.key_bits());
        }
        assert!(
            cex.is_some(),
            "a flipped SARLock key differs on exactly one pattern; the miter must find it"
        );
    }
}
