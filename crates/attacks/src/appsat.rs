//! AppSAT-style approximate deobfuscation (Shamsi et al., HOST 2017).
//!
//! Against compound schemes (point-function + traditional locking), the
//! exact SAT attack stalls on the exponential point-function tail. AppSAT
//! interleaves the DIP loop with *settlement checks*: every few iterations
//! it extracts a candidate key and estimates its error rate on random oracle
//! queries; once the error is below a threshold it returns the candidate as
//! an approximate key (which for compound schemes recovers the traditional
//! part of the key).

use cdcl::SolveResult;
use locking::LockedCircuit;
use netlist::rng::SplitMix64;

use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// AppSAT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSatConfig {
    /// Maximum DIP iterations.
    pub max_iterations: usize,
    /// Run a settlement check every this many DIPs.
    pub settle_every: usize,
    /// Random queries per settlement check.
    pub settle_samples: usize,
    /// Accept the candidate when the mismatching-query fraction is at most
    /// this (0.0 = exact on the sample).
    pub error_threshold: f64,
    /// PRNG seed for settlement sampling.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            max_iterations: 2048,
            settle_every: 8,
            settle_samples: 64,
            error_threshold: 0.01,
            seed: 0xA995A7,
        }
    }
}

/// AppSAT as an [`AttackEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AppSatEngine {
    /// Attack parameters.
    pub config: AppSatConfig,
}

impl AttackEngine for AppSatEngine {
    fn name(&self) -> &'static str {
        "appsat"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        let ctx = AttackContext::new(locked);
        let config = self.config;
        let (sim, outcome) = match gatesim::CombSim::new(&locked.circuit) {
            Ok(s) => (Some(s), None),
            Err(_) => (
                None,
                Some(
                    AttackOutcome::failed(FailureReason::Inconclusive, 0, 0)
                        .with_telemetry(ctx.telemetry()),
                ),
            ),
        };
        let (key_pos, data_pos) = match &sim {
            Some(sim) => {
                let key_pos: Vec<usize> = locked
                    .key_inputs
                    .iter()
                    .map(|k| {
                        sim.inputs()
                            .iter()
                            .position(|n| n == k)
                            .expect("key input present")
                    })
                    .collect();
                let data_pos: Vec<usize> = (0..sim.inputs().len())
                    .filter(|i| !key_pos.contains(i))
                    .collect();
                (key_pos, data_pos)
            }
            None => (Vec::new(), Vec::new()),
        };
        Box::new(AppSatSession {
            ctx,
            oracle,
            config,
            rng: SplitMix64::new(config.seed),
            sim,
            key_pos,
            data_pos,
            iterations: 0,
            pending_dip: None,
            settle: None,
            started: false,
            outcome,
        })
    }
}

/// In-flight settlement check state, kept across interrupted steps so a
/// resumed session replays the exact settlement the uninterrupted run would
/// have performed.
struct SettleState {
    candidate: Vec<bool>,
    mismatches: usize,
    answered: usize,
    sampled: usize,
    /// A drawn-but-unqueried sample stashed by an interrupt.
    pending_x: Option<Vec<bool>>,
}

/// An AppSAT attack in progress: one step learns one DIP; when a settlement
/// check falls due it runs inside the same step (interrupting mid-settlement
/// stashes the settlement state for exact resumption).
pub struct AppSatSession<'a> {
    ctx: AttackContext,
    oracle: &'a mut dyn Oracle,
    config: AppSatConfig,
    rng: SplitMix64,
    sim: Option<gatesim::CombSim>,
    key_pos: Vec<usize>,
    data_pos: Vec<usize>,
    iterations: usize,
    pending_dip: Option<Vec<bool>>,
    settle: Option<SettleState>,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl AppSatSession<'_> {
    fn finish(&mut self, outcome: AttackOutcome) -> StepStatus {
        self.outcome = Some(outcome);
        StepStatus::Done
    }

    fn finish_failed(&mut self, reason: FailureReason) -> StepStatus {
        let out = AttackOutcome::failed(
            reason,
            self.iterations,
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry());
        self.finish(out)
    }

    fn finish_success(&mut self, key: Vec<bool>) -> StepStatus {
        let out = AttackOutcome {
            key: Some(key),
            failure: None,
            iterations: self.iterations,
            oracle_queries: self.oracle.queries_attempted(),
            telemetry: self.ctx.telemetry(),
        };
        self.finish(out)
    }

    /// Runs (or resumes) the settlement check in `self.settle`.
    fn run_settlement(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        let mut st = self.settle.take().expect("settlement state present");
        let sim = self.sim.as_ref().expect("settlement implies a simulator");
        while st.sampled < self.config.settle_samples {
            let x: Vec<bool> = match st.pending_x.take() {
                Some(x) => x,
                None => (0..self.data_pos.len()).map(|_| self.rng.bool()).collect(),
            };
            match ctl.query(self.oracle, &x) {
                Err(why) => {
                    st.pending_x = Some(x);
                    self.settle = Some(st);
                    return StepStatus::Interrupted(why);
                }
                Ok(None) => return self.finish_failed(FailureReason::OracleUnavailable),
                Ok(Some(y)) => {
                    st.sampled += 1;
                    st.answered += 1;
                    // Simulate the locked circuit under the candidate key.
                    let mut input = vec![false; sim.inputs().len()];
                    for (&p, &b) in self.data_pos.iter().zip(&x) {
                        input[p] = b;
                    }
                    for (&p, &b) in self.key_pos.iter().zip(&st.candidate) {
                        input[p] = b;
                    }
                    let got = sim.eval_bools(&input);
                    if got != y {
                        st.mismatches += 1;
                        // Feed the failing sample back as a constraint (the
                        // AppSAT refinement step).
                        self.ctx.learn(&x, &y);
                    }
                }
            }
        }
        let err = st.mismatches as f64 / st.answered.max(1) as f64;
        if err <= self.config.error_threshold {
            self.finish_success(st.candidate)
        } else {
            StepStatus::Running
        }
    }
}

impl AttackSession for AppSatSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage("dip-search");
        }
        ctl.arm_solver(&mut self.ctx.solver);
        if self.settle.is_some() {
            return self.run_settlement(ctl);
        }
        let x = match self.pending_dip.take() {
            Some(x) => x,
            None => {
                if self.iterations >= self.config.max_iterations {
                    return self.finish_failed(FailureReason::IterationLimit);
                }
                match self.ctx.solve_miter() {
                    SolveResult::Unknown => {
                        return match ctl.solver_interrupt(&self.ctx.solver) {
                            Some(why) => StepStatus::Interrupted(why),
                            None => self.finish_failed(FailureReason::SolverBudget),
                        };
                    }
                    SolveResult::Unsat => {
                        ctl.emit_stage("extract");
                        let key = self.ctx.extract_key();
                        return match key {
                            Some(key) => self.finish_success(key),
                            None => self.finish_failed(FailureReason::Inconclusive),
                        };
                    }
                    SolveResult::Sat => self.ctx.model_dip(),
                }
            }
        };
        match ctl.query(self.oracle, &x) {
            Err(why) => {
                self.pending_dip = Some(x);
                return StepStatus::Interrupted(why);
            }
            Ok(None) => {
                self.iterations += 1;
                return self.finish_failed(FailureReason::OracleUnavailable);
            }
            Ok(Some(y)) => {
                self.iterations += 1;
                self.ctx.learn(&x, &y);
                ctl.emit(ProgressEvent::Milestone(Milestone {
                    stage: "dip-search",
                    iterations: self.iterations,
                    dips_eliminated: self.ctx.dips.len(),
                    clauses_learned: self.ctx.solver.stats().learned_clauses,
                    oracle_queries: ctl.queries(),
                }));
            }
        }
        if self.iterations.is_multiple_of(self.config.settle_every) {
            if let Some(candidate) = self.ctx.extract_key() {
                ctl.emit_stage("settle");
                self.settle = Some(SettleState {
                    candidate,
                    mismatches: 0,
                    answered: 0,
                    sampled: 0,
                    pending_x: None,
                });
                return self.run_settlement(ctl);
            }
        }
        StepStatus::Running
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        AttackOutcome::failed(
            why.into(),
            self.iterations,
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry())
    }
}

/// Runs the approximate attack to completion. A returned key is
/// *approximate*: it agreed with the oracle on the settlement sample, not
/// necessarily everywhere. (Thin wrapper over the engine with an inert
/// control block.)
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> AttackOutcome {
    crate::engine::run(
        &AppSatEngine { config: *config },
        locked,
        oracle,
        &mut AttackCtl::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn recovers_rll_key_exactly_or_approximately() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 9 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &AppSatConfig::default());
        let key = out.key.expect("AppSAT recovers simple locks");
        // Approximate key must be at least 99% accurate on random patterns.
        let rep = gatesim::hd::hamming_between_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            &key,
            4096,
            1,
        )
        .unwrap();
        assert!(
            rep.percent() < 1.0,
            "approximate key error {:.3}%",
            rep.percent()
        );
    }

    #[test]
    fn approximates_compound_sarlock_quickly() {
        // SARLock on top of RLL: exact SAT needs ~2^k DIPs, AppSAT settles
        // early with a key whose residual error is the point function only.
        let original = samples::ripple_adder(4);
        let rll = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 4 },
        )
        .unwrap();
        let compound = locking::point_function::sarlock(
            &rll.circuit,
            &locking::point_function::SarLockConfig { key_bits: 8, seed: 5 },
        )
        .unwrap();
        // Merge key metadata: the compound lock's key = RLL key ++ SARLock key.
        let mut key_inputs = rll.key_inputs.clone();
        key_inputs.extend(compound.key_inputs.iter().copied());
        let mut correct_key = rll.correct_key.clone();
        correct_key.extend(compound.correct_key.iter().copied());
        let locked = locking::LockedCircuit {
            circuit: compound.circuit.clone(),
            key_inputs,
            correct_key,
            scheme: "rll+sarlock",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let cfg = AppSatConfig {
            max_iterations: 512,
            error_threshold: 0.05,
            ..AppSatConfig::default()
        };
        let out = attack(&locked, &mut oracle, &cfg);
        let key = out.key.expect("AppSAT settles on compound locking");
        let rep = gatesim::hd::hamming_between_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            &key,
            8192,
            2,
        )
        .unwrap();
        // Residual error should be point-function-sized (tiny), far from the
        // RLL corruption a wrong traditional key would cause.
        assert!(
            rep.percent() < 5.0,
            "residual corruption {:.2}%",
            rep.percent()
        );
    }

    #[test]
    fn dead_oracle_defeats_appsat() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 9 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &AppSatConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
