//! AppSAT-style approximate deobfuscation (Shamsi et al., HOST 2017).
//!
//! Against compound schemes (point-function + traditional locking), the
//! exact SAT attack stalls on the exponential point-function tail. AppSAT
//! interleaves the DIP loop with *settlement checks*: every few iterations
//! it extracts a candidate key and estimates its error rate on random oracle
//! queries; once the error is below a threshold it returns the candidate as
//! an approximate key (which for compound schemes recovers the traditional
//! part of the key).

use cdcl::SolveResult;
use locking::LockedCircuit;
use netlist::rng::SplitMix64;

use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// AppSAT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSatConfig {
    /// Maximum DIP iterations.
    pub max_iterations: usize,
    /// Run a settlement check every this many DIPs.
    pub settle_every: usize,
    /// Random queries per settlement check.
    pub settle_samples: usize,
    /// Accept the candidate when the mismatching-query fraction is at most
    /// this (0.0 = exact on the sample).
    pub error_threshold: f64,
    /// PRNG seed for settlement sampling.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            max_iterations: 2048,
            settle_every: 8,
            settle_samples: 64,
            error_threshold: 0.01,
            seed: 0xA995A7,
        }
    }
}

/// Runs the approximate attack. A returned key is *approximate*: it agreed
/// with the oracle on the settlement sample, not necessarily everywhere.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> AttackOutcome {
    let mut ctx = AttackContext::new(locked);
    let mut rng = SplitMix64::new(config.seed);
    let sim = match gatesim::CombSim::new(&locked.circuit) {
        Ok(s) => s,
        Err(_) => {
            return AttackOutcome::failed(FailureReason::Inconclusive, 0, 0)
                .with_telemetry(ctx.telemetry());
        }
    };
    let key_pos: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|k| {
            sim.inputs()
                .iter()
                .position(|n| n == k)
                .expect("key input present")
        })
        .collect();
    let data_pos: Vec<usize> = (0..sim.inputs().len())
        .filter(|i| !key_pos.contains(i))
        .collect();

    let mut iterations = 0usize;
    loop {
        if iterations >= config.max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            )
            .with_telemetry(ctx.telemetry());
        }
        match ctx.solve_miter() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                )
                .with_telemetry(ctx.telemetry());
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x = ctx.model_dip();
                let Some(y) = oracle.query(&x) else {
                    return AttackOutcome::failed(
                        FailureReason::OracleUnavailable,
                        iterations,
                        oracle.queries_attempted(),
                    )
                    .with_telemetry(ctx.telemetry());
                };
                ctx.learn(&x, &y);
            }
        }
        if iterations.is_multiple_of(config.settle_every) {
            if let Some(candidate) = ctx.extract_key() {
                let mut mismatches = 0usize;
                let mut answered = 0usize;
                for _ in 0..config.settle_samples {
                    let x: Vec<bool> = (0..data_pos.len()).map(|_| rng.bool()).collect();
                    let Some(y) = oracle.query(&x) else {
                        return AttackOutcome::failed(
                            FailureReason::OracleUnavailable,
                            iterations,
                            oracle.queries_attempted(),
                        )
                        .with_telemetry(ctx.telemetry());
                    };
                    answered += 1;
                    // Simulate the locked circuit under the candidate key.
                    let mut input = vec![false; sim.inputs().len()];
                    for (&p, &b) in data_pos.iter().zip(&x) {
                        input[p] = b;
                    }
                    for (&p, &b) in key_pos.iter().zip(&candidate) {
                        input[p] = b;
                    }
                    let got = sim.eval_bools(&input);
                    if got != y {
                        mismatches += 1;
                        // Feed the failing sample back as a constraint (the
                        // AppSAT refinement step).
                        ctx.learn(&x, &y);
                    }
                }
                let err = mismatches as f64 / answered.max(1) as f64;
                if err <= config.error_threshold {
                    return AttackOutcome {
                        key: Some(candidate),
                        failure: None,
                        iterations,
                        oracle_queries: oracle.queries_attempted(),
                        telemetry: ctx.telemetry(),
                    };
                }
            }
        }
    }
    let key = ctx.extract_key();
    let telemetry = ctx.telemetry();
    match key {
        Some(key) => AttackOutcome {
            key: Some(key),
            failure: None,
            iterations,
            oracle_queries: oracle.queries_attempted(),
            telemetry,
        },
        None => AttackOutcome::failed(
            FailureReason::Inconclusive,
            iterations,
            oracle.queries_attempted(),
        )
        .with_telemetry(telemetry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CombOracle, DeadOracle};
    use netlist::samples;

    #[test]
    fn recovers_rll_key_exactly_or_approximately() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 9 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &AppSatConfig::default());
        let key = out.key.expect("AppSAT recovers simple locks");
        // Approximate key must be at least 99% accurate on random patterns.
        let rep = gatesim::hd::hamming_between_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            &key,
            4096,
            1,
        )
        .unwrap();
        assert!(
            rep.percent() < 1.0,
            "approximate key error {:.3}%",
            rep.percent()
        );
    }

    #[test]
    fn approximates_compound_sarlock_quickly() {
        // SARLock on top of RLL: exact SAT needs ~2^k DIPs, AppSAT settles
        // early with a key whose residual error is the point function only.
        let original = samples::ripple_adder(4);
        let rll = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 6, seed: 4 },
        )
        .unwrap();
        let compound = locking::point_function::sarlock(
            &rll.circuit,
            &locking::point_function::SarLockConfig { key_bits: 8, seed: 5 },
        )
        .unwrap();
        // Merge key metadata: the compound lock's key = RLL key ++ SARLock key.
        let mut key_inputs = rll.key_inputs.clone();
        key_inputs.extend(compound.key_inputs.iter().copied());
        let mut correct_key = rll.correct_key.clone();
        correct_key.extend(compound.correct_key.iter().copied());
        let locked = locking::LockedCircuit {
            circuit: compound.circuit.clone(),
            key_inputs,
            correct_key,
            scheme: "rll+sarlock",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let cfg = AppSatConfig {
            max_iterations: 512,
            error_threshold: 0.05,
            ..AppSatConfig::default()
        };
        let out = attack(&locked, &mut oracle, &cfg);
        let key = out.key.expect("AppSAT settles on compound locking");
        let rep = gatesim::hd::hamming_between_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            &key,
            8192,
            2,
        )
        .unwrap();
        // Residual error should be point-function-sized (tiny), far from the
        // RLL corruption a wrong traditional key would cause.
        assert!(
            rep.percent() < 5.0,
            "residual corruption {:.2}%",
            rep.percent()
        );
    }

    #[test]
    fn dead_oracle_defeats_appsat() {
        let original = samples::ripple_adder(4);
        let locked = locking::random::lock(
            &original,
            &locking::random::RllConfig { key_bits: 8, seed: 9 },
        )
        .unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &AppSatConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
