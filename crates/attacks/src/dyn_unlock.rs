//! DynUnlock: SAT-based unlocking of dynamically keyed scan obfuscation
//! (after arXiv:2001.06724).
//!
//! Dynamic scan obfuscation (`locking::scan_obfuscation`) keeps the secret
//! out of the combinational netlist entirely: an LFSR seeded from the key
//! re-scrambles the scan chains every shift cycle. DynUnlock's observation
//! is that a *bounded tester session* — L load shifts, one capture, L
//! unload shifts — is still a pure combinational function of (seed,
//! scanned-in bits, primary inputs), because the LFSR schedule is linear
//! and known. Unrolling that session
//! ([`ScanObfLocked::unroll`](locking::scan_obfuscation::ScanObfLocked::unroll))
//! yields a locked circuit whose key inputs are the seed, and the standard
//! oracle-guided SAT loop applies unchanged: the miter proposes a session
//! stimulus two seed candidates answer differently, the real chip runs the
//! session, and the response eliminates wrong seeds.
//!
//! The engine reuses the whole [`crate::sat`] substrate — AIG-reduced
//! cofactored constraints, one solver carrying the activation-gated miter,
//! lex-ordered key copies — and the whole [`crate::engine`] session
//! surface: resumable `step`, oracle ledger/budget, conflict-granularity
//! interrupts, typed progress milestones. Its stage names are
//! `"session-search"`/`"extract"` so progress streams distinguish session
//! unrolling from plain DIP search.

use cdcl::SolveResult;
use locking::scan_obfuscation::{ObfScanSim, ScanObfLocked, UnrolledSession};
use locking::LockedCircuit;

use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::sat::AttackContext;
use crate::{AttackOutcome, FailureReason, Oracle};

/// Test-only mutation hook for the conformance kill matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynUnlockSabotage {
    /// Learn each oracle session with its first shift frame dropped from
    /// the response stream — every later frame lands one frame early in
    /// the CNF constraint, the classic off-by-one-frame unroll bug. The
    /// misaligned constraints rule out the true seed, so the attack either
    /// stalls or extracts a seed the real chip refutes.
    DropUnrollFrame,
}

/// DynUnlock configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynUnlockConfig {
    /// Maximum distinguishing sessions before giving up.
    pub max_iterations: usize,
    /// Optional conflict budget per solver call.
    pub conflict_budget: Option<u64>,
    /// Observed bits per shift frame of the unrolled session (one per scan
    /// chain); only used by the dropped-frame sabotage to know the frame
    /// width. `0` is fine when no sabotage is planted.
    pub frame_bits: usize,
    /// Optional planted fault (kill-matrix only).
    pub sabotage: Option<DynUnlockSabotage>,
}

impl Default for DynUnlockConfig {
    fn default() -> Self {
        DynUnlockConfig {
            max_iterations: 4096,
            conflict_budget: None,
            frame_bits: 0,
            sabotage: None,
        }
    }
}

impl DynUnlockConfig {
    /// A config matching an unrolled session's frame layout.
    pub fn for_session(session: &UnrolledSession) -> Self {
        DynUnlockConfig {
            frame_bits: session.frame_bits(),
            ..DynUnlockConfig::default()
        }
    }
}

/// DynUnlock as an [`AttackEngine`]. The `locked` circuit passed to
/// [`start`](AttackEngine::start) must be an unrolled scan session (any
/// [`LockedCircuit`] works mechanically; the unrolling is what makes the
/// key the scan seed).
#[derive(Debug, Clone, Copy, Default)]
pub struct DynUnlockEngine {
    /// Attack parameters.
    pub config: DynUnlockConfig,
}

impl AttackEngine for DynUnlockEngine {
    fn name(&self) -> &'static str {
        "dyn_unlock"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        let mut ctx = AttackContext::new(locked);
        ctx.solver.set_conflict_budget(self.config.conflict_budget);
        Box::new(DynUnlockSession {
            ctx,
            oracle,
            max_iterations: self.config.max_iterations,
            frame_bits: self.config.frame_bits,
            sabotage: self.config.sabotage,
            iterations: 0,
            pending_stimulus: None,
            started: false,
            outcome: None,
        })
    }
}

/// A DynUnlock attack in progress: one [`step`](AttackSession::step) learns
/// one distinguishing scan session (or finishes via extraction when the
/// miter is UNSAT).
pub struct DynUnlockSession<'a> {
    ctx: AttackContext,
    oracle: &'a mut dyn Oracle,
    max_iterations: usize,
    /// Observed bits per shift frame (sabotage bookkeeping).
    frame_bits: usize,
    sabotage: Option<DynUnlockSabotage>,
    iterations: usize,
    /// A session stimulus whose oracle query was interrupted; replayed
    /// before any new miter solve so resumption is bit-identical.
    pending_stimulus: Option<Vec<bool>>,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl DynUnlockSession<'_> {
    fn finish(&mut self, outcome: AttackOutcome) -> StepStatus {
        self.outcome = Some(outcome);
        StepStatus::Done
    }

    fn finish_failed(&mut self, reason: FailureReason) -> StepStatus {
        let out = AttackOutcome::failed(reason, self.iterations, self.oracle.queries_attempted())
            .with_telemetry(self.ctx.telemetry());
        self.finish(out)
    }

    fn extract_and_finish(&mut self) -> StepStatus {
        let key = self.ctx.extract_key();
        let telemetry = self.ctx.telemetry();
        match key {
            Some(key) => self.finish(AttackOutcome {
                key: Some(key),
                failure: None,
                iterations: self.iterations,
                oracle_queries: self.oracle.queries_attempted(),
                telemetry,
            }),
            None => self.finish_failed(FailureReason::Inconclusive),
        }
    }
}

impl AttackSession for DynUnlockSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage("session-search");
        }
        ctl.arm_solver(&mut self.ctx.solver);
        let x = match self.pending_stimulus.take() {
            Some(x) => x,
            None => {
                if self.iterations >= self.max_iterations {
                    return self.finish_failed(FailureReason::IterationLimit);
                }
                match self.ctx.solve_miter() {
                    SolveResult::Unknown => {
                        return match ctl.solver_interrupt(&self.ctx.solver) {
                            Some(why) => StepStatus::Interrupted(why),
                            None => self.finish_failed(FailureReason::SolverBudget),
                        };
                    }
                    SolveResult::Unsat => {
                        ctl.emit_stage("extract");
                        return self.extract_and_finish();
                    }
                    SolveResult::Sat => self.ctx.model_dip(),
                }
            }
        };
        match ctl.query(self.oracle, &x) {
            Err(why) => {
                self.pending_stimulus = Some(x);
                StepStatus::Interrupted(why)
            }
            Ok(None) => {
                self.iterations += 1;
                self.finish_failed(FailureReason::OracleUnavailable)
            }
            Ok(Some(y)) => {
                self.iterations += 1;
                match self.sabotage {
                    Some(DynUnlockSabotage::DropUnrollFrame) => {
                        // The stream loses its first frame: later frames
                        // shift up, the tail stays unasserted.
                        let fb = self.frame_bits.max(1).min(y.len());
                        let mut shifted = y[fb..].to_vec();
                        shifted.resize(y.len(), false);
                        self.ctx.learn_prefix(&x, &shifted, y.len() - fb);
                    }
                    None => self.ctx.learn(&x, &y),
                }
                ctl.emit(ProgressEvent::Milestone(Milestone {
                    stage: "session-search",
                    iterations: self.iterations,
                    dips_eliminated: self.ctx.dips.len(),
                    clauses_learned: self.ctx.solver.stats().learned_clauses,
                    oracle_queries: ctl.queries(),
                }));
                StepStatus::Running
            }
        }
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        AttackOutcome::failed(why.into(), self.iterations, self.oracle.queries_attempted())
            .with_telemetry(self.ctx.telemetry())
    }
}

/// The real obfuscated chip as a session oracle: each query runs one full
/// load→capture→unload tester session on [`ObfScanSim`] under the secret
/// seed. Input layout matches the unrolled circuit's data inputs
/// (load-phase scan-in bits cycle-major, then primary inputs); the response
/// is everything the tester observes.
pub struct ScanSessionOracle {
    chip: ObfScanSim,
    load_cycles: usize,
    unload_cycles: usize,
    num_chains: usize,
    num_pis: usize,
    num_outputs: usize,
    queries: usize,
}

impl ScanSessionOracle {
    /// Builds the chip oracle matching an unrolled session's bounds.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit is cyclic.
    pub fn new(
        locked: &ScanObfLocked,
        session: &UnrolledSession,
    ) -> Result<Self, netlist::Error> {
        let chip = ObfScanSim::new(locked, &locked.correct_key)?;
        Ok(ScanSessionOracle {
            chip,
            load_cycles: session.load_cycles,
            unload_cycles: session.unload_cycles,
            num_chains: session.num_chains,
            num_pis: locked.circuit.primary_inputs().len(),
            num_outputs: session.locked.circuit.primary_outputs().len(),
            queries: 0,
        })
    }
}

impl Oracle for ScanSessionOracle {
    fn num_inputs(&self) -> usize {
        self.load_cycles * self.num_chains + self.num_pis
    }

    fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(input.len(), self.num_inputs(), "input width mismatch");
        self.queries += 1;
        let split = self.load_cycles * self.num_chains;
        Some(self.chip.session(
            self.load_cycles,
            self.unload_cycles,
            &input[..split],
            &input[split..],
        ))
    }

    fn queries_attempted(&self) -> usize {
        self.queries
    }
}

/// Runs DynUnlock to completion with an inert control block.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &DynUnlockConfig,
) -> AttackOutcome {
    crate::engine::run(
        &DynUnlockEngine { config: *config },
        locked,
        oracle,
        &mut AttackCtl::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use locking::scan_obfuscation::{self, ScanObfConfig, UnrollOptions};
    use netlist::samples;

    fn workload() -> (ScanObfLocked, UnrolledSession) {
        let orig = samples::counter(8);
        let locked = scan_obfuscation::lock(
            &orig,
            &ScanObfConfig {
                key_bits: 8,
                num_chains: 2,
                invert_spacing: 2,
                swap_spacing: 2,
                seed: 3,
            },
        )
        .unwrap();
        let unrolled = locked.unroll(&UnrollOptions::default()).unwrap();
        (locked, unrolled)
    }

    #[test]
    fn recovers_the_scan_seed() {
        let (locked, unrolled) = workload();
        let mut oracle = ScanSessionOracle::new(&locked, &unrolled).unwrap();
        let out = attack(
            &unrolled.locked,
            &mut oracle,
            &DynUnlockConfig::for_session(&unrolled),
        );
        let key = out.key.expect("DynUnlock must break dynamic scan obfuscation");
        // The recovered seed must reproduce every bounded session exactly.
        assert!(
            verify::key_exact_counterexample(&unrolled.locked, &key).is_none(),
            "recovered seed must be session-equivalent to the real one"
        );
    }

    #[test]
    fn dropped_frame_sabotage_is_semantic() {
        let (locked, unrolled) = workload();
        let mut oracle = ScanSessionOracle::new(&locked, &unrolled).unwrap();
        let out = attack(
            &unrolled.locked,
            &mut oracle,
            &DynUnlockConfig {
                frame_bits: unrolled.frame_bits(),
                sabotage: Some(DynUnlockSabotage::DropUnrollFrame),
                ..DynUnlockConfig::default()
            },
        );
        // Under-constrained learning must either stall or produce a seed
        // the exact miter refutes.
        let broken = match out.key {
            None => true,
            Some(key) => verify::key_exact_counterexample(&unrolled.locked, &key).is_some(),
        };
        assert!(broken, "the planted dropped-frame fault must be observable");
    }

    #[test]
    fn dead_oracle_defeats_dyn_unlock() {
        let (_, unrolled) = workload();
        let mut oracle = crate::DeadOracle::new(
            unrolled.data_bits(),
            unrolled.locked.circuit.primary_outputs().len(),
        );
        let out = attack(&unrolled.locked, &mut oracle, &DynUnlockConfig::default());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
    }
}
