//! The SAT attack (Subramanyan, Ray, Malik — HOST 2015).
//!
//! The attack maintains a miter `C(X, K1) ≠ C(X, K2)` over two key copies,
//! both constrained to agree with every oracle response observed so far.
//! Each satisfying assignment yields a *distinguishing input* (DIP): an
//! input on which two still-viable keys disagree. Querying the oracle on the
//! DIP and adding the response as a constraint eliminates at least one wrong
//! key equivalence class per iteration. When the miter goes UNSAT, every
//! remaining key is functionally correct — any model of the accumulated
//! constraints is an unlocking key.
//!
//! All encoding goes through [`crate::aigcnf::ReducedEncoder`]: the miter
//! compares only key-dependent output cones and shares the key-independent
//! logic between the copies, and each per-DIP constraint is cofactored under
//! the DIP's constants before any clause is emitted. Key extraction runs on
//! the *same* solver — the miter disjunction carries an activation literal,
//! so assuming it disables the miter and leaves exactly the accumulated I/O
//! constraints, reusing everything the solver has learned.
//!
//! Against OraP the very first oracle query fails, so the attack terminates
//! with [`FailureReason::OracleUnavailable`] — the paper's central claim.

use cdcl::{Lit, SolveResult, Solver};
use locking::LockedCircuit;

use crate::aigcnf::ReducedEncoder;
use crate::engine::{
    AttackCtl, AttackEngine, AttackSession, Interrupt, Milestone, ProgressEvent, StepStatus,
};
use crate::{AttackOutcome, AttackTelemetry, DipTelemetry, FailureReason, Oracle};

/// SAT attack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Maximum distinguishing inputs before giving up.
    pub max_iterations: usize,
    /// Optional conflict budget per solver call.
    pub conflict_budget: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 4096,
            conflict_budget: None,
        }
    }
}

/// The shared plumbing of the SAT-attack family: one solver holding the
/// activation-gated miter plus every observed I/O constraint.
pub(crate) struct AttackContext {
    pub solver: Solver,
    pub enc: ReducedEncoder,
    /// Miter activation literal: assumed true for DIP search, false for key
    /// extraction (folding the old separate extraction solver into this one).
    act: Lit,
    /// Observed I/O pairs.
    pub history: Vec<(Vec<bool>, Vec<bool>)>,
    /// Per-DIP telemetry, parallel to `history`.
    pub dips: Vec<DipTelemetry>,
}

impl AttackContext {
    pub fn new(locked: &LockedCircuit) -> Self {
        let mut solver = Solver::new();
        let mut enc = ReducedEncoder::new(locked, &mut solver, 2);
        let act = solver.new_var().positive();
        enc.assert_miter(&mut solver, 0, 1, Some(!act));
        // The miter is symmetric under swapping its key copies; keep only
        // the ordered representatives.
        enc.assert_key_lex_le(&mut solver, 0, 1);
        // Every later per-DIP constraint and every assumption mentions the
        // key copies and the activation literal; freezing them spares the
        // inprocessing layer eliminate/restore churn on those variables.
        for copy in 0..2 {
            for &k in enc.key_vars(copy) {
                solver.set_frozen(k, true);
            }
        }
        solver.set_frozen(act.var(), true);
        AttackContext {
            solver,
            enc,
            act,
            history: Vec::new(),
            dips: Vec::new(),
        }
    }

    /// Searches for the next distinguishing input (miter enabled).
    pub fn solve_miter(&mut self) -> SolveResult {
        self.solver.solve_with(&[self.act])
    }

    /// Reads the current DIP from the miter solver's model.
    pub fn model_dip(&self) -> Vec<bool> {
        self.enc
            .data_vars()
            .iter()
            .map(|&v| self.solver.value(v).unwrap_or(false))
            .collect()
    }

    /// Records an oracle response: constrains both miter key copies to
    /// reproduce it.
    pub fn learn(&mut self, x: &[bool], y: &[bool]) {
        self.learn_prefix(x, y, y.len());
    }

    /// [`learn`](AttackContext::learn), but asserting only the first
    /// `limit` response bits (the session attacks' dropped-frame mutant
    /// drives this with a short limit).
    pub fn learn_prefix(&mut self, x: &[bool], y: &[bool], limit: usize) {
        let before = self.solver.num_clauses();
        self.enc
            .add_io_constraint_prefix(&mut self.solver, 0, x, y, limit);
        self.enc
            .add_io_constraint_prefix(&mut self.solver, 1, x, y, limit);
        let stats = self.solver.stats();
        self.dips.push(DipTelemetry {
            clauses_added: self.solver.num_clauses().saturating_sub(before),
            conflicts: stats.conflicts,
            subsumed_clauses: stats.subsumed_clauses + stats.strengthened_clauses,
            eliminated_vars: stats.eliminated_vars,
            vivified_literals: stats.vivified_literals,
        });
        self.history.push((x.to_vec(), y.to_vec()));
    }

    /// Solves the extraction problem — any key consistent with all observed
    /// I/O pairs — by disabling the miter on the same solver.
    pub fn extract_key(&mut self) -> Option<Vec<bool>> {
        match self.solver.solve_with(&[!self.act]) {
            SolveResult::Sat => Some(
                self.enc
                    .key_vars(0)
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Snapshot of the run's telemetry.
    pub fn telemetry(&self) -> AttackTelemetry {
        AttackTelemetry {
            dips: self.dips.clone(),
            solver: *self.solver.stats(),
            clauses: self.solver.num_clauses(),
            vars: self.solver.num_vars(),
            engine: netlist::EngineCounters::default(),
        }
    }
}

/// The SAT attack as an [`AttackEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SatEngine {
    /// Attack parameters.
    pub config: SatAttackConfig,
}

impl AttackEngine for SatEngine {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn start<'a>(
        &self,
        locked: &'a LockedCircuit,
        oracle: &'a mut dyn Oracle,
    ) -> Box<dyn AttackSession + 'a> {
        let mut ctx = AttackContext::new(locked);
        ctx.solver.set_conflict_budget(self.config.conflict_budget);
        Box::new(SatSession {
            ctx,
            oracle,
            max_iterations: self.config.max_iterations,
            iterations: 0,
            pending_dip: None,
            started: false,
            outcome: None,
        })
    }
}

/// A SAT attack in progress: one [`step`](AttackSession::step) learns one
/// distinguishing input (or finishes via extraction when the miter is
/// UNSAT).
pub struct SatSession<'a> {
    ctx: AttackContext,
    oracle: &'a mut dyn Oracle,
    max_iterations: usize,
    iterations: usize,
    /// A DIP whose oracle query was interrupted; resumed before any new
    /// miter solve so the interrupted trajectory stays bit-identical.
    pending_dip: Option<Vec<bool>>,
    started: bool,
    outcome: Option<AttackOutcome>,
}

impl SatSession<'_> {
    fn finish(&mut self, outcome: AttackOutcome) -> StepStatus {
        self.outcome = Some(outcome);
        StepStatus::Done
    }

    fn finish_failed(&mut self, reason: FailureReason) -> StepStatus {
        let out = AttackOutcome::failed(
            reason,
            self.iterations,
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry());
        self.finish(out)
    }

    /// Miter UNSAT: every remaining key is correct — extract one.
    fn extract_and_finish(&mut self) -> StepStatus {
        let key = self.ctx.extract_key();
        let telemetry = self.ctx.telemetry();
        match key {
            Some(key) => self.finish(AttackOutcome {
                key: Some(key),
                failure: None,
                iterations: self.iterations,
                oracle_queries: self.oracle.queries_attempted(),
                telemetry,
            }),
            None => self.finish_failed(FailureReason::Inconclusive),
        }
    }
}

impl AttackSession for SatSession<'_> {
    fn step(&mut self, ctl: &mut AttackCtl) -> StepStatus {
        if self.outcome.is_some() {
            return StepStatus::Done;
        }
        if let Err(why) = ctl.check() {
            return StepStatus::Interrupted(why);
        }
        if !self.started {
            self.started = true;
            ctl.emit_stage("dip-search");
        }
        ctl.arm_solver(&mut self.ctx.solver);
        let x = match self.pending_dip.take() {
            Some(x) => x,
            None => {
                if self.iterations >= self.max_iterations {
                    return self.finish_failed(FailureReason::IterationLimit);
                }
                match self.ctx.solve_miter() {
                    SolveResult::Unknown => {
                        return match ctl.solver_interrupt(&self.ctx.solver) {
                            Some(why) => StepStatus::Interrupted(why),
                            None => self.finish_failed(FailureReason::SolverBudget),
                        };
                    }
                    SolveResult::Unsat => {
                        ctl.emit_stage("extract");
                        return self.extract_and_finish();
                    }
                    SolveResult::Sat => self.ctx.model_dip(),
                }
            }
        };
        match ctl.query(self.oracle, &x) {
            Err(why) => {
                self.pending_dip = Some(x);
                StepStatus::Interrupted(why)
            }
            Ok(None) => {
                self.iterations += 1;
                self.finish_failed(FailureReason::OracleUnavailable)
            }
            Ok(Some(y)) => {
                self.iterations += 1;
                self.ctx.learn(&x, &y);
                ctl.emit(ProgressEvent::Milestone(Milestone {
                    stage: "dip-search",
                    iterations: self.iterations,
                    dips_eliminated: self.ctx.dips.len(),
                    clauses_learned: self.ctx.solver.stats().learned_clauses,
                    oracle_queries: ctl.queries(),
                }));
                StepStatus::Running
            }
        }
    }

    fn outcome(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }

    fn interrupted_outcome(&self, why: Interrupt) -> AttackOutcome {
        AttackOutcome::failed(
            why.into(),
            self.iterations,
            self.oracle.queries_attempted(),
        )
        .with_telemetry(self.ctx.telemetry())
    }
}

/// Runs the SAT attack to completion (thin wrapper over the engine with an
/// inert control block).
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &SatAttackConfig,
) -> AttackOutcome {
    crate::engine::run(
        &SatEngine { config: *config },
        locked,
        oracle,
        &mut AttackCtl::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_is_functionally_correct;
    use crate::oracle::{CombOracle, DeadOracle};
    use locking::random::RllConfig;
    use locking::weighted::WllConfig;
    use netlist::samples;

    #[test]
    fn breaks_rll_on_adder() {
        let original = samples::ripple_adder(4);
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 8, seed: 3 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("SAT attack must break RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
        assert!(out.iterations <= 256, "RLL should fall quickly");
    }

    #[test]
    fn breaks_wll_on_adder() {
        let original = samples::ripple_adder(4);
        let locked = locking::weighted::lock(
            &original,
            &WllConfig {
                key_bits: 9,
                control_width: 3,
                seed: 5,
            },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("WLL offers no SAT resistance");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn breaks_random_circuit_lock() {
        let original = netlist::generate::random_comb(41, 10, 6, 150).unwrap();
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 12, seed: 7 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("attack succeeds");
        assert!(key_is_functionally_correct(&locked, &key, 2048).unwrap());
    }

    #[test]
    fn sarlock_costs_exponential_iterations() {
        // SARLock with k key bits needs ~2^k DIPs; with a tight iteration
        // cap the attack must hit the limit, demonstrating SAT resistance.
        let original = samples::ripple_adder(4);
        let locked = locking::point_function::sarlock(
            &original,
            &locking::point_function::SarLockConfig { key_bits: 8, seed: 2 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(
            &locked,
            &mut oracle,
            &SatAttackConfig {
                max_iterations: 32,
                conflict_budget: None,
            },
        );
        assert_eq!(out.failure, Some(FailureReason::IterationLimit));

        // And with enough budget it does finish (2^8 DIPs max).
        let mut oracle2 = CombOracle::from_locked(&locked).unwrap();
        let out2 = attack(
            &locked,
            &mut oracle2,
            &SatAttackConfig {
                max_iterations: 600,
                conflict_budget: None,
            },
        );
        let key = out2.key.expect("finishes after ~2^k iterations");
        assert!(out2.iterations > 32, "must need many DIPs");
        assert!(key_is_functionally_correct(&locked, &key, 4096).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_attack() {
        let original = samples::ripple_adder(4);
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 8, seed: 3 }).unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        assert!(!out.succeeded());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
        assert_eq!(out.iterations, 1, "fails at the first query");
    }

    #[test]
    fn unlocked_interface_with_zero_information_still_extracts_some_key() {
        // A locked circuit where the miter is UNSAT immediately (key gates
        // cancel): any key works, extraction returns one.
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_input("k");
        // y = a XOR k XOR k == a: the two key gates cancel.
        let x1 = c.add_gate(netlist::GateKind::Xor, vec![a, k], "x1").unwrap();
        let y = c.add_gate(netlist::GateKind::Xor, vec![x1, k], "y").unwrap();
        c.mark_output(y);
        let locked = LockedCircuit {
            circuit: c,
            key_inputs: vec![k],
            correct_key: vec![false],
            scheme: "degenerate",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        assert_eq!(out.iterations, 0, "miter is UNSAT from the start");
        assert!(out.key.is_some());
    }

    #[test]
    fn telemetry_tracks_one_record_per_dip() {
        let original = samples::ripple_adder(4);
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 8, seed: 3 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        assert!(out.key.is_some());
        assert_eq!(out.telemetry.dips.len(), out.iterations);
        // Note: the final live-clause count may legitimately be zero — once
        // the correct key is implied at root level, the inprocessing layer
        // deletes every root-satisfied clause.
        assert!(out.telemetry.vars > 0);
        assert!(out.telemetry.dips.iter().any(|d| d.clauses_added > 0));
        assert!(out.telemetry.solver.solves as usize >= out.iterations);
        // Cumulative counters never decrease along the run.
        for w in out.telemetry.dips.windows(2) {
            assert!(w[0].conflicts <= w[1].conflicts);
            assert!(w[0].subsumed_clauses <= w[1].subsumed_clauses);
            assert!(w[0].eliminated_vars <= w[1].eliminated_vars);
            assert!(w[0].vivified_literals <= w[1].vivified_literals);
        }
    }
}
