//! The SAT attack (Subramanyan, Ray, Malik — HOST 2015).
//!
//! The attack maintains a miter `C(X, K1) ≠ C(X, K2)` over two key copies,
//! both constrained to agree with every oracle response observed so far.
//! Each satisfying assignment yields a *distinguishing input* (DIP): an
//! input on which two still-viable keys disagree. Querying the oracle on the
//! DIP and adding the response as a constraint eliminates at least one wrong
//! key equivalence class per iteration. When the miter goes UNSAT, every
//! remaining key is functionally correct — any model of the accumulated
//! constraints is an unlocking key.
//!
//! Against OraP the very first oracle query fails, so the attack terminates
//! with [`FailureReason::OracleUnavailable`] — the paper's central claim.

use std::collections::HashMap;

use cdcl::{Lit, SolveResult, Solver, Var};
use locking::LockedCircuit;
use netlist::NetId;

use crate::cnf::{add_io_constraint, bind_fresh, encode, encode_xor};
use crate::{AttackOutcome, FailureReason, Oracle};

/// SAT attack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatAttackConfig {
    /// Maximum distinguishing inputs before giving up.
    pub max_iterations: usize,
    /// Optional conflict budget per solver call.
    pub conflict_budget: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 4096,
            conflict_budget: None,
        }
    }
}

/// The shared plumbing of the SAT-attack family.
pub(crate) struct AttackContext<'l> {
    pub locked: &'l LockedCircuit,
    pub data_inputs: Vec<NetId>,
    pub outputs: Vec<NetId>,
    /// Miter solver.
    pub solver: Solver,
    pub data_vars: Vec<Var>,
    pub k1: HashMap<NetId, Lit>,
    pub k2: HashMap<NetId, Lit>,
    /// Constraint-only solver for key extraction.
    pub extraction: Solver,
    pub ke: HashMap<NetId, Lit>,
    pub ke_vars: Vec<Var>,
    /// Observed I/O pairs.
    pub history: Vec<(Vec<bool>, Vec<bool>)>,
}

impl<'l> AttackContext<'l> {
    pub fn new(locked: &'l LockedCircuit) -> Self {
        let c = &locked.circuit;
        let data_inputs: Vec<NetId> = c
            .comb_inputs()
            .into_iter()
            .filter(|n| !locked.key_inputs.contains(n))
            .collect();
        let outputs = c.comb_outputs();

        let mut solver = Solver::new();
        let (data_bind, data_vars) = bind_fresh(&mut solver, &data_inputs);
        let (k1, _) = bind_fresh(&mut solver, &locked.key_inputs);
        let (k2, _) = bind_fresh(&mut solver, &locked.key_inputs);

        // Two circuit copies sharing X, differing in key bindings.
        let mut bound1 = data_bind.clone();
        bound1.extend(k1.iter().map(|(k, v)| (*k, *v)));
        let lits1 = encode(&mut solver, c, &bound1);
        let mut bound2 = data_bind;
        bound2.extend(k2.iter().map(|(k, v)| (*k, *v)));
        let lits2 = encode(&mut solver, c, &bound2);

        // Miter: at least one output differs.
        let diffs: Vec<Lit> = outputs
            .iter()
            .map(|o| encode_xor(&mut solver, lits1[o.index()], lits2[o.index()]))
            .collect();
        solver.add_clause(&diffs);

        let mut extraction = Solver::new();
        let (ke, ke_vars) = bind_fresh(&mut extraction, &locked.key_inputs);

        AttackContext {
            locked,
            data_inputs,
            outputs,
            solver,
            data_vars,
            k1,
            k2,
            extraction,
            ke,
            ke_vars,
            history: Vec::new(),
        }
    }

    /// Reads the current DIP from the miter solver's model.
    pub fn model_dip(&self) -> Vec<bool> {
        self.data_vars
            .iter()
            .map(|&v| self.solver.value(v).unwrap_or(false))
            .collect()
    }

    /// Records an oracle response: constrains both miter key copies and the
    /// extraction key to reproduce it.
    pub fn learn(&mut self, x: &[bool], y: &[bool]) {
        let c = &self.locked.circuit;
        for keys in [&self.k1, &self.k2] {
            add_io_constraint(
                &mut self.solver,
                c,
                &self.data_inputs,
                keys,
                x,
                y,
                &self.outputs,
            );
        }
        add_io_constraint(
            &mut self.extraction,
            c,
            &self.data_inputs,
            &self.ke,
            x,
            y,
            &self.outputs,
        );
        self.history.push((x.to_vec(), y.to_vec()));
    }

    /// Solves the extraction problem: any key consistent with all observed
    /// I/O pairs.
    pub fn extract_key(&mut self) -> Option<Vec<bool>> {
        match self.extraction.solve() {
            SolveResult::Sat => Some(
                self.ke_vars
                    .iter()
                    .map(|&v| self.extraction.value(v).unwrap_or(false))
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// Runs the SAT attack.
pub fn attack(
    locked: &LockedCircuit,
    oracle: &mut dyn Oracle,
    config: &SatAttackConfig,
) -> AttackOutcome {
    let mut ctx = AttackContext::new(locked);
    ctx.solver.set_conflict_budget(config.conflict_budget);
    let mut iterations = 0usize;
    loop {
        if iterations >= config.max_iterations {
            return AttackOutcome::failed(
                FailureReason::IterationLimit,
                iterations,
                oracle.queries_attempted(),
            );
        }
        match ctx.solver.solve() {
            SolveResult::Unknown => {
                return AttackOutcome::failed(
                    FailureReason::SolverBudget,
                    iterations,
                    oracle.queries_attempted(),
                );
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                iterations += 1;
                let x = ctx.model_dip();
                match oracle.query(&x) {
                    None => {
                        return AttackOutcome::failed(
                            FailureReason::OracleUnavailable,
                            iterations,
                            oracle.queries_attempted(),
                        );
                    }
                    Some(y) => ctx.learn(&x, &y),
                }
            }
        }
    }
    match ctx.extract_key() {
        Some(key) => AttackOutcome {
            key: Some(key),
            failure: None,
            iterations,
            oracle_queries: oracle.queries_attempted(),
        },
        None => AttackOutcome::failed(
            FailureReason::Inconclusive,
            iterations,
            oracle.queries_attempted(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CombOracle, DeadOracle};
    use crate::key_is_functionally_correct;
    use locking::random::RllConfig;
    use locking::weighted::WllConfig;
    use netlist::samples;

    #[test]
    fn breaks_rll_on_adder() {
        let original = samples::ripple_adder(4);
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 8, seed: 3 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("SAT attack must break RLL");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
        assert!(out.iterations <= 256, "RLL should fall quickly");
    }

    #[test]
    fn breaks_wll_on_adder() {
        let original = samples::ripple_adder(4);
        let locked = locking::weighted::lock(
            &original,
            &WllConfig {
                key_bits: 9,
                control_width: 3,
                seed: 5,
            },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("WLL offers no SAT resistance");
        assert!(key_is_functionally_correct(&locked, &key, 1024).unwrap());
    }

    #[test]
    fn breaks_random_circuit_lock() {
        let original = netlist::generate::random_comb(41, 10, 6, 150).unwrap();
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 12, seed: 7 }).unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        let key = out.key.expect("attack succeeds");
        assert!(key_is_functionally_correct(&locked, &key, 2048).unwrap());
    }

    #[test]
    fn sarlock_costs_exponential_iterations() {
        // SARLock with k key bits needs ~2^k DIPs; with a tight iteration
        // cap the attack must hit the limit, demonstrating SAT resistance.
        let original = samples::ripple_adder(4);
        let locked = locking::point_function::sarlock(
            &original,
            &locking::point_function::SarLockConfig { key_bits: 8, seed: 2 },
        )
        .unwrap();
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(
            &locked,
            &mut oracle,
            &SatAttackConfig {
                max_iterations: 32,
                conflict_budget: None,
            },
        );
        assert_eq!(out.failure, Some(FailureReason::IterationLimit));

        // And with enough budget it does finish (2^8 DIPs max).
        let mut oracle2 = CombOracle::from_locked(&locked).unwrap();
        let out2 = attack(
            &locked,
            &mut oracle2,
            &SatAttackConfig {
                max_iterations: 600,
                conflict_budget: None,
            },
        );
        let key = out2.key.expect("finishes after ~2^k iterations");
        assert!(out2.iterations > 32, "must need many DIPs");
        assert!(key_is_functionally_correct(&locked, &key, 4096).unwrap());
    }

    #[test]
    fn dead_oracle_defeats_attack() {
        let original = samples::ripple_adder(4);
        let locked =
            locking::random::lock(&original, &RllConfig { key_bits: 8, seed: 3 }).unwrap();
        let mut oracle = DeadOracle::new(8, 5);
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        assert!(!out.succeeded());
        assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));
        assert_eq!(out.iterations, 1, "fails at the first query");
    }

    #[test]
    fn unlocked_interface_with_zero_information_still_extracts_some_key() {
        // A locked circuit where the miter is UNSAT immediately (key gates
        // cancel): any key works, extraction returns one.
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_input("k");
        // y = a XOR k XOR k == a: the two key gates cancel.
        let x1 = c.add_gate(netlist::GateKind::Xor, vec![a, k], "x1").unwrap();
        let y = c.add_gate(netlist::GateKind::Xor, vec![x1, k], "y").unwrap();
        c.mark_output(y);
        let locked = LockedCircuit {
            circuit: c,
            key_inputs: vec![k],
            correct_key: vec![false],
            scheme: "degenerate",
        };
        let mut oracle = CombOracle::from_locked(&locked).unwrap();
        let out = attack(&locked, &mut oracle, &SatAttackConfig::default());
        assert_eq!(out.iterations, 0, "miter is UNSAT from the start");
        assert!(out.key.is_some());
    }
}
