//! Structural circuit statistics in the form the paper reports them.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Circuit, GateKind, Levelization};

/// Summary statistics of a circuit.
///
/// `gates_excluding_inverters` matches Table I's "# Gates" column ("number of
/// gates without inverters"); `depth` (logic levels) is the paper's delay
/// metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub primary_inputs: usize,
    /// Number of primary outputs.
    pub primary_outputs: usize,
    /// Number of D flip-flops.
    pub dffs: usize,
    /// Inputs of the combinational part (PIs + FF outputs).
    pub comb_inputs: usize,
    /// Outputs of the combinational part (POs + FF inputs).
    pub comb_outputs: usize,
    /// Total gate count.
    pub gates: usize,
    /// Gate count excluding inverters and buffers (paper's metric).
    pub gates_excluding_inverters: usize,
    /// Logic depth in levels (paper's delay metric).
    pub depth: u32,
    /// Gate histogram by kind.
    pub by_kind: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Gathers statistics for a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is cyclic (depth is undefined); validate first.
    pub fn of(circuit: &Circuit) -> Self {
        let lv = Levelization::build(circuit).expect("stats require an acyclic circuit");
        let mut by_kind = BTreeMap::new();
        for id in circuit.net_ids() {
            if let Some(g) = circuit.gate(id) {
                *by_kind.entry(g.kind).or_insert(0) += 1;
            }
        }
        CircuitStats {
            name: circuit.name().to_owned(),
            primary_inputs: circuit.primary_inputs().len(),
            primary_outputs: circuit.primary_outputs().len(),
            dffs: circuit.dffs().len(),
            comb_inputs: circuit.comb_inputs().len(),
            comb_outputs: circuit.comb_outputs().len(),
            gates: circuit.num_gates(),
            gates_excluding_inverters: circuit.num_gates_excluding_inverters(),
            depth: lv.depth(),
            by_kind,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PI, {} PO, {} DFF ({} comb in / {} comb out)",
            self.name,
            self.primary_inputs,
            self.primary_outputs,
            self.dffs,
            self.comb_inputs,
            self.comb_outputs
        )?;
        writeln!(
            f,
            "  {} gates ({} excl. inverters), depth {}",
            self.gates, self.gates_excluding_inverters, self.depth
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {:6} {}", kind.as_str(), count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn stats_of_small_circuit() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g").unwrap();
        let n = c.add_gate(GateKind::Not, vec![g], "n").unwrap();
        c.mark_output(n);
        let s = CircuitStats::of(&c);
        assert_eq!(s.primary_inputs, 2);
        assert_eq!(s.primary_outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.gates_excluding_inverters, 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.by_kind[&GateKind::And], 1);
        assert_eq!(s.by_kind[&GateKind::Not], 1);
        let shown = s.to_string();
        assert!(shown.contains("2 gates"));
    }
}
