//! Structural Verilog reading and writing (gate-level subset).
//!
//! Real EDA flows exchange gate-level netlists as structural Verilog at
//! least as often as `.bench`; this module supports the subset those
//! netlists use — one module, `input`/`output`/`wire` declarations, and
//! primitive gate instantiations:
//!
//! ```text
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11, N16, N19;
//!   nand g0 (N10, N1, N3);
//!   nand g1 (N11, N3, N6);
//!   dff  q0 (Q, D);         // sequential extension: q, d
//! endmodule
//! ```
//!
//! Primitive names map to [`GateKind`]; the first port is the output. `dff`
//! instances become boundary flip-flops. As with the `.bench` reader,
//! definitions may appear in any order.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), netlist::Error> {
//! let c = netlist::samples::c17();
//! let text = netlist::verilog::write(&c);
//! let back = netlist::verilog::parse(&text)?;
//! assert_eq!(back.num_gates(), c.num_gates());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::{Circuit, Error, GateKind, Levelization, NetId};

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::And => "and",
        GateKind::Nand => "nand",
        GateKind::Or => "or",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Not => "not",
        GateKind::Buf => "buf",
        GateKind::Const0 => "const0",
        GateKind::Const1 => "const1",
    }
}

fn kind_of(name: &str) -> Option<GateKind> {
    Some(match name {
        "and" => GateKind::And,
        "nand" => GateKind::Nand,
        "or" => GateKind::Or,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "not" | "inv" => GateKind::Not,
        "buf" => GateKind::Buf,
        "const0" => GateKind::Const0,
        "const1" => GateKind::Const1,
        _ => return None,
    })
}

/// Serializes the circuit as a single structural Verilog module.
///
/// # Panics
///
/// Panics if the circuit is cyclic (serialize validated circuits).
pub fn write(circuit: &Circuit) -> String {
    let lv = Levelization::build(circuit).expect("write requires an acyclic circuit");
    let mut s = String::new();
    let name = |n: NetId| sanitize(circuit.net(n).name());
    let mut ports: Vec<String> = circuit.primary_inputs().iter().map(|&n| name(n)).collect();
    ports.extend(circuit.primary_outputs().iter().map(|&n| name(n)));
    s.push_str(&format!(
        "module {} ({});\n",
        sanitize(circuit.name()),
        ports.join(", ")
    ));
    let ins: Vec<String> = circuit.primary_inputs().iter().map(|&n| name(n)).collect();
    if !ins.is_empty() {
        s.push_str(&format!("  input {};\n", ins.join(", ")));
    }
    let outs: Vec<String> = circuit.primary_outputs().iter().map(|&n| name(n)).collect();
    if !outs.is_empty() {
        s.push_str(&format!("  output {};\n", outs.join(", ")));
    }
    let wires: Vec<String> = circuit
        .net_ids()
        .filter(|&n| {
            circuit.gate(n).is_some() && !circuit.primary_outputs().contains(&n)
                || circuit.dffs().iter().any(|d| d.q == n)
        })
        .map(name)
        .collect();
    if !wires.is_empty() {
        s.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    for (i, dff) in circuit.dffs().iter().enumerate() {
        s.push_str(&format!(
            "  dff ff{i} ({}, {});\n",
            name(dff.q),
            name(dff.d)
        ));
    }
    for (gi, &id) in lv.order().iter().enumerate() {
        if let Some(g) = circuit.gate(id) {
            let mut args = vec![name(id)];
            args.extend(g.fanin.iter().map(|&f| name(f)));
            s.push_str(&format!(
                "  {} g{gi} ({});\n",
                kind_name(g.kind),
                args.join(", ")
            ));
        }
    }
    s.push_str("endmodule\n");
    s
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, 'n');
    }
    out
}

#[derive(Debug)]
enum Item {
    Input(Vec<String>),
    Output(Vec<String>),
    Wire,
    Gate {
        kind: GateKind,
        out: String,
        fanin: Vec<String>,
    },
    Dff {
        q: String,
        d: String,
    },
}

/// Parses a single structural Verilog module into a [`Circuit`].
///
/// # Errors
///
/// Returns [`Error::BenchSyntax`] (shared with the `.bench` reader) for
/// malformed input, plus the usual name/cycle errors.
pub fn parse(text: &str) -> Result<Circuit, Error> {
    // Strip comments.
    let mut clean = String::with_capacity(text.len());
    for line in text.lines() {
        let line = match line.find("//") {
            Some(p) => &line[..p],
            None => line,
        };
        clean.push_str(line);
        clean.push('\n');
    }

    // Tokenize into `;`-terminated statements.
    let mut module_name = String::from("verilog");
    let mut items: Vec<Item> = Vec::new();
    let lineno_of_offset = |off: usize| clean[..off].matches('\n').count() + 1;
    let mut rest = clean.as_str();
    let mut offset = 0usize;
    while let Some(semi) = rest.find(';') {
        let stmt = rest[..semi].trim();
        let line = lineno_of_offset(offset);
        offset += semi + 1;
        rest = &rest[semi + 1..];
        if stmt.is_empty() {
            continue;
        }
        let syntax = |msg: String| Error::BenchSyntax { line, msg };
        let mut words = stmt.split_whitespace();
        let head = words.next().ok_or_else(|| syntax("empty statement".into()))?;
        match head {
            "module" => {
                let rest_of = stmt["module".len()..].trim();
                let name_end = rest_of
                    .find(|c: char| c == '(' || c.is_whitespace())
                    .unwrap_or(rest_of.len());
                module_name = rest_of[..name_end].to_owned();
                // Port list is redundant with input/output declarations.
            }
            "input" | "output" | "wire" => {
                let names: Vec<String> = stmt[head.len()..]
                    .split(',')
                    .map(|n| n.trim().to_owned())
                    .filter(|n| !n.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err(syntax(format!("empty {head} declaration")));
                }
                items.push(match head {
                    "input" => Item::Input(names),
                    "output" => Item::Output(names),
                    _ => Item::Wire,
                });
            }
            "endmodule" => break,
            prim => {
                let kind = kind_of(prim);
                let open = stmt
                    .find('(')
                    .ok_or_else(|| syntax(format!("expected `(` after `{prim}`")))?;
                let close = stmt
                    .rfind(')')
                    .ok_or_else(|| syntax("expected `)`".into()))?;
                if close < open {
                    return Err(syntax("mismatched parentheses".into()));
                }
                let args: Vec<String> = stmt[open + 1..close]
                    .split(',')
                    .map(|a| a.trim().to_owned())
                    .filter(|a| !a.is_empty())
                    .collect();
                if prim == "dff" {
                    if args.len() != 2 {
                        return Err(syntax(format!(
                            "dff takes (q, d), got {} ports",
                            args.len()
                        )));
                    }
                    items.push(Item::Dff {
                        q: args[0].clone(),
                        d: args[1].clone(),
                    });
                } else if let Some(kind) = kind {
                    if args.is_empty() {
                        return Err(syntax(format!("`{prim}` needs an output port")));
                    }
                    items.push(Item::Gate {
                        kind,
                        out: args[0].clone(),
                        fanin: args[1..].to_vec(),
                    });
                } else {
                    return Err(syntax(format!("unknown primitive `{prim}`")));
                }
            }
        }
    }
    // Handle `endmodule` without semicolon (normal Verilog).
    // (Already handled: the loop breaks on the keyword or runs out of `;`.)

    // Build the circuit: inputs and DFF q's first, then gates topologically.
    let mut circuit = Circuit::new(module_name);
    let mut ids: HashMap<String, NetId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut dffs: Vec<(String, String)> = Vec::new();
    let mut gates: Vec<(GateKind, String, Vec<String>)> = Vec::new();
    for item in items {
        match item {
            Item::Input(names) => {
                for n in names {
                    if ids.contains_key(&n) {
                        return Err(Error::DuplicateName(n));
                    }
                    let id = circuit.add_input(&n);
                    ids.insert(n, id);
                }
            }
            Item::Output(names) => outputs.extend(names),
            Item::Wire => {}
            Item::Dff { q, d } => {
                if ids.contains_key(&q) {
                    return Err(Error::DuplicateName(q));
                }
                let id = circuit.add_input(&q);
                ids.insert(q.clone(), id);
                dffs.push((q, d));
            }
            Item::Gate { kind, out, fanin } => {
                if ids.contains_key(&out) || gates.iter().any(|(_, o, _)| *o == out) {
                    return Err(Error::DuplicateName(out));
                }
                gates.push((kind, out, fanin));
            }
        }
    }
    // Worklist creation in dependency order (same strategy as the bench
    // reader).
    let mut pending = gates;
    loop {
        let before = pending.len();
        let mut still = Vec::new();
        for (kind, out, fanin) in pending {
            if fanin.iter().all(|a| ids.contains_key(a)) {
                let f: Vec<NetId> = fanin.iter().map(|a| ids[a]).collect();
                let id = circuit.add_gate(kind, f, &out)?;
                ids.insert(out, id);
            } else {
                still.push((kind, out, fanin));
            }
        }
        pending = still;
        if pending.is_empty() {
            break;
        }
        if pending.len() == before {
            let (_, _, fanin) = &pending[0];
            let missing = fanin
                .iter()
                .find(|a| !ids.contains_key(*a))
                .cloned()
                .unwrap_or_default();
            let defined_later = pending.iter().any(|(_, o, _)| *o == missing);
            return Err(if defined_later {
                Error::CombinationalCycle(missing)
            } else {
                Error::UndefinedName(missing)
            });
        }
    }
    for (q, d) in dffs {
        let d_id = *ids.get(&d).ok_or(Error::UndefinedName(d))?;
        let q_id = ids[&q];
        circuit
            .convert_input_to_dff(q_id, d_id)
            .expect("q created as input");
    }
    for out in outputs {
        let id = *ids.get(&out).ok_or(Error::UndefinedName(out))?;
        circuit.mark_output(id);
    }
    circuit.validate()?;
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn roundtrip_c17() {
        let c = samples::c17();
        let text = write(&c);
        assert!(text.contains("module c17"));
        let back = parse(&text).unwrap();
        assert_eq!(back.num_gates(), c.num_gates());
        assert_eq!(back.primary_inputs().len(), 5);
        assert_eq!(back.primary_outputs().len(), 2);
    }

    #[test]
    fn roundtrip_preserves_function() {
        let c = crate::generate::random_comb(33, 8, 5, 120).unwrap();
        let back = parse(&write(&c)).unwrap();
        // Positional equivalence over the comb interface.
        let rng = &mut crate::rng::SplitMix64::new(1);
        let lv_a = Levelization::build(&c).unwrap();
        let lv_b = Levelization::build(&back).unwrap();
        let eval = |c: &Circuit, lv: &Levelization, input: &[bool]| -> Vec<bool> {
            let mut vals = vec![false; c.num_nets()];
            for (net, &v) in c.comb_inputs().iter().zip(input) {
                vals[net.index()] = v;
            }
            for &id in lv.order() {
                if let Some(g) = c.gate(id) {
                    vals[id.index()] = g.kind.eval(g.fanin.iter().map(|f| vals[f.index()]));
                }
            }
            c.comb_outputs().iter().map(|o| vals[o.index()]).collect()
        };
        for _ in 0..64 {
            let input: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
            assert_eq!(eval(&c, &lv_a, &input), eval(&back, &lv_b, &input));
        }
    }

    #[test]
    fn roundtrip_sequential() {
        let c = samples::counter(4);
        let back = parse(&write(&c)).unwrap();
        assert_eq!(back.dffs().len(), 4);
        assert_eq!(back.primary_inputs().len(), 1);
        assert_eq!(back.primary_outputs().len(), 4);
    }

    #[test]
    fn parse_handwritten_module() {
        let text = "\
// a comment
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor g0 (s, a, b);
  and g1 (c, a, b);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.name(), "half_adder");
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn parse_out_of_order_gates() {
        let text = "\
module t (a, y);
  input a;
  output y;
  wire w;
  not g1 (y, w);
  buf g0 (w, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn error_unknown_primitive() {
        let e = parse("module t (a); input a; frob g (a, a); endmodule").unwrap_err();
        assert!(matches!(e, Error::BenchSyntax { .. }), "{e}");
    }

    #[test]
    fn error_cycle() {
        let text = "module t (a); input a; not g0 (x, y); not g1 (y, x); endmodule";
        let e = parse(text).unwrap_err();
        assert!(matches!(e, Error::CombinationalCycle(_)), "{e}");
    }

    #[test]
    fn error_undefined_output() {
        let e = parse("module t (a, z); input a; output z; endmodule").unwrap_err();
        assert!(matches!(e, Error::UndefinedName(_)), "{e}");
    }

    #[test]
    fn sanitize_leading_digit() {
        let c = samples::c17(); // nets named 1, 2, 3...
        let text = write(&c);
        assert!(text.contains("n1"), "digit-leading names prefixed");
        parse(&text).unwrap();
    }

    #[test]
    fn locked_netlist_roundtrip() {
        // The practical interop case: export a locked design.
        let c = crate::generate::random_comb(5, 8, 4, 80).unwrap();
        let text = write(&c);
        let back = parse(&text).unwrap();
        back.validate().unwrap();
    }
}
