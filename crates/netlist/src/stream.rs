//! The streaming compile path: build a [`CompiledCircuit`] gate by gate,
//! without ever materializing a [`Circuit`](crate::Circuit).
//!
//! The [`Circuit`](crate::Circuit) representation spends a `String` name, a `Vec<NetId>`
//! fanin allocation and a name-interning hash entry on every net — fine at
//! ISCAS scale, prohibitive at 10⁶ gates. [`StreamBuilder`] instead appends
//! each gate directly into the flat CSR pools the engine evaluates:
//!
//! - fanins may only reference **already-created** nets, so the dense id
//!   order is topological *by construction* and compilation never runs a
//!   cycle check or Kahn pass;
//! - logic levels are computed incrementally as gates arrive
//!   (`1 + max(fanin levels)`), so [`StreamBuilder::finish`] assembles the
//!   levelization in O(1) from parts it already has;
//! - total allocation is a handful of `Vec`s that grow amortized-linearly
//!   with the gate count — no per-gate allocations at all.
//!
//! The finished artifact is byte-for-byte interchangeable with the output
//! of [`CompiledCircuit::compile`] as far as every consumer is concerned
//! (same CSR semantics, same kernels, same counters); only the topological
//! order may differ (identity here, Kahn order there), which no consumer
//! is allowed to depend on beyond its topological validity.

use crate::compiled::CompiledCircuit;
use crate::{Error, GateKind, Levelization, NetId};

/// Incremental builder producing a [`CompiledCircuit`] directly.
///
/// ```
/// use netlist::{GateKind, StreamBuilder};
///
/// # fn main() -> Result<(), netlist::Error> {
/// let mut b = StreamBuilder::new();
/// let a = b.add_input()?;
/// let bb = b.add_input()?;
/// let sum = b.add_gate(GateKind::Xor, &[a, bb])?;
/// let carry = b.add_gate(GateKind::And, &[a, bb])?;
/// let cc = b.finish(vec![a, bb], vec![sum, carry])?;
/// assert_eq!(cc.num_nets(), 4);
/// assert_eq!(cc.depth(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamBuilder {
    kinds: Vec<Option<GateKind>>,
    fanin_pool: Vec<u32>,
    fanin_start: Vec<u32>,
    level: Vec<u32>,
    started: std::time::Instant,
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        StreamBuilder {
            kinds: Vec::new(),
            fanin_pool: Vec::new(),
            fanin_start: vec![0],
            level: Vec::new(),
            started: std::time::Instant::now(),
        }
    }

    /// Nets created so far.
    pub fn num_nets(&self) -> usize {
        self.kinds.len()
    }

    /// Logic level of an already-created net.
    pub fn level_of(&self, net: u32) -> u32 {
        self.level[net as usize]
    }

    fn next_id(&self) -> Result<u32, Error> {
        if self.kinds.len() >= u32::MAX as usize {
            return Err(Error::TooManyNets);
        }
        Ok(self.kinds.len() as u32)
    }

    /// Creates an undriven input net and returns its dense id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyNets`] past the `u32` id space.
    pub fn add_input(&mut self) -> Result<u32, Error> {
        let id = self.next_id()?;
        self.kinds.push(None);
        self.fanin_start.push(self.fanin_pool.len() as u32);
        self.level.push(0);
        Ok(id)
    }

    /// Creates a gate net driven by `kind` over `fanin` and returns its
    /// dense id. Fanins must be nets this builder already created, which is
    /// what makes the construction acyclic and topologically ordered for
    /// free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadArity`] for an illegal fanin count,
    /// [`Error::UnknownNet`] for a fanin id not created yet, and
    /// [`Error::TooManyNets`] past the `u32` id space.
    pub fn add_gate(&mut self, kind: GateKind, fanin: &[u32]) -> Result<u32, Error> {
        if !kind.accepts_arity(fanin.len()) {
            return Err(Error::BadArity {
                kind: kind.as_str(),
                got: fanin.len(),
            });
        }
        let id = self.next_id()?;
        let mut lvl = 0u32;
        for &f in fanin {
            if f >= id {
                return Err(Error::UnknownNet(f));
            }
            lvl = lvl.max(self.level[f as usize] + 1);
        }
        self.kinds.push(Some(kind));
        self.fanin_pool.extend_from_slice(fanin);
        self.fanin_start.push(self.fanin_pool.len() as u32);
        self.level.push(lvl);
        Ok(id)
    }

    /// Finishes the build into a [`CompiledCircuit`].
    ///
    /// `inputs` is the combinational input view in the order consumers feed
    /// words (for a sequential design: primary inputs then flip-flop
    /// outputs); `outputs` the combinational output view (primary outputs
    /// then flip-flop inputs — duplicates allowed, matching
    /// [`Circuit::comb_outputs`](crate::Circuit::comb_outputs) semantics).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] if a listed net was never created,
    /// [`Error::Undriven`] if `inputs` lists a driven net or misses an
    /// undriven one (every undriven net must be fed, or evaluation would
    /// silently read zeros).
    pub fn finish(self, inputs: Vec<u32>, outputs: Vec<u32>) -> Result<CompiledCircuit, Error> {
        let n = self.kinds.len();
        for &id in inputs.iter().chain(&outputs) {
            if id as usize >= n {
                return Err(Error::UnknownNet(id));
            }
        }
        let mut is_input = vec![false; n];
        for &id in &inputs {
            if self.kinds[id as usize].is_some() || is_input[id as usize] {
                return Err(Error::Undriven(format!("n{id}")));
            }
            is_input[id as usize] = true;
        }
        if let Some(orphan) = (0..n).find(|&i| self.kinds[i].is_none() && !is_input[i]) {
            return Err(Error::Undriven(format!("n{orphan}")));
        }

        let order: Vec<NetId> = (0..n).map(NetId::from_index).collect();
        let lv = Levelization::from_parts(order, self.level);
        let mut cc = CompiledCircuit::assemble(
            self.kinds,
            self.fanin_pool,
            self.fanin_start,
            lv,
            inputs.into_iter().map(|i| NetId::from_index(i as usize)).collect(),
            outputs.into_iter().map(|o| NetId::from_index(o as usize)).collect(),
        );
        cc.set_compile_ns(self.started.elapsed().as_nanos() as u64);
        Ok(cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, CompiledCircuit, EvalScratch};

    /// Builds the same half-adder through both paths and checks the
    /// artifacts agree on everything observable.
    #[test]
    fn streamed_artifact_matches_compiled_artifact() {
        let mut c = Circuit::new("ha");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let sum = c.add_gate(GateKind::Xor, vec![a, b], "sum").unwrap();
        let carry = c.add_gate(GateKind::And, vec![a, b], "carry").unwrap();
        c.mark_output(sum);
        c.mark_output(carry);
        let via_circuit = CompiledCircuit::compile(&c).unwrap();

        let mut sb = StreamBuilder::new();
        let sa = sb.add_input().unwrap();
        let sbb = sb.add_input().unwrap();
        let ssum = sb.add_gate(GateKind::Xor, &[sa, sbb]).unwrap();
        let scarry = sb.add_gate(GateKind::And, &[sa, sbb]).unwrap();
        let via_stream = sb.finish(vec![sa, sbb], vec![ssum, scarry]).unwrap();

        assert_eq!(via_stream.num_nets(), via_circuit.num_nets());
        assert_eq!(via_stream.depth(), via_circuit.depth());
        for id in 0..via_circuit.num_nets() as u32 {
            assert_eq!(via_stream.kind_of(id), via_circuit.kind_of(id));
            assert_eq!(via_stream.fanin(id), via_circuit.fanin(id));
            assert_eq!(via_stream.level_of(id), via_circuit.level_of(id));
            let mut sf = via_stream.fanout(id).to_vec();
            let mut cf = via_circuit.fanout(id).to_vec();
            sf.sort_unstable();
            cf.sort_unstable();
            assert_eq!(sf, cf);
        }
        assert_eq!(via_stream.inputs(), via_circuit.inputs());
        assert_eq!(via_stream.outputs(), via_circuit.outputs());

        let words = vec![0b1100u64, 0b1010u64];
        let (mut x, mut y) = (Vec::new(), Vec::new());
        via_stream.eval_full_into(&words, &mut x);
        via_circuit.eval_full_into(&words, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn incremental_kernel_runs_on_streamed_artifact() {
        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        let b = sb.add_input().unwrap();
        let g = sb.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let h = sb.add_gate(GateKind::Xor, &[g, a]).unwrap();
        let cc = sb.finish(vec![a, b], vec![h]).unwrap();
        let mut scratch = EvalScratch::new(&cc);
        scratch.eval_full(&cc, &[0u64, !0u64]);
        let before = scratch.value(h);
        let diff = scratch.propagate(&cc, a, !0u64);
        assert_eq!(diff, before ^ scratch.value(h));
        scratch.revert();
        assert_eq!(scratch.value(h), before);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        assert!(matches!(
            sb.add_gate(GateKind::And, &[a, 7]),
            Err(Error::UnknownNet(7))
        ));
        // Self-reference is a forward reference too (id not yet created).
        assert!(matches!(
            sb.add_gate(GateKind::Not, &[1]),
            Err(Error::UnknownNet(1))
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        assert!(matches!(
            sb.add_gate(GateKind::Not, &[a, a]),
            Err(Error::BadArity { .. })
        ));
    }

    #[test]
    fn io_views_validated() {
        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        let g = sb.add_gate(GateKind::Not, &[a]).unwrap();
        // Driven net listed as input.
        assert!(sb.finish(vec![a, g], vec![g]).is_err());

        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        let _orphan = sb.add_input().unwrap();
        let g = sb.add_gate(GateKind::Not, &[a]).unwrap();
        // Undriven net missing from the input view.
        assert!(sb.finish(vec![a], vec![g]).is_err());

        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        let g = sb.add_gate(GateKind::Not, &[a]).unwrap();
        // Unknown output id.
        assert!(matches!(
            sb.finish(vec![a], vec![g, 99]),
            Err(Error::UnknownNet(99))
        ));
    }

    #[test]
    fn levels_match_longest_path() {
        let mut sb = StreamBuilder::new();
        let a = sb.add_input().unwrap();
        let short = sb.add_gate(GateKind::Not, &[a]).unwrap();
        let long1 = sb.add_gate(GateKind::Buf, &[a]).unwrap();
        let long2 = sb.add_gate(GateKind::Not, &[long1]).unwrap();
        let out = sb.add_gate(GateKind::And, &[short, long2]).unwrap();
        assert_eq!(sb.level_of(out), 3);
        let cc = sb.finish(vec![a], vec![out]).unwrap();
        assert_eq!(cc.depth(), 3);
        assert_eq!(cc.level_of(out), 3);
    }
}
