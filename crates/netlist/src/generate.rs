//! Deterministic synthetic benchmark generation.
//!
//! The paper evaluates on the largest ISCAS'89 (s38417, s38584) and ITC'99
//! (b17–b22) circuits. Those netlists cannot be redistributed here, so this
//! module generates *profile-matched* stand-ins: random combinational DAGs
//! with the same primary-input/primary-output/flip-flop interface and the
//! same gate count (excluding inverters) as the published circuits. The
//! experiments of the paper measure statistical properties — Hamming
//! distance under random keys, ATPG fault coverage, relative area/delay
//! overhead after resynthesis — which depend on circuit scale and shape, not
//! on the exact boolean functions, so the trends are preserved (see
//! DESIGN.md §3).
//!
//! Generation is fully deterministic: a given [`Profile`] (including its
//! seed) always yields the identical circuit, on any platform. The
//! construction itself is shared between two consumers through an internal
//! `NetSink` abstraction:
//!
//! - [`synthesize`] materializes a full [`Circuit`] (names, flip-flop
//!   records, `.bench` round-tripping) — right at ISCAS scale;
//! - [`synthesize_compiled`] streams the *same* construction (same RNG
//!   draws, same dense net ids, same interface views) straight into a
//!   [`CompiledCircuit`] via [`StreamBuilder`], skipping every per-net
//!   `String` and `Vec` — the path that makes 10⁶-gate circuits practical
//!   with bounded memory.
//!
//! # Example
//!
//! ```
//! use netlist::generate::{self, BenchmarkId};
//!
//! let profile = generate::profile(BenchmarkId::B20).scaled(0.01);
//! let circuit = generate::synthesize(&profile).expect("profile is valid");
//! assert_eq!(circuit.dffs().len(), profile.dffs);
//! ```

use crate::rng::SplitMix64;
use crate::stream::StreamBuilder;
use crate::{Circuit, CompiledCircuit, Error, GateKind, NetId};

/// The benchmark circuits evaluated in the paper (Tables I and II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchmarkId {
    /// ISCAS'89 s38417.
    S38417,
    /// ISCAS'89 s38584.
    S38584,
    /// ITC'99 b17.
    B17,
    /// ITC'99 b18.
    B18,
    /// ITC'99 b19.
    B19,
    /// ITC'99 b20.
    B20,
    /// ITC'99 b21.
    B21,
    /// ITC'99 b22.
    B22,
}

impl BenchmarkId {
    /// All paper benchmarks in Table I row order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::S38417,
        BenchmarkId::S38584,
        BenchmarkId::B17,
        BenchmarkId::B18,
        BenchmarkId::B19,
        BenchmarkId::B20,
        BenchmarkId::B21,
        BenchmarkId::B22,
    ];

    /// Lower-case circuit name as printed in the paper.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchmarkId::S38417 => "s38417",
            BenchmarkId::S38584 => "s38584",
            BenchmarkId::B17 => "b17",
            BenchmarkId::B18 => "b18",
            BenchmarkId::B19 => "b19",
            BenchmarkId::B20 => "b20",
            BenchmarkId::B21 => "b21",
            BenchmarkId::B22 => "b22",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Size profile of a circuit to synthesize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Circuit name.
    pub name: String,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Flip-flops (their outputs become pseudo primary inputs of the
    /// combinational part, their inputs pseudo primary outputs).
    pub dffs: usize,
    /// Target gate count excluding inverters (the paper's "# Gates").
    pub gates: usize,
    /// Fraction of extra inverters to sprinkle in, in percent of `gates`.
    pub inverter_percent: usize,
    /// PRNG seed; part of the circuit's identity.
    pub seed: u64,
}

impl Profile {
    /// Returns a scaled-down copy (for quick test runs): gate count, outputs
    /// and flip-flops are multiplied by `factor`, with floors keeping the
    /// circuit well-formed.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Profile {
        let s = |v: usize, min: usize| ((v as f64 * factor) as usize).max(min);
        Profile {
            name: format!("{}@{factor}", self.name),
            primary_inputs: s(self.primary_inputs, 4),
            primary_outputs: s(self.primary_outputs, 2),
            dffs: s(self.dffs, 2),
            gates: s(self.gates, 16),
            inverter_percent: self.inverter_percent,
            seed: self.seed,
        }
    }

    /// Returns a copy rescaled to an exact non-inverter gate count, with the
    /// interface (PI/PO/FF) scaled proportionally — the scaling-bench entry
    /// point, where "b18 at 10⁶ gates" must mean exactly 10⁶ gates.
    #[must_use]
    pub fn scaled_to_gates(&self, gates: usize) -> Profile {
        let factor = gates as f64 / self.gates as f64;
        let mut p = self.scaled(factor);
        p.gates = gates.max(16);
        p.name = format!("{}@{}g", self.name, p.gates);
        p
    }
}

/// Returns the published interface profile of one of the paper's benchmark
/// circuits (gate counts from Table I; PI/PO/FF counts from the ISCAS'89 and
/// ITC'99 suite documentation).
pub fn profile(id: BenchmarkId) -> Profile {
    let (pi, po, ff, gates) = match id {
        BenchmarkId::S38417 => (28, 106, 1636, 8709),
        BenchmarkId::S38584 => (38, 304, 1426, 11448),
        BenchmarkId::B17 => (37, 97, 1415, 29267),
        BenchmarkId::B18 => (37, 23, 3320, 97569),
        BenchmarkId::B19 => (24, 30, 6642, 196855),
        BenchmarkId::B20 => (32, 22, 490, 17648),
        BenchmarkId::B21 => (32, 22, 490, 17972),
        BenchmarkId::B22 => (32, 22, 735, 26195),
    };
    Profile {
        name: id.as_str().to_owned(),
        primary_inputs: pi,
        primary_outputs: po,
        dffs: ff,
        gates,
        inverter_percent: 12,
        // Distinct seeds per benchmark so b20 and b21 (same interface) differ.
        seed: 0x0DA7_E200 ^ (id as u64).wrapping_mul(0x9E37_79B9),
    }
}

/// Weighted gate-kind distribution typical of technology-mapped control
/// logic (NAND/NOR-rich, some XOR).
fn pick_kind(rng: &mut SplitMix64) -> GateKind {
    match rng.below(100) {
        0..=29 => GateKind::Nand,
        30..=49 => GateKind::Nor,
        50..=64 => GateKind::And,
        65..=79 => GateKind::Or,
        80..=89 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// The generator's naming scheme, kept structured so the streaming sink can
/// skip the `format!` entirely.
#[derive(Debug, Clone, Copy)]
enum NameTag {
    /// Primary input `pi{0}`.
    Pi(usize),
    /// Flip-flop output `ff{0}`.
    Ff(usize),
    /// Sprinkled inverter `inv{0}`.
    Inv(usize),
    /// Random DAG gate `g{0}`.
    Gate(usize),
    /// Sink-merging XOR compactor `merge{0}`.
    Merge(usize),
    /// Gate-count top-up gate `ext{0}`.
    Ext(usize),
}

impl NameTag {
    fn format(self) -> String {
        match self {
            NameTag::Pi(i) => format!("pi{i}"),
            NameTag::Ff(i) => format!("ff{i}"),
            NameTag::Inv(i) => format!("inv{i}"),
            NameTag::Gate(i) => format!("g{i}"),
            NameTag::Merge(i) => format!("merge{i}"),
            NameTag::Ext(i) => format!("ext{i}"),
        }
    }
}

/// Where the shared construction core materializes nets: a named [`Circuit`]
/// or a nameless [`StreamBuilder`]. Both must assign dense ids in creation
/// order so the core can reason in plain `u32`.
trait NetSink {
    fn add_input(&mut self, tag: NameTag) -> Result<u32, Error>;
    fn add_gate(&mut self, kind: GateKind, fanin: &[u32], tag: NameTag) -> Result<u32, Error>;
}

struct CircuitSink {
    c: Circuit,
}

impl NetSink for CircuitSink {
    fn add_input(&mut self, tag: NameTag) -> Result<u32, Error> {
        Ok(self.c.add_input(tag.format()).0)
    }

    fn add_gate(&mut self, kind: GateKind, fanin: &[u32], tag: NameTag) -> Result<u32, Error> {
        let fanin: Vec<NetId> = fanin.iter().map(|&f| NetId::from_index(f as usize)).collect();
        Ok(self.c.add_gate(kind, fanin, tag.format())?.0)
    }
}

struct StreamSink {
    b: StreamBuilder,
}

impl NetSink for StreamSink {
    fn add_input(&mut self, _tag: NameTag) -> Result<u32, Error> {
        self.b.add_input()
    }

    fn add_gate(&mut self, kind: GateKind, fanin: &[u32], _tag: NameTag) -> Result<u32, Error> {
        self.b.add_gate(kind, fanin)
    }
}

/// Everything the two wrappers need to finish the interface assignment:
/// the combinational input count and the shuffled observation points
/// (`sinks[..dffs]` become flip-flop D-inputs, the rest primary outputs).
struct SynthPlan {
    comb_inputs: usize,
    dffs: usize,
    sinks: Vec<u32>,
}

/// The shared construction core. Draws the exact same RNG stream and
/// assigns the exact same dense net ids regardless of the sink, which is
/// what keeps [`synthesize`] and [`synthesize_compiled`] bit-equivalent.
fn synthesize_core<S: NetSink>(profile: &Profile, sink: &mut S) -> Result<SynthPlan, Error> {
    let comb_inputs = profile.primary_inputs + profile.dffs;
    let comb_outputs = profile.primary_outputs + profile.dffs;
    if comb_inputs == 0 {
        return Err(Error::BadProfile("no combinational inputs".into()));
    }
    if comb_outputs == 0 {
        return Err(Error::BadProfile("no combinational outputs".into()));
    }
    if profile.gates < 2 {
        return Err(Error::BadProfile("need at least 2 gates".into()));
    }

    let mut rng = SplitMix64::new(profile.seed);

    for i in 0..profile.primary_inputs {
        sink.add_input(NameTag::Pi(i))?;
    }
    for i in 0..profile.dffs {
        sink.add_input(NameTag::Ff(i))?;
    }

    // Phase 1: grow the random DAG. `recent` keeps a sliding window of the
    // last nets so that fanins are biased towards fresh logic, which produces
    // depth instead of a two-level soup. Net ids are dense and created in
    // order, so the "all nets so far" pool is just the id range `0..created`.
    const WINDOW: usize = 96;
    let mut created = comb_inputs as u32;
    let mut fanout_count = vec![0u32; comb_inputs];
    let pick_fanin = |rng: &mut SplitMix64, created: u32| -> u32 {
        let n = created as usize;
        if n > WINDOW && rng.chance(55, 100) {
            (n - WINDOW + rng.below_usize(WINDOW)) as u32
        } else {
            rng.below_usize(n) as u32
        }
    };

    // Reserve budget for the sink-combining and top-up phases; the final
    // non-inverter gate count is made exact below.
    let reserve = (profile.gates / 8).max(2);
    let grow = profile.gates.saturating_sub(reserve).max(2);

    // Observation points are tapped *before* the top-up phase, so only the
    // grow-phase nets are available to cover the outputs — checking against
    // `profile.gates` here would let borderline profiles through and leave
    // the sink-expansion sampler below with no fresh nets to draw.
    if comb_outputs > comb_inputs + grow {
        return Err(Error::BadProfile(
            "more outputs than nets to observe".into(),
        ));
    }
    let mut non_inv = 0usize;
    let mut inverters_wanted = profile.gates * profile.inverter_percent / 100;
    let mut g_index = 0usize;
    let mut fanin = Vec::with_capacity(3);
    while non_inv < grow {
        if inverters_wanted > 0 && rng.chance(profile.inverter_percent as u64, 100) {
            let f = pick_fanin(&mut rng, created);
            let id = sink.add_gate(GateKind::Not, &[f], NameTag::Inv(g_index))?;
            debug_assert_eq!(id, created);
            fanout_count[f as usize] += 1;
            fanout_count.push(0);
            created += 1;
            inverters_wanted -= 1;
        } else {
            let kind = pick_kind(&mut rng);
            let arity = if rng.chance(1, 5) { 3 } else { 2 };
            fanin.clear();
            while fanin.len() < arity {
                let f = pick_fanin(&mut rng, created);
                // Distinct fanins are preferred, but a tiny net pool (1-2
                // combinational inputs before any gates exist) cannot supply
                // `arity` distinct nets — accept a repeat rather than
                // rejection-sample forever.
                if !fanin.contains(&f) || fanin.len() >= created as usize {
                    fanin.push(f);
                }
            }
            for &f in &fanin {
                fanout_count[f as usize] += 1;
            }
            let id = sink.add_gate(kind, &fanin, NameTag::Gate(g_index))?;
            debug_assert_eq!(id, created);
            fanout_count.push(0);
            created += 1;
            non_inv += 1;
        }
        g_index += 1;
    }

    // Phase 2: collect sinks (nets without fanout, excluding pure inputs that
    // simply went unused) and reduce/expand them to exactly `comb_outputs`
    // observation points so every gate is in some output cone. Every id at or
    // past `comb_inputs` is a gate.
    let mut sinks: Vec<u32> = (comb_inputs as u32..created)
        .filter(|&n| fanout_count[n as usize] == 0)
        .collect();
    rng.shuffle(&mut sinks);
    // Merge surplus sinks pairwise with XOR compactors (keeps both cones
    // observable).
    let mut merge_idx = 0usize;
    while sinks.len() > comb_outputs {
        // Wide parity compactors: each gate absorbs up to 8 surplus sinks,
        // so the merge phase stays well inside the reserved gate budget.
        let take = (sinks.len() - comb_outputs + 1).clamp(2, 8);
        fanin.clear();
        for _ in 0..take {
            fanin.push(sinks.pop().expect("len > comb_outputs >= 1"));
        }
        let m = sink.add_gate(GateKind::Xor, &fanin, NameTag::Merge(merge_idx))?;
        created += 1;
        merge_idx += 1;
        non_inv += 1;
        sinks.push(m);
    }
    // If too few sinks, tap random internal nets as extra outputs. The
    // membership mask keeps the retry loop O(1) per draw at million-gate
    // sink counts.
    if sinks.len() < comb_outputs {
        let mut in_sinks = vec![false; created as usize];
        for &s in &sinks {
            in_sinks[s as usize] = true;
        }
        while sinks.len() < comb_outputs {
            let pick = rng.below_usize(created as usize) as u32;
            if !in_sinks[pick as usize] {
                in_sinks[pick as usize] = true;
                sinks.push(pick);
            }
        }
    }

    // Top-up: extend random sinks with fresh gates until the non-inverter
    // gate count exactly matches the profile. Replacing a sink by a gate
    // that reads it keeps every cone observable and the sink count constant.
    let mut topup_idx = 0usize;
    while non_inv < profile.gates {
        let i = rng.below_usize(sinks.len());
        let s = sinks[i];
        let mut partner = rng.below_usize(created as usize) as u32;
        if partner == s {
            partner = rng.below_usize(created as usize) as u32;
        }
        let (kind, pair) = if partner == s {
            (GateKind::Nand, [s, 0u32])
        } else {
            (pick_kind(&mut rng), [s, partner])
        };
        let m = sink.add_gate(kind, &pair, NameTag::Ext(topup_idx))?;
        created += 1;
        topup_idx += 1;
        non_inv += 1;
        sinks[i] = m;
    }

    // Phase 3 (the interface assignment) is sink-specific; hand back the
    // shuffled observation points.
    rng.shuffle(&mut sinks);
    Ok(SynthPlan {
        comb_inputs,
        dffs: profile.dffs,
        sinks,
    })
}

/// Synthesizes a random circuit matching `profile`.
///
/// The generated DAG has:
/// - every gate reachable from some combinational output (full
///   observability, so ATPG coverage is meaningful),
/// - a locality-biased fanin distribution that yields realistic logic depth
///   (tens of levels at the paper's circuit sizes),
/// - `profile.gates` non-inverter gates (±0, inverters added on top).
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the profile has no combinational inputs
/// or outputs, or too few gates to cover its outputs.
pub fn synthesize(profile: &Profile) -> Result<Circuit, Error> {
    let mut sink = CircuitSink {
        c: Circuit::new(profile.name.clone()),
    };
    let plan = synthesize_core(profile, &mut sink)?;
    let mut c = sink.c;

    // Phase 3: assign observation points to POs and FF D-inputs.
    for i in 0..plan.dffs {
        let q = NetId::from_index(profile.primary_inputs + i);
        let d = NetId::from_index(plan.sinks[i] as usize);
        c.convert_input_to_dff(q, d).expect("q is an input");
    }
    for &s in plan.sinks.iter().skip(plan.dffs) {
        c.mark_output(NetId::from_index(s as usize));
    }

    c.validate()?;
    Ok(c)
}

/// Synthesizes the *same* circuit as [`synthesize`] (same profile, same RNG
/// stream, same dense net ids) directly into a [`CompiledCircuit`], without
/// materializing names, flip-flop records or per-gate fanin `Vec`s.
///
/// The combinational interface matches [`Circuit::comb_inputs`] /
/// [`Circuit::comb_outputs`] of the [`synthesize`] output: inputs are
/// primary inputs then flip-flop outputs (which is the dense id range
/// `0..pi+ff`), outputs are primary outputs then flip-flop D-inputs.
///
/// This is the million-gate path: peak memory is the compiled artifact
/// itself plus O(nets) `u32` bookkeeping.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] under the same conditions as
/// [`synthesize`].
pub fn synthesize_compiled(profile: &Profile) -> Result<CompiledCircuit, Error> {
    let mut sink = StreamSink {
        b: StreamBuilder::new(),
    };
    let plan = synthesize_core(profile, &mut sink)?;
    let inputs: Vec<u32> = (0..plan.comb_inputs as u32).collect();
    // POs first, FF D-inputs second — the comb_outputs() ordering.
    let outputs: Vec<u32> = plan.sinks[plan.dffs..]
        .iter()
        .chain(&plan.sinks[..plan.dffs])
        .copied()
        .collect();
    sink.b.finish(inputs, outputs)
}

/// Generates a small random *combinational* circuit — handy for attack
/// experiments where the SAT attack must stay tractable.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] under the same conditions as
/// [`synthesize`].
pub fn random_comb(
    seed: u64,
    inputs: usize,
    outputs: usize,
    gates: usize,
) -> Result<Circuit, Error> {
    synthesize(&Profile {
        name: format!("rand_{inputs}x{outputs}_{gates}_s{seed}"),
        primary_inputs: inputs,
        primary_outputs: outputs,
        dffs: 0,
        gates,
        inverter_percent: 10,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitStats, CompiledCircuit, TransitiveFanin};

    #[test]
    fn tiny_input_profiles_terminate() {
        // Regression: with < 3 combinational inputs the DAG starts with a
        // net pool too small for a 3-input gate's distinct fanins, and the
        // fanin picker used to rejection-sample forever. This exact profile
        // hung before the pool-exhaustion escape was added.
        let c = random_comb(147_956_845_291_676, 2, 3, 70).unwrap();
        c.validate().unwrap();
        let c1 = random_comb(9, 1, 2, 40).unwrap();
        c1.validate().unwrap();
    }

    #[test]
    fn profiles_match_paper_interface() {
        // Comb-output counts must equal Table I column 3.
        let expect = [
            (BenchmarkId::S38417, 1742),
            (BenchmarkId::S38584, 1730),
            (BenchmarkId::B17, 1512),
            (BenchmarkId::B18, 3343),
            (BenchmarkId::B19, 6672),
            (BenchmarkId::B20, 512),
            (BenchmarkId::B21, 512),
            (BenchmarkId::B22, 757),
        ];
        for (id, outs) in expect {
            let p = profile(id);
            assert_eq!(p.primary_outputs + p.dffs, outs, "{id}");
        }
    }

    #[test]
    fn gate_counts_match_table1() {
        let expect = [
            (BenchmarkId::S38417, 8709),
            (BenchmarkId::S38584, 11448),
            (BenchmarkId::B17, 29267),
            (BenchmarkId::B18, 97569),
            (BenchmarkId::B19, 196855),
            (BenchmarkId::B20, 17648),
            (BenchmarkId::B21, 17972),
            (BenchmarkId::B22, 26195),
        ];
        for (id, gates) in expect {
            assert_eq!(profile(id).gates, gates, "{id}");
        }
    }

    #[test]
    fn synthesize_small_profile() {
        let p = profile(BenchmarkId::B20).scaled(0.02);
        let c = synthesize(&p).unwrap();
        c.validate().unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.dffs, p.dffs);
        assert_eq!(s.primary_inputs, p.primary_inputs);
        assert_eq!(s.primary_outputs, p.primary_outputs);
        // The top-up phase makes the non-inverter gate count exact.
        assert_eq!(s.gates_excluding_inverters, p.gates);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile(BenchmarkId::S38417).scaled(0.01);
        let a = synthesize(&p).unwrap();
        let b = synthesize(&p).unwrap();
        assert_eq!(crate::bench::write(&a), crate::bench::write(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = profile(BenchmarkId::B20).scaled(0.01);
        let a = synthesize(&p).unwrap();
        p.seed ^= 1;
        let b = synthesize(&p).unwrap();
        assert_ne!(crate::bench::write(&a), crate::bench::write(&b));
    }

    #[test]
    fn every_gate_is_observable() {
        let p = profile(BenchmarkId::B21).scaled(0.02);
        let c = synthesize(&p).unwrap();
        let cone = TransitiveFanin::of(&c, c.comb_outputs());
        for id in c.net_ids() {
            if c.gate(id).is_some() {
                assert!(cone.contains(id), "gate {} unobservable", c.net(id).name());
            }
        }
    }

    #[test]
    fn has_reasonable_depth() {
        let p = profile(BenchmarkId::B20).scaled(0.05);
        let c = synthesize(&p).unwrap();
        let s = CircuitStats::of(&c);
        assert!(s.depth >= 8, "depth {} too shallow to be realistic", s.depth);
    }

    #[test]
    fn random_comb_shape() {
        let c = random_comb(5, 16, 8, 300).unwrap();
        assert_eq!(c.primary_inputs().len(), 16);
        assert_eq!(c.primary_outputs().len(), 8);
        assert_eq!(c.dffs().len(), 0);
    }

    #[test]
    fn bad_profiles_rejected() {
        assert!(random_comb(0, 0, 2, 10).is_err());
        assert!(random_comb(0, 2, 0, 10).is_err());
        assert!(random_comb(0, 2, 2, 1).is_err());
    }

    #[test]
    fn full_b19_profile_synthesizes() {
        // The largest benchmark at 5% scale still has ~10k gates; make sure
        // generation stays fast and valid at that size.
        let p = profile(BenchmarkId::B19).scaled(0.05);
        let c = synthesize(&p).unwrap();
        assert!(c.num_gates_excluding_inverters() >= 9000);
    }

    #[test]
    fn scaled_to_gates_hits_exact_count() {
        let p = profile(BenchmarkId::B18).scaled_to_gates(10_000);
        assert_eq!(p.gates, 10_000);
        assert!(p.name.contains("@10000g"));
        let c = synthesize(&p).unwrap();
        assert_eq!(c.num_gates_excluding_inverters(), 10_000);
        // Interface scales with the gate factor.
        assert!(p.dffs < profile(BenchmarkId::B18).dffs);
    }

    /// The tentpole equivalence: the streamed path must produce the same
    /// compiled artifact as compiling the [`synthesize`] output — same
    /// kinds, fanins, levels, fanout sets, interface views and full-sweep
    /// values. (Topological *order* may differ: Kahn vs identity.)
    #[test]
    fn synthesize_compiled_matches_circuit_path() {
        for id in [BenchmarkId::S38417, BenchmarkId::B20] {
            let p = profile(id).scaled(0.02);
            let via_circuit = CompiledCircuit::compile(&synthesize(&p).unwrap()).unwrap();
            let via_stream = synthesize_compiled(&p).unwrap();

            assert_eq!(via_stream.num_nets(), via_circuit.num_nets(), "{id}");
            assert_eq!(via_stream.depth(), via_circuit.depth(), "{id}");
            assert_eq!(via_stream.inputs(), via_circuit.inputs(), "{id}");
            assert_eq!(via_stream.outputs(), via_circuit.outputs(), "{id}");
            for n in 0..via_circuit.num_nets() as u32 {
                assert_eq!(via_stream.kind_of(n), via_circuit.kind_of(n));
                assert_eq!(via_stream.fanin(n), via_circuit.fanin(n));
                assert_eq!(via_stream.level_of(n), via_circuit.level_of(n));
                let mut sf = via_stream.fanout(n).to_vec();
                let mut cf = via_circuit.fanout(n).to_vec();
                sf.sort_unstable();
                cf.sort_unstable();
                assert_eq!(sf, cf);
            }

            let mut rng = SplitMix64::new(7);
            let words: Vec<u64> =
                (0..via_circuit.inputs().len()).map(|_| rng.next_u64()).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            via_stream.eval_full_into(&words, &mut a);
            via_circuit.eval_full_into(&words, &mut b);
            assert_eq!(a, b, "{id}");
        }
    }
}
