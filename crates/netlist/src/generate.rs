//! Deterministic synthetic benchmark generation.
//!
//! The paper evaluates on the largest ISCAS'89 (s38417, s38584) and ITC'99
//! (b17–b22) circuits. Those netlists cannot be redistributed here, so this
//! module generates *profile-matched* stand-ins: random combinational DAGs
//! with the same primary-input/primary-output/flip-flop interface and the
//! same gate count (excluding inverters) as the published circuits. The
//! experiments of the paper measure statistical properties — Hamming
//! distance under random keys, ATPG fault coverage, relative area/delay
//! overhead after resynthesis — which depend on circuit scale and shape, not
//! on the exact boolean functions, so the trends are preserved (see
//! DESIGN.md §3).
//!
//! Generation is fully deterministic: a given [`Profile`] (including its
//! seed) always yields the identical circuit, on any platform.
//!
//! # Example
//!
//! ```
//! use netlist::generate::{self, BenchmarkId};
//!
//! let profile = generate::profile(BenchmarkId::B20).scaled(0.01);
//! let circuit = generate::synthesize(&profile).expect("profile is valid");
//! assert_eq!(circuit.dffs().len(), profile.dffs);
//! ```

use crate::rng::SplitMix64;
use crate::{Circuit, Error, GateKind, NetId};

/// The benchmark circuits evaluated in the paper (Tables I and II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchmarkId {
    /// ISCAS'89 s38417.
    S38417,
    /// ISCAS'89 s38584.
    S38584,
    /// ITC'99 b17.
    B17,
    /// ITC'99 b18.
    B18,
    /// ITC'99 b19.
    B19,
    /// ITC'99 b20.
    B20,
    /// ITC'99 b21.
    B21,
    /// ITC'99 b22.
    B22,
}

impl BenchmarkId {
    /// All paper benchmarks in Table I row order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::S38417,
        BenchmarkId::S38584,
        BenchmarkId::B17,
        BenchmarkId::B18,
        BenchmarkId::B19,
        BenchmarkId::B20,
        BenchmarkId::B21,
        BenchmarkId::B22,
    ];

    /// Lower-case circuit name as printed in the paper.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchmarkId::S38417 => "s38417",
            BenchmarkId::S38584 => "s38584",
            BenchmarkId::B17 => "b17",
            BenchmarkId::B18 => "b18",
            BenchmarkId::B19 => "b19",
            BenchmarkId::B20 => "b20",
            BenchmarkId::B21 => "b21",
            BenchmarkId::B22 => "b22",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Size profile of a circuit to synthesize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Circuit name.
    pub name: String,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Flip-flops (their outputs become pseudo primary inputs of the
    /// combinational part, their inputs pseudo primary outputs).
    pub dffs: usize,
    /// Target gate count excluding inverters (the paper's "# Gates").
    pub gates: usize,
    /// Fraction of extra inverters to sprinkle in, in percent of `gates`.
    pub inverter_percent: usize,
    /// PRNG seed; part of the circuit's identity.
    pub seed: u64,
}

impl Profile {
    /// Returns a scaled-down copy (for quick test runs): gate count, outputs
    /// and flip-flops are multiplied by `factor`, with floors keeping the
    /// circuit well-formed.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Profile {
        let s = |v: usize, min: usize| ((v as f64 * factor) as usize).max(min);
        Profile {
            name: format!("{}@{factor}", self.name),
            primary_inputs: s(self.primary_inputs, 4),
            primary_outputs: s(self.primary_outputs, 2),
            dffs: s(self.dffs, 2),
            gates: s(self.gates, 16),
            inverter_percent: self.inverter_percent,
            seed: self.seed,
        }
    }
}

/// Returns the published interface profile of one of the paper's benchmark
/// circuits (gate counts from Table I; PI/PO/FF counts from the ISCAS'89 and
/// ITC'99 suite documentation).
pub fn profile(id: BenchmarkId) -> Profile {
    let (pi, po, ff, gates) = match id {
        BenchmarkId::S38417 => (28, 106, 1636, 8709),
        BenchmarkId::S38584 => (38, 304, 1426, 11448),
        BenchmarkId::B17 => (37, 97, 1415, 29267),
        BenchmarkId::B18 => (37, 23, 3320, 97569),
        BenchmarkId::B19 => (24, 30, 6642, 196855),
        BenchmarkId::B20 => (32, 22, 490, 17648),
        BenchmarkId::B21 => (32, 22, 490, 17972),
        BenchmarkId::B22 => (32, 22, 735, 26195),
    };
    Profile {
        name: id.as_str().to_owned(),
        primary_inputs: pi,
        primary_outputs: po,
        dffs: ff,
        gates,
        inverter_percent: 12,
        // Distinct seeds per benchmark so b20 and b21 (same interface) differ.
        seed: 0x0DA7_E200 ^ (id as u64).wrapping_mul(0x9E37_79B9),
    }
}

/// Weighted gate-kind distribution typical of technology-mapped control
/// logic (NAND/NOR-rich, some XOR).
fn pick_kind(rng: &mut SplitMix64) -> GateKind {
    match rng.below(100) {
        0..=29 => GateKind::Nand,
        30..=49 => GateKind::Nor,
        50..=64 => GateKind::And,
        65..=79 => GateKind::Or,
        80..=89 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Synthesizes a random circuit matching `profile`.
///
/// The generated DAG has:
/// - every gate reachable from some combinational output (full
///   observability, so ATPG coverage is meaningful),
/// - a locality-biased fanin distribution that yields realistic logic depth
///   (tens of levels at the paper's circuit sizes),
/// - `profile.gates` non-inverter gates (±0, inverters added on top).
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the profile has no combinational inputs
/// or outputs, or too few gates to cover its outputs.
pub fn synthesize(profile: &Profile) -> Result<Circuit, Error> {
    let comb_inputs = profile.primary_inputs + profile.dffs;
    let comb_outputs = profile.primary_outputs + profile.dffs;
    if comb_inputs == 0 {
        return Err(Error::BadProfile("no combinational inputs".into()));
    }
    if comb_outputs == 0 {
        return Err(Error::BadProfile("no combinational outputs".into()));
    }
    if profile.gates < 2 {
        return Err(Error::BadProfile("need at least 2 gates".into()));
    }

    let mut rng = SplitMix64::new(profile.seed);
    let mut c = Circuit::new(profile.name.clone());

    let pis: Vec<NetId> = (0..profile.primary_inputs)
        .map(|i| c.add_input(format!("pi{i}")))
        .collect();
    let qs: Vec<NetId> = (0..profile.dffs)
        .map(|i| c.add_input(format!("ff{i}")))
        .collect();

    // Phase 1: grow the random DAG. `recent` keeps a sliding window of the
    // last nets so that fanins are biased towards fresh logic, which produces
    // depth instead of a two-level soup.
    const WINDOW: usize = 96;
    let mut all: Vec<NetId> = pis.iter().chain(qs.iter()).copied().collect();
    let mut fanout_count = vec![0u32; comb_inputs];
    let pick_fanin = |rng: &mut SplitMix64, all: &[NetId]| -> NetId {
        if all.len() > WINDOW && rng.chance(55, 100) {
            all[all.len() - WINDOW + rng.below_usize(WINDOW)]
        } else {
            all[rng.below_usize(all.len())]
        }
    };

    if comb_outputs > comb_inputs + profile.gates {
        return Err(Error::BadProfile(
            "more outputs than nets to observe".into(),
        ));
    }

    // Reserve budget for the sink-combining and top-up phases; the final
    // non-inverter gate count is made exact below.
    let reserve = (profile.gates / 8).max(2);
    let grow = profile.gates.saturating_sub(reserve).max(2);
    let mut non_inv = 0usize;
    let mut inverters_wanted = profile.gates * profile.inverter_percent / 100;
    let mut g_index = 0usize;
    while non_inv < grow {
        if inverters_wanted > 0 && rng.chance(profile.inverter_percent as u64, 100) {
            let f = pick_fanin(&mut rng, &all);
            let id = c
                .add_gate(GateKind::Not, vec![f], format!("inv{g_index}"))
                .expect("arity 1 valid for NOT");
            fanout_count[f.index()] += 1;
            fanout_count.push(0);
            all.push(id);
            inverters_wanted -= 1;
        } else {
            let kind = pick_kind(&mut rng);
            let arity = if rng.chance(1, 5) { 3 } else { 2 };
            let mut fanin = Vec::with_capacity(arity);
            while fanin.len() < arity {
                let f = pick_fanin(&mut rng, &all);
                // Distinct fanins are preferred, but a tiny net pool (1-2
                // combinational inputs before any gates exist) cannot supply
                // `arity` distinct nets — accept a repeat rather than
                // rejection-sample forever.
                if !fanin.contains(&f) || fanin.len() >= all.len() {
                    fanin.push(f);
                }
            }
            for &f in &fanin {
                fanout_count[f.index()] += 1;
            }
            let id = c
                .add_gate(kind, fanin, format!("g{g_index}"))
                .expect("arity >=2 valid");
            fanout_count.push(0);
            all.push(id);
            non_inv += 1;
        }
        g_index += 1;
    }

    // Phase 2: collect sinks (nets without fanout, excluding pure inputs that
    // simply went unused) and reduce/expand them to exactly `comb_outputs`
    // observation points so every gate is in some output cone.
    let mut sinks: Vec<NetId> = all
        .iter()
        .copied()
        .filter(|n| fanout_count[n.index()] == 0 && c.gate(*n).is_some())
        .collect();
    rng.shuffle(&mut sinks);
    // Merge surplus sinks pairwise with XOR compactors (keeps both cones
    // observable).
    let mut merge_idx = 0usize;
    while sinks.len() > comb_outputs {
        // Wide parity compactors: each gate absorbs up to 8 surplus sinks,
        // so the merge phase stays well inside the reserved gate budget.
        let take = (sinks.len() - comb_outputs + 1).clamp(2, 8);
        let fanin: Vec<NetId> = (0..take)
            .map(|_| sinks.pop().expect("len > comb_outputs >= 1"))
            .collect();
        let m = c
            .add_gate(GateKind::Xor, fanin, format!("merge{merge_idx}"))
            .expect("XOR arity >=2");
        merge_idx += 1;
        non_inv += 1;
        all.push(m);
        sinks.push(m);
    }
    // If too few sinks, tap random internal nets as extra outputs.
    while sinks.len() < comb_outputs {
        let pick = all[rng.below_usize(all.len())];
        if !sinks.contains(&pick) {
            sinks.push(pick);
        }
    }

    // Top-up: extend random sinks with fresh gates until the non-inverter
    // gate count exactly matches the profile. Replacing a sink by a gate
    // that reads it keeps every cone observable and the sink count constant.
    let mut topup_idx = 0usize;
    while non_inv < profile.gates {
        let i = rng.below_usize(sinks.len());
        let s = sinks[i];
        let mut partner = all[rng.below_usize(all.len())];
        if partner == s {
            partner = all[rng.below_usize(all.len())];
        }
        let (kind, fanin) = if partner == s {
            (GateKind::Nand, vec![s, all[0]])
        } else {
            (pick_kind(&mut rng), vec![s, partner])
        };
        let m = c
            .add_gate(kind, fanin, format!("ext{topup_idx}"))
            .expect("arity 2 valid");
        topup_idx += 1;
        non_inv += 1;
        all.push(m);
        sinks[i] = m;
    }

    // Phase 3: assign observation points to POs and FF D-inputs.
    rng.shuffle(&mut sinks);
    for (i, &q) in qs.iter().enumerate() {
        c.convert_input_to_dff(q, sinks[i]).expect("q is an input");
    }
    for &s in sinks.iter().skip(qs.len()) {
        c.mark_output(s);
    }

    c.validate()?;
    Ok(c)
}

/// Generates a small random *combinational* circuit — handy for attack
/// experiments where the SAT attack must stay tractable.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] under the same conditions as
/// [`synthesize`].
pub fn random_comb(
    seed: u64,
    inputs: usize,
    outputs: usize,
    gates: usize,
) -> Result<Circuit, Error> {
    synthesize(&Profile {
        name: format!("rand_{inputs}x{outputs}_{gates}_s{seed}"),
        primary_inputs: inputs,
        primary_outputs: outputs,
        dffs: 0,
        gates,
        inverter_percent: 10,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitStats, TransitiveFanin};

    #[test]
    fn tiny_input_profiles_terminate() {
        // Regression: with < 3 combinational inputs the DAG starts with a
        // net pool too small for a 3-input gate's distinct fanins, and the
        // fanin picker used to rejection-sample forever. This exact profile
        // hung before the pool-exhaustion escape was added.
        let c = random_comb(147_956_845_291_676, 2, 3, 70).unwrap();
        c.validate().unwrap();
        let c1 = random_comb(9, 1, 2, 40).unwrap();
        c1.validate().unwrap();
    }

    #[test]
    fn profiles_match_paper_interface() {
        // Comb-output counts must equal Table I column 3.
        let expect = [
            (BenchmarkId::S38417, 1742),
            (BenchmarkId::S38584, 1730),
            (BenchmarkId::B17, 1512),
            (BenchmarkId::B18, 3343),
            (BenchmarkId::B19, 6672),
            (BenchmarkId::B20, 512),
            (BenchmarkId::B21, 512),
            (BenchmarkId::B22, 757),
        ];
        for (id, outs) in expect {
            let p = profile(id);
            assert_eq!(p.primary_outputs + p.dffs, outs, "{id}");
        }
    }

    #[test]
    fn gate_counts_match_table1() {
        let expect = [
            (BenchmarkId::S38417, 8709),
            (BenchmarkId::S38584, 11448),
            (BenchmarkId::B17, 29267),
            (BenchmarkId::B18, 97569),
            (BenchmarkId::B19, 196855),
            (BenchmarkId::B20, 17648),
            (BenchmarkId::B21, 17972),
            (BenchmarkId::B22, 26195),
        ];
        for (id, gates) in expect {
            assert_eq!(profile(id).gates, gates, "{id}");
        }
    }

    #[test]
    fn synthesize_small_profile() {
        let p = profile(BenchmarkId::B20).scaled(0.02);
        let c = synthesize(&p).unwrap();
        c.validate().unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.dffs, p.dffs);
        assert_eq!(s.primary_inputs, p.primary_inputs);
        assert_eq!(s.primary_outputs, p.primary_outputs);
        // The top-up phase makes the non-inverter gate count exact.
        assert_eq!(s.gates_excluding_inverters, p.gates);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile(BenchmarkId::S38417).scaled(0.01);
        let a = synthesize(&p).unwrap();
        let b = synthesize(&p).unwrap();
        assert_eq!(crate::bench::write(&a), crate::bench::write(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = profile(BenchmarkId::B20).scaled(0.01);
        let a = synthesize(&p).unwrap();
        p.seed ^= 1;
        let b = synthesize(&p).unwrap();
        assert_ne!(crate::bench::write(&a), crate::bench::write(&b));
    }

    #[test]
    fn every_gate_is_observable() {
        let p = profile(BenchmarkId::B21).scaled(0.02);
        let c = synthesize(&p).unwrap();
        let cone = TransitiveFanin::of(&c, c.comb_outputs());
        for id in c.net_ids() {
            if c.gate(id).is_some() {
                assert!(cone.contains(id), "gate {} unobservable", c.net(id).name());
            }
        }
    }

    #[test]
    fn has_reasonable_depth() {
        let p = profile(BenchmarkId::B20).scaled(0.05);
        let c = synthesize(&p).unwrap();
        let s = CircuitStats::of(&c);
        assert!(s.depth >= 8, "depth {} too shallow to be realistic", s.depth);
    }

    #[test]
    fn random_comb_shape() {
        let c = random_comb(5, 16, 8, 300).unwrap();
        assert_eq!(c.primary_inputs().len(), 16);
        assert_eq!(c.primary_outputs().len(), 8);
        assert_eq!(c.dffs().len(), 0);
    }

    #[test]
    fn bad_profiles_rejected() {
        assert!(random_comb(0, 0, 2, 10).is_err());
        assert!(random_comb(0, 2, 0, 10).is_err());
        assert!(random_comb(0, 2, 2, 1).is_err());
    }

    #[test]
    fn full_b19_profile_synthesizes() {
        // The largest benchmark at 5% scale still has ~10k gates; make sure
        // generation stays fast and valid at that size.
        let p = profile(BenchmarkId::B19).scaled(0.05);
        let c = synthesize(&p).unwrap();
        assert!(c.num_gates_excluding_inverters() >= 9000);
    }
}
