//! The compiled-netlist engine: one cache-friendly artifact shared by every
//! evaluation layer (simulation, fault simulation, ATPG, CNF encoding,
//! locking heuristics).
//!
//! [`CompiledCircuit::compile`] lowers a [`Circuit`] exactly once into flat
//! CSR adjacency (fanin *and* fanout as `u32` pools with offset tables — no
//! `Vec<Vec<u32>>`), per-net gate kinds, the cached [`Levelization`] with
//! dense topological ranks, and the combinational input/output views. The
//! [`StreamBuilder`](crate::stream::StreamBuilder) produces the same
//! artifact without ever materializing a [`Circuit`], which is how
//! million-gate synthetic circuits are compiled with bounded memory.
//!
//! Two evaluation kernels run over the artifact:
//!
//! - the **full sweep** ([`CompiledCircuit::eval_full_into`]): the classic
//!   64-pattern word-parallel pass, driven by a *rank-major* copy of the
//!   gate kinds and fanin windows (`sweep_*` arrays) so the hot loop reads
//!   its schedule sequentially instead of chasing the order permutation;
//! - the **incremental kernel** ([`EvalScratch::propagate`]): an
//!   event-driven update that re-evaluates only the cone disturbed by a
//!   single net change, using a [`LevelQueue`] (per-level FIFO buckets with
//!   a min-heap over the non-empty levels — O(1) pushes, no per-event
//!   tuple comparisons) and reusable scratch buffers, with an undo log
//!   ([`EvalScratch::revert`]) so a rejected change costs the same as the
//!   cone it touched.
//!
//! The artifact also carries a per-net **cone mass** — a saturating
//! estimate of the downstream work a change at that net causes — which the
//! fault simulator uses to cut its fault list into balanced coarse chunks.
//!
//! Consumers share one artifact (typically behind `Arc<CompiledCircuit>`)
//! instead of privately re-levelizing the netlist; [`EngineCounters`]
//! records how much work each kernel did for benchmark telemetry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Circuit, Error, GateKind, Levelization, NetId};

/// Saturation cap for the per-net cone-mass estimate. Reconvergent fanout
/// makes the naive "1 + sum of fanout masses" recurrence overcount
/// exponentially; capping keeps the estimate a useful *relative* work
/// weight without overflow.
const CONE_MASS_CAP: u32 = 1 << 20;

/// Work counters of the two evaluation kernels, exported as benchmark
/// telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Full word-parallel sweeps executed.
    pub full_evals: u64,
    /// Incremental propagations started (one per forced net change).
    pub incremental_props: u64,
    /// Events processed by the incremental kernel (nets re-evaluated).
    pub events: u64,
}

impl EngineCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.full_evals += other.full_evals;
        self.incremental_props += other.incremental_props;
        self.events += other.events;
    }
}

/// A [`Circuit`] lowered into flat, evaluation-ready form.
///
/// The artifact is immutable after [`compile`](CompiledCircuit::compile) and
/// freely shareable across threads; per-evaluation state lives in
/// [`EvalScratch`] (or in the consumer's own buffers).
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    num_nets: usize,
    /// Gate kind per net; `None` for undriven nets (inputs).
    kinds: Vec<Option<GateKind>>,
    /// CSR fanin: `fanin_pool[fanin_start[n]..fanin_start[n+1]]`.
    fanin_pool: Vec<u32>,
    fanin_start: Vec<u32>,
    /// CSR fanout: `fanout_pool[fanout_start[n]..fanout_start[n+1]]`.
    fanout_pool: Vec<u32>,
    fanout_start: Vec<u32>,
    /// The levelization, built exactly once per artifact.
    lv: Levelization,
    /// Dense topological rank per net (position in `lv.order()`).
    rank: Vec<u32>,
    /// Dense logic level per net (copy of the levelization's levels, kept
    /// next to the kernels that index it per event).
    level: Vec<u32>,
    /// Maximum level over all nets; sizes the kernels' level buckets.
    depth: u32,
    /// Saturating downstream-cone work estimate per net (see
    /// [`cone_mass`](CompiledCircuit::cone_mass)).
    cone_mass: Vec<u32>,
    /// Rank-major sweep view: driven nets in topological order with their
    /// kinds and fanin windows copied into dense arrays, so the full sweep
    /// streams its schedule from memory instead of permuting through
    /// `lv.order()`.
    sweep_net: Vec<u32>,
    sweep_kind: Vec<GateKind>,
    sweep_fanin_start: Vec<u32>,
    sweep_fanin_pool: Vec<u32>,
    /// Combinational inputs (primary inputs then flip-flop outputs).
    inputs: Vec<NetId>,
    /// Combinational outputs (primary outputs then flip-flop inputs).
    outputs: Vec<NetId>,
    /// Membership mask over `outputs` (a net may appear there twice; the
    /// mask is positional-duplicate-blind).
    output_mask: Vec<bool>,
    /// Wall-clock nanoseconds spent compiling, for telemetry.
    compile_ns: u64,
}

impl CompiledCircuit {
    /// Lowers `circuit` into the compiled artifact. This is the single
    /// place [`Levelization::build`] runs for all engine consumers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CombinationalCycle`] if the combinational part is
    /// cyclic.
    pub fn compile(circuit: &Circuit) -> Result<Self, Error> {
        let t0 = std::time::Instant::now();
        let lv = Levelization::build(circuit)?;
        let n = circuit.num_nets();

        let mut kinds = vec![None; n];
        let mut fanin_start = Vec::with_capacity(n + 1);
        let mut fanin_pool = Vec::new();
        fanin_start.push(0u32);
        for id in circuit.net_ids() {
            if let Some(g) = circuit.gate(id) {
                kinds[id.index()] = Some(g.kind);
                fanin_pool.extend(g.fanin.iter().map(|f| f.0));
            }
            fanin_start.push(fanin_pool.len() as u32);
        }

        let mut cc = Self::assemble(
            kinds,
            fanin_pool,
            fanin_start,
            lv,
            circuit.comb_inputs(),
            circuit.comb_outputs(),
        );
        cc.compile_ns = t0.elapsed().as_nanos() as u64;
        Ok(cc)
    }

    /// Shared finishing pass of the [`compile`](CompiledCircuit::compile)
    /// and streaming ([`crate::stream::StreamBuilder`]) paths: derives the
    /// fanout CSR (counting sort over the fanin pool — no per-net `Vec`),
    /// the dense rank/level arrays, the rank-major sweep view and the
    /// cone-mass estimates, each in O(V+E).
    pub(crate) fn assemble(
        kinds: Vec<Option<GateKind>>,
        fanin_pool: Vec<u32>,
        fanin_start: Vec<u32>,
        lv: Levelization,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> Self {
        let n = kinds.len();

        // Fanout CSR via counting sort over the fanin pool.
        let mut counts = vec![0u32; n];
        for &f in &fanin_pool {
            counts[f as usize] += 1;
        }
        let mut fanout_start = Vec::with_capacity(n + 1);
        fanout_start.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            fanout_start.push(acc);
        }
        let mut fanout_pool = vec![0u32; fanin_pool.len()];
        let mut cursor: Vec<u32> = fanout_start[..n].to_vec();
        for id in 0..n {
            let (s, e) = (fanin_start[id], fanin_start[id + 1]);
            for &f in &fanin_pool[s as usize..e as usize] {
                fanout_pool[cursor[f as usize] as usize] = id as u32;
                cursor[f as usize] += 1;
            }
        }

        let mut rank = vec![0u32; n];
        for (r, id) in lv.order().iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        let level = lv.levels().to_vec();
        let depth = lv.depth();

        let mut output_mask = vec![false; n];
        for o in &outputs {
            output_mask[o.index()] = true;
        }

        let (sweep_net, sweep_kind, sweep_fanin_start, sweep_fanin_pool) =
            Self::build_sweep(&kinds, &fanin_pool, &fanin_start, lv.order());

        // Cone mass: reverse-topological accumulation, saturating at the
        // cap. Undriven nets count too (a stem fault on an input has the
        // whole input cone as work).
        let mut cone_mass = vec![0u32; n];
        for id in lv.order().iter().rev() {
            let i = id.index();
            let mut m = 1u32;
            let (s, e) = (fanout_start[i] as usize, fanout_start[i + 1] as usize);
            for &f in &fanout_pool[s..e] {
                m = m.saturating_add(cone_mass[f as usize]);
            }
            cone_mass[i] = m.min(CONE_MASS_CAP);
        }

        CompiledCircuit {
            num_nets: n,
            kinds,
            fanin_pool,
            fanin_start,
            fanout_pool,
            fanout_start,
            lv,
            rank,
            level,
            depth,
            cone_mass,
            sweep_net,
            sweep_kind,
            sweep_fanin_start,
            sweep_fanin_pool,
            inputs,
            outputs,
            output_mask,
            compile_ns: 0,
        }
    }

    /// Builds the rank-major sweep arrays from the id-indexed CSR and a
    /// topological order.
    fn build_sweep(
        kinds: &[Option<GateKind>],
        fanin_pool: &[u32],
        fanin_start: &[u32],
        order: &[NetId],
    ) -> (Vec<u32>, Vec<GateKind>, Vec<u32>, Vec<u32>) {
        let gates = kinds.iter().filter(|k| k.is_some()).count();
        let mut sweep_net = Vec::with_capacity(gates);
        let mut sweep_kind = Vec::with_capacity(gates);
        let mut sweep_fanin_start = Vec::with_capacity(gates + 1);
        let mut sweep_fanin_pool = Vec::with_capacity(fanin_pool.len());
        sweep_fanin_start.push(0u32);
        for id in order {
            let i = id.index();
            let Some(kind) = kinds[i] else { continue };
            sweep_net.push(i as u32);
            sweep_kind.push(kind);
            let (s, e) = (fanin_start[i] as usize, fanin_start[i + 1] as usize);
            sweep_fanin_pool.extend_from_slice(&fanin_pool[s..e]);
            sweep_fanin_start.push(sweep_fanin_pool.len() as u32);
        }
        (sweep_net, sweep_kind, sweep_fanin_start, sweep_fanin_pool)
    }

    /// Records the wall-clock nanoseconds a construction path spent.
    pub(crate) fn set_compile_ns(&mut self, ns: u64) {
        self.compile_ns = ns;
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// The gate kind driving `net`, or `None` for undriven nets.
    #[inline]
    pub fn kind_of(&self, net: u32) -> Option<GateKind> {
        self.kinds[net as usize]
    }

    /// The fanin nets of `net`'s driving gate (empty for inputs).
    #[inline]
    pub fn fanin(&self, net: u32) -> &[u32] {
        &self.fanin_pool[self.fanin_start[net as usize] as usize
            ..self.fanin_start[net as usize + 1] as usize]
    }

    /// The nets whose driving gate reads `net`.
    #[inline]
    pub fn fanout(&self, net: u32) -> &[u32] {
        &self.fanout_pool[self.fanout_start[net as usize] as usize
            ..self.fanout_start[net as usize + 1] as usize]
    }

    /// Topological rank of `net` (its position in the cached order).
    #[inline]
    pub fn rank(&self, net: u32) -> u32 {
        self.rank[net as usize]
    }

    /// Logic level of `net` (inputs at 0, gates at `1 + max(fanin levels)`).
    #[inline]
    pub fn level_of(&self, net: u32) -> u32 {
        self.level[net as usize]
    }

    /// Maximum level over all nets.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Saturating estimate of the downstream work a change at `net` causes:
    /// `1 + sum of fanout cone masses`, capped. Reconvergence makes this an
    /// overcount, which is fine for its purpose — a *relative* weight for
    /// cutting fault lists into balanced simulation chunks.
    #[inline]
    pub fn cone_mass(&self, net: u32) -> u32 {
        self.cone_mass[net as usize]
    }

    /// Whether `net` is a combinational output (primary output or flip-flop
    /// input).
    #[inline]
    pub fn is_output(&self, net: u32) -> bool {
        self.output_mask[net as usize]
    }

    /// The cached levelization (order plus logic levels), built once at
    /// compile time.
    pub fn levelization(&self) -> &Levelization {
        &self.lv
    }

    /// The nets in topological order.
    pub fn order(&self) -> &[NetId] {
        self.lv.order()
    }

    /// The combinational inputs: primary inputs then flip-flop outputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The combinational outputs: primary outputs then flip-flop inputs.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Wall-clock nanoseconds spent in [`compile`](CompiledCircuit::compile)
    /// (or in a [`StreamBuilder`](crate::stream::StreamBuilder) finish).
    pub fn compile_ns(&self) -> u64 {
        self.compile_ns
    }

    // ------------------------------------------------------------------
    // Test-only mutation hooks (conformance mutation-kill harness).
    //
    // Each hook plants one deterministic semantic fault in the compiled
    // artifact so `crates/conformance` can verify the differential test
    // battery detects it. None of them are called by production code.
    // The hooks keep the id-indexed CSR and the rank-major sweep view
    // consistent with each other, so both kernels see the same fault.
    // ------------------------------------------------------------------

    /// Sweep-view position of `net`, if driven (test-only linear scan).
    fn sweep_pos(&self, net: u32) -> Option<usize> {
        self.sweep_net.iter().position(|&x| x == net)
    }

    /// Test-only mutation hook: replaces the gate kind of `net` with its
    /// dual (`And`↔`Or`, `Nand`↔`Nor`, `Xor`↔`Xnor`, `Not`↔`Buf`,
    /// `Const0`↔`Const1`). Returns `false` if `net` is undriven.
    pub fn mutate_flip_kind(&mut self, net: u32) -> bool {
        let Some(kind) = self.kinds[net as usize] else {
            return false;
        };
        let flipped = match kind {
            GateKind::And => GateKind::Or,
            GateKind::Or => GateKind::And,
            GateKind::Nand => GateKind::Nor,
            GateKind::Nor => GateKind::Nand,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Not => GateKind::Buf,
            GateKind::Buf => GateKind::Not,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
        };
        self.kinds[net as usize] = Some(flipped);
        let pos = self.sweep_pos(net).expect("driven net has a sweep slot");
        self.sweep_kind[pos] = flipped;
        true
    }

    /// Test-only mutation hook: rewires fanin pin `pin` of `net` to read
    /// `new_net` instead (a CSR cross-wiring fault; the fanout table is
    /// deliberately left stale). Returns `false` if the pin does not exist.
    pub fn mutate_set_fanin(&mut self, net: u32, pin: usize, new_net: u32) -> bool {
        let s = self.fanin_start[net as usize] as usize;
        let e = self.fanin_start[net as usize + 1] as usize;
        if pin >= e - s {
            return false;
        }
        self.fanin_pool[s + pin] = new_net;
        let pos = self.sweep_pos(net).expect("driven net has a sweep slot");
        let ss = self.sweep_fanin_start[pos] as usize;
        self.sweep_fanin_pool[ss + pin] = new_net;
        true
    }

    /// Test-only mutation hook: swaps positions `i` and `j` of the cached
    /// topological order *and* the dense rank array, then rebuilds the
    /// rank-major sweep view, so both kernels see the corrupted schedule
    /// consistently.
    pub fn mutate_swap_order(&mut self, i: usize, j: usize) {
        let a = self.lv.order()[i];
        let b = self.lv.order()[j];
        self.lv.mutate_swap_order_entries(i, j);
        self.rank[a.index()] = j as u32;
        self.rank[b.index()] = i as u32;
        let (sn, sk, sfs, sfp) =
            Self::build_sweep(&self.kinds, &self.fanin_pool, &self.fanin_start, self.lv.order());
        self.sweep_net = sn;
        self.sweep_kind = sk;
        self.sweep_fanin_start = sfs;
        self.sweep_fanin_pool = sfp;
    }

    /// Test-only mutation hook: clears the output-membership bit of `net`,
    /// so [`EvalScratch::propagate`] no longer reports differences on it.
    /// Returns `false` if `net` was not an output.
    pub fn mutate_clear_output_mask(&mut self, net: u32) -> bool {
        let was = self.output_mask[net as usize];
        self.output_mask[net as usize] = false;
        was
    }

    /// Test-only mutation hook: redirects fanout edge `k` of `net` to
    /// `new_target`, so the incremental kernel stops scheduling the real
    /// reader. Returns `false` if the edge does not exist.
    pub fn mutate_redirect_fanout(&mut self, net: u32, k: usize, new_target: u32) -> bool {
        let s = self.fanout_start[net as usize] as usize;
        let e = self.fanout_start[net as usize + 1] as usize;
        if k >= e - s {
            return false;
        }
        self.fanout_pool[s + k] = new_target;
        true
    }

    /// Test-only mutation hook: skews the CSR fanin window of `net` one
    /// slot forward — the classic streaming-compile off-by-one where a
    /// start offset is pushed one gate late, so the gate silently loses its
    /// first fanin. Applied to both the id-indexed CSR and the sweep view.
    /// Returns `false` if `net` has no fanin to lose.
    pub fn mutate_skew_fanin_start(&mut self, net: u32) -> bool {
        let s = self.fanin_start[net as usize];
        let e = self.fanin_start[net as usize + 1];
        if e <= s {
            return false;
        }
        self.fanin_start[net as usize] = s + 1;
        let pos = self.sweep_pos(net).expect("driven net has a sweep slot");
        self.sweep_fanin_start[pos] += 1;
        true
    }

    /// Evaluates one gate function over 64-pattern words drawn from
    /// `values` at the `fanin` indices.
    #[inline]
    pub fn eval_gate(kind: GateKind, fanin: &[u32], values: &[u64]) -> u64 {
        Self::fold(kind, fanin.iter().map(|&x| values[x as usize]))
    }

    /// Like [`eval_gate`](CompiledCircuit::eval_gate) but with fanin
    /// position `pin` forced to `forced` — the gate-input-pin fault case,
    /// evaluated without any temporary allocation.
    #[inline]
    pub fn eval_gate_with_pin(
        kind: GateKind,
        fanin: &[u32],
        values: &[u64],
        pin: usize,
        forced: u64,
    ) -> u64 {
        Self::fold(
            kind,
            fanin
                .iter()
                .enumerate()
                .map(|(i, &x)| if i == pin { forced } else { values[x as usize] }),
        )
    }

    #[inline]
    fn fold(kind: GateKind, mut vals: impl Iterator<Item = u64>) -> u64 {
        match kind {
            GateKind::And => vals.fold(!0u64, |a, x| a & x),
            GateKind::Nand => !vals.fold(!0u64, |a, x| a & x),
            GateKind::Or => vals.fold(0u64, |a, x| a | x),
            GateKind::Nor => !vals.fold(0u64, |a, x| a | x),
            GateKind::Xor => vals.fold(0u64, |a, x| a ^ x),
            GateKind::Xnor => !vals.fold(0u64, |a, x| a ^ x),
            GateKind::Not => !vals.next().expect("NOT takes one fanin"),
            GateKind::Buf => vals.next().expect("BUFF takes one fanin"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
        }
    }

    /// The full-sweep kernel: evaluates the whole circuit word-parallel
    /// (one pattern per bit) into `values`, which is resized to
    /// [`num_nets`](CompiledCircuit::num_nets). The walk streams the
    /// rank-major sweep arrays — kinds and fanin windows are read
    /// sequentially from memory.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn eval_full_into(&self, input_words: &[u64], values: &mut Vec<u64>) {
        assert_eq!(
            input_words.len(),
            self.inputs.len(),
            "expected {} input words",
            self.inputs.len()
        );
        values.clear();
        values.resize(self.num_nets, 0);
        for (net, &w) in self.inputs.iter().zip(input_words) {
            values[net.index()] = w;
        }
        for (s, (&net, &kind)) in self.sweep_net.iter().zip(&self.sweep_kind).enumerate() {
            let fanin = &self.sweep_fanin_pool
                [self.sweep_fanin_start[s] as usize..self.sweep_fanin_start[s + 1] as usize];
            values[net as usize] = Self::eval_gate(kind, fanin, values);
        }
    }
}

/// A level-indexed event queue: one FIFO bucket per logic level plus a
/// min-heap over the currently non-empty levels.
///
/// Pushing is O(1) amortized (heap pushes happen once per *level
/// activation*, not per event); popping drains levels in ascending order
/// and each bucket in insertion order. The buckets persist across
/// propagations — this is the arena the incremental kernels reuse instead
/// of a `BinaryHeap<(rank, net)>` whose per-event tuple comparisons
/// dominate at scale.
#[derive(Debug, Clone)]
pub struct LevelQueue {
    buckets: Vec<Vec<u32>>,
    /// Per-level cursor into the bucket (FIFO without draining the `Vec`).
    heads: Vec<u32>,
    /// Levels with unread events, deduplicated by `active_mask`.
    active: BinaryHeap<Reverse<u32>>,
    active_mask: Vec<bool>,
}

impl LevelQueue {
    /// Creates a queue for levels `0..=depth`.
    pub fn new(depth: u32) -> Self {
        let n = depth as usize + 1;
        LevelQueue {
            buckets: vec![Vec::new(); n],
            heads: vec![0; n],
            active: BinaryHeap::new(),
            active_mask: vec![false; n],
        }
    }

    /// Enqueues `net` at `level`.
    #[inline]
    pub fn push(&mut self, level: u32, net: u32) {
        let l = level as usize;
        self.buckets[l].push(net);
        if !self.active_mask[l] {
            self.active_mask[l] = true;
            self.active.push(Reverse(level));
        }
    }

    /// Dequeues the next net: lowest level first, insertion order within a
    /// level.
    #[inline]
    pub fn pop(&mut self) -> Option<u32> {
        loop {
            let &Reverse(level) = self.active.peek()?;
            let l = level as usize;
            let h = self.heads[l] as usize;
            if h < self.buckets[l].len() {
                self.heads[l] = h as u32 + 1;
                return Some(self.buckets[l][h]);
            }
            self.buckets[l].clear();
            self.heads[l] = 0;
            self.active_mask[l] = false;
            self.active.pop();
        }
    }
}

/// Reusable per-thread state for the incremental evaluation kernel.
///
/// A scratch holds the current 64-pattern values of every net, the
/// level-bucketed event queue, and an undo log. The intended cycle is:
///
/// 1. [`eval_full`](EvalScratch::eval_full) to establish a base state;
/// 2. [`propagate`](EvalScratch::propagate) one or more forced net changes
///    (only the disturbed cone is re-evaluated);
/// 3. either [`commit`](EvalScratch::commit) to keep the new state or
///    [`revert`](EvalScratch::revert) to restore the pre-propagation
///    values in O(touched).
#[derive(Debug, Clone)]
pub struct EvalScratch {
    values: Vec<u64>,
    scheduled: Vec<bool>,
    queue: LevelQueue,
    /// Undo log: `(net, value before the first change)` in touch order.
    touched: Vec<(u32, u64)>,
    counters: EngineCounters,
    /// Test-only fault injection: when `Some(n)`, the n-th future undo-log
    /// record (0-based) is silently dropped. See
    /// [`sabotage_drop_undo`](EvalScratch::sabotage_drop_undo).
    drop_undo_countdown: Option<u64>,
}

impl EvalScratch {
    /// Creates a scratch sized for `cc`.
    pub fn new(cc: &CompiledCircuit) -> Self {
        EvalScratch {
            values: vec![0; cc.num_nets()],
            scheduled: vec![false; cc.num_nets()],
            queue: LevelQueue::new(cc.depth()),
            touched: Vec::new(),
            counters: EngineCounters::default(),
            drop_undo_countdown: None,
        }
    }

    /// Test-only mutation hook (conformance mutation-kill harness): arranges
    /// for the `nth` undo-log record from now (0-based) to be dropped, so a
    /// later [`revert`](EvalScratch::revert) leaves that net stale. Never
    /// call this outside fault-injection tests.
    pub fn sabotage_drop_undo(&mut self, nth: u64) {
        self.drop_undo_countdown = Some(nth);
    }

    /// Records one undo-log entry, honouring the test-only drop fault.
    #[inline]
    fn record_touch(&mut self, net: u32, old: u64) {
        if let Some(n) = self.drop_undo_countdown {
            self.drop_undo_countdown = n.checked_sub(1);
            if n == 0 {
                return;
            }
        }
        self.touched.push((net, old));
    }

    /// Runs the full sweep into this scratch and clears the undo log.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count of `cc`.
    pub fn eval_full(&mut self, cc: &CompiledCircuit, input_words: &[u64]) {
        cc.eval_full_into(input_words, &mut self.values);
        self.touched.clear();
        self.counters.full_evals += 1;
    }

    /// Current value word of `net`.
    #[inline]
    pub fn value(&self, net: u32) -> u64 {
        self.values[net as usize]
    }

    /// Current value words of all nets, indexed by net id.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The undo log since the last [`eval_full`](EvalScratch::eval_full),
    /// [`commit`](EvalScratch::commit) or [`revert`](EvalScratch::revert):
    /// `(net, previous value)` pairs, each net at most once per
    /// [`propagate`](EvalScratch::propagate) call.
    pub fn touched(&self) -> &[(u32, u64)] {
        &self.touched
    }

    /// Kernel work counters accumulated by this scratch.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// The incremental kernel: forces `net` to `word` and re-evaluates only
    /// the downstream cone, in level order. The forced net keeps `word` even
    /// if it has a driver (the stuck-at / key-flip semantics); every value
    /// change is recorded in the undo log. Returns the mask of patterns on
    /// which some combinational output changed relative to the state before
    /// this call.
    pub fn propagate(&mut self, cc: &CompiledCircuit, net: u32, word: u64) -> u64 {
        self.counters.incremental_props += 1;
        let mut out_diff = 0u64;
        let old = self.values[net as usize];
        if old == word {
            return 0;
        }
        self.values[net as usize] = word;
        self.record_touch(net, old);
        if cc.is_output(net) {
            out_diff |= old ^ word;
        }
        for &f in cc.fanout(net) {
            self.schedule(cc, f);
        }
        // The forced net cannot re-enter the queue: only its fanins could
        // schedule it, and they are strictly upstream of the disturbed cone.
        while let Some(n) = self.queue.pop() {
            self.scheduled[n as usize] = false;
            self.counters.events += 1;
            let Some(kind) = cc.kind_of(n) else { continue };
            let new = CompiledCircuit::eval_gate(kind, cc.fanin(n), &self.values);
            let cur = self.values[n as usize];
            if new != cur {
                self.values[n as usize] = new;
                self.record_touch(n, cur);
                if cc.is_output(n) {
                    out_diff |= cur ^ new;
                }
                for &f in cc.fanout(n) {
                    self.schedule(cc, f);
                }
            }
        }
        out_diff
    }

    #[inline]
    fn schedule(&mut self, cc: &CompiledCircuit, net: u32) {
        if !self.scheduled[net as usize] {
            self.scheduled[net as usize] = true;
            self.queue.push(cc.level_of(net), net);
        }
    }

    /// Accepts the propagated state: clears the undo log.
    pub fn commit(&mut self) {
        self.touched.clear();
    }

    /// Rejects the propagated state: restores every touched net to its
    /// value before the first touch (reverse order, so nets touched by
    /// several [`propagate`](EvalScratch::propagate) calls resolve to their
    /// original value) and clears the undo log.
    pub fn revert(&mut self) {
        while let Some((net, old)) = self.touched.pop() {
            self.values[net as usize] = old;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    /// Naive reference: per-gate bool eval over one pattern.
    fn naive_eval(c: &Circuit, input: &[bool]) -> Vec<bool> {
        let lv = Levelization::build(c).unwrap();
        let mut values = vec![false; c.num_nets()];
        for (net, &b) in c.comb_inputs().iter().zip(input) {
            values[net.index()] = b;
        }
        for &id in lv.order() {
            if let Some(g) = c.gate(id) {
                values[id.index()] =
                    g.kind.eval(g.fanin.iter().map(|f| values[f.index()]));
            }
        }
        values
    }

    #[test]
    fn csr_matches_circuit_adjacency() {
        let c = samples::c17();
        let cc = CompiledCircuit::compile(&c).unwrap();
        let fanouts = c.fanouts();
        for id in c.net_ids() {
            let want_fanin: Vec<u32> = c
                .gate(id)
                .map(|g| g.fanin.iter().map(|f| f.0).collect())
                .unwrap_or_default();
            assert_eq!(cc.fanin(id.0), want_fanin.as_slice(), "fanin of {id}");
            let mut want_fanout: Vec<u32> = fanouts[id.index()].iter().map(|n| n.0).collect();
            let mut got_fanout = cc.fanout(id.0).to_vec();
            want_fanout.sort_unstable();
            got_fanout.sort_unstable();
            assert_eq!(got_fanout, want_fanout, "fanout of {id}");
        }
    }

    #[test]
    fn rank_is_dense_topological_position() {
        let c = samples::ripple_adder(4);
        let cc = CompiledCircuit::compile(&c).unwrap();
        for (r, id) in cc.order().iter().enumerate() {
            assert_eq!(cc.rank(id.0), r as u32);
        }
        for id in c.net_ids() {
            for &f in cc.fanin(id.0) {
                assert!(cc.rank(f) < cc.rank(id.0), "fanin rank must precede");
            }
        }
    }

    #[test]
    fn full_sweep_matches_naive() {
        let c = samples::full_adder();
        let cc = CompiledCircuit::compile(&c).unwrap();
        let mut values = Vec::new();
        for m in 0..8u64 {
            let input: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
            let words: Vec<u64> = input.iter().map(|&b| if b { !0 } else { 0 }).collect();
            cc.eval_full_into(&words, &mut values);
            let want = naive_eval(&c, &input);
            for id in c.net_ids() {
                assert_eq!(
                    values[id.index()] & 1 == 1,
                    want[id.index()],
                    "net {id} at m={m}"
                );
            }
        }
    }

    #[test]
    fn incremental_matches_full_resweep() {
        let c = crate::generate::random_comb(11, 8, 4, 120).unwrap();
        let cc = CompiledCircuit::compile(&c).unwrap();
        let mut rng = crate::rng::SplitMix64::new(99);
        let base: Vec<u64> = (0..cc.inputs().len()).map(|_| rng.next_u64()).collect();
        let mut scratch = EvalScratch::new(&cc);
        scratch.eval_full(&cc, &base);
        for step in 0..40 {
            let i = (rng.next_u64() as usize) % cc.inputs().len();
            let w = rng.next_u64();
            let net = cc.inputs()[i].0;
            scratch.propagate(&cc, net, w);
            scratch.commit();
            let mut full = Vec::new();
            let current: Vec<u64> = cc.inputs().iter().map(|n| scratch.value(n.0)).collect();
            cc.eval_full_into(&current, &mut full);
            assert_eq!(scratch.values(), full.as_slice(), "step {step}");
        }
        assert!(scratch.counters().incremental_props >= 1);
        assert!(scratch.counters().full_evals == 1);
    }

    #[test]
    fn revert_restores_exact_state() {
        let c = samples::c17();
        let cc = CompiledCircuit::compile(&c).unwrap();
        let mut scratch = EvalScratch::new(&cc);
        let base = vec![0xAAAA_5555_u64; cc.inputs().len()];
        scratch.eval_full(&cc, &base);
        let before = scratch.values().to_vec();
        // Two stacked propagations, then revert both.
        scratch.propagate(&cc, cc.inputs()[0].0, !0);
        scratch.propagate(&cc, cc.inputs()[1].0, 0);
        scratch.revert();
        assert_eq!(scratch.values(), before.as_slice());
        assert!(scratch.touched().is_empty());
    }

    #[test]
    fn propagate_reports_output_diff_mask() {
        // y = AND(a, b): flipping a changes y only where b is 1.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(GateKind::And, vec![a, b], "y").unwrap();
        c.mark_output(y);
        let cc = CompiledCircuit::compile(&c).unwrap();
        let mut scratch = EvalScratch::new(&cc);
        scratch.eval_full(&cc, &[0u64, 0b1100u64]);
        let diff = scratch.propagate(&cc, a.0, !0u64);
        assert_eq!(diff, 0b1100);
        let _ = y;
    }

    #[test]
    fn forced_gate_output_stays_forced() {
        // Stuck-at semantics: forcing a driven net keeps the forced value.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a], "g").unwrap();
        let y = c.add_gate(GateKind::Not, vec![g], "y").unwrap();
        c.mark_output(y);
        let cc = CompiledCircuit::compile(&c).unwrap();
        let mut scratch = EvalScratch::new(&cc);
        scratch.eval_full(&cc, &[0u64]);
        assert_eq!(scratch.value(y.0), 0);
        let diff = scratch.propagate(&cc, g.0, 0u64); // g would be 1 naturally
        assert_eq!(scratch.value(g.0), 0);
        assert_eq!(scratch.value(y.0), !0u64);
        assert_eq!(diff, !0u64);
    }

    #[test]
    fn pin_override_eval_matches_temp_copy() {
        let vals = [0b1010u64, 0b0110, 0b1100];
        let fanin = [0u32, 1, 2];
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand] {
            for pin in 0..3 {
                for forced in [0u64, !0u64, 0b1111] {
                    let mut copy = vals;
                    copy[pin] = forced;
                    let want = CompiledCircuit::eval_gate(kind, &fanin, &copy);
                    let got =
                        CompiledCircuit::eval_gate_with_pin(kind, &fanin, &vals, pin, forced);
                    assert_eq!(got, want, "{kind} pin {pin}");
                }
            }
        }
    }

    #[test]
    fn compile_time_recorded() {
        let cc = CompiledCircuit::compile(&samples::c17()).unwrap();
        // Zero is possible on coarse clocks; just exercise the accessor.
        let _ = cc.compile_ns();
        assert_eq!(cc.num_nets(), 11);
    }

    #[test]
    fn cyclic_circuit_rejected() {
        let mut c = Circuit::new("cyc");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::And, vec![a, a], "g").unwrap();
        let h = c.add_gate(GateKind::Not, vec![g], "h").unwrap();
        c.set_driver(g, crate::Gate::new(GateKind::And, vec![a, h]).unwrap())
            .unwrap();
        assert!(matches!(
            CompiledCircuit::compile(&c),
            Err(Error::CombinationalCycle(_))
        ));
    }

    #[test]
    fn level_queue_pops_levels_ascending_fifo_within() {
        let mut q = LevelQueue::new(5);
        q.push(3, 30);
        q.push(1, 10);
        q.push(3, 31);
        q.push(0, 0);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(10));
        // Pushing below the current frontier still works (mutant safety).
        q.push(2, 20);
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(30));
        q.push(5, 50);
        assert_eq!(q.pop(), Some(31));
        assert_eq!(q.pop(), Some(50));
        assert_eq!(q.pop(), None);
        // Reuse after drain.
        q.push(4, 40);
        assert_eq!(q.pop(), Some(40));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn levels_and_depth_exposed() {
        let c = samples::ripple_adder(4);
        let cc = CompiledCircuit::compile(&c).unwrap();
        let lv = Levelization::build(&c).unwrap();
        assert_eq!(cc.depth(), lv.depth());
        for id in c.net_ids() {
            assert_eq!(cc.level_of(id.0), lv.level(id));
            for &f in cc.fanin(id.0) {
                assert!(cc.level_of(f) < cc.level_of(id.0));
            }
        }
    }

    #[test]
    fn cone_mass_counts_downstream_work() {
        // a feeds g and h; g feeds y. mass(y)=1, mass(g)=2, mass(h)=1,
        // mass(a)=1+mass(g)+mass(h)=4.
        let mut c = Circuit::new("m");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g").unwrap();
        let h = c.add_gate(GateKind::Or, vec![a, b], "h").unwrap();
        let y = c.add_gate(GateKind::Not, vec![g], "y").unwrap();
        c.mark_output(y);
        c.mark_output(h);
        let cc = CompiledCircuit::compile(&c).unwrap();
        assert_eq!(cc.cone_mass(y.0), 1);
        assert_eq!(cc.cone_mass(g.0), 2);
        assert_eq!(cc.cone_mass(h.0), 1);
        assert_eq!(cc.cone_mass(a.0), 4);
    }

    #[test]
    fn skew_fanin_start_mutant_changes_semantics() {
        let c = samples::full_adder();
        let mut cc = CompiledCircuit::compile(&c).unwrap();
        let clean = CompiledCircuit::compile(&c).unwrap();
        // Pick a driven net with >= 2 fanins and a nonzero first-fanin
        // sensitivity; the skew must change some full-sweep output.
        let target = c
            .net_ids()
            .find(|id| cc.fanin(id.0).len() >= 2)
            .expect("full adder has multi-fanin gates");
        assert!(cc.mutate_skew_fanin_start(target.0));
        assert_eq!(cc.fanin(target.0).len(), clean.fanin(target.0).len() - 1);
        let words: Vec<u64> = (0..cc.inputs().len()).map(|i| 0xA5A5 << i).collect();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        cc.eval_full_into(&words, &mut got);
        clean.eval_full_into(&words, &mut want);
        assert_ne!(got, want, "skewed CSR must be observable");
    }
}
