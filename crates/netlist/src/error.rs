use std::fmt;

/// Errors produced while constructing, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A gate was given a fanin count its kind does not accept.
    BadArity {
        /// The offending gate kind.
        kind: &'static str,
        /// Number of fanins supplied.
        got: usize,
    },
    /// A net id referenced a net that does not exist in the circuit.
    UnknownNet(u32),
    /// A net name was referenced before being defined (bench parsing).
    UndefinedName(String),
    /// The same net name was defined twice.
    DuplicateName(String),
    /// The combinational part contains a cycle through the listed net.
    CombinationalCycle(String),
    /// A net has no driver and is not an input.
    Undriven(String),
    /// A syntax error in a `.bench` file.
    BenchSyntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A generator profile was inconsistent (e.g. zero outputs).
    BadProfile(String),
    /// The circuit would exceed the `u32::MAX` net-id space.
    TooManyNets,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadArity { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fanins")
            }
            Error::UnknownNet(id) => write!(f, "net id {id} does not exist"),
            Error::UndefinedName(n) => write!(f, "net name `{n}` used but never defined"),
            Error::DuplicateName(n) => write!(f, "net name `{n}` defined twice"),
            Error::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net `{n}`")
            }
            Error::Undriven(n) => write!(f, "net `{n}` has no driver and is not an input"),
            Error::BenchSyntax { line, msg } => write!(f, "bench syntax error on line {line}: {msg}"),
            Error::BadProfile(msg) => write!(f, "invalid generator profile: {msg}"),
            Error::TooManyNets => write!(f, "net count exceeds the u32 id space"),
        }
    }
}

impl std::error::Error for Error {}
