//! A tiny, stable PRNG used for deterministic circuit generation.
//!
//! Generated benchmark circuits must be bit-reproducible across machines and
//! crate-version upgrades (the experiment tables reference them by seed), so
//! we use a self-contained [SplitMix64] generator instead of an external
//! crate whose stream might change between versions.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// SplitMix64 pseudo-random number generator.
///
/// ```
/// use netlist::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli trial with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (k <= n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // Partial Fisher–Yates over an index vector; O(n) setup is fine at
        // circuit-generation scale.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut r = SplitMix64::new(0);
        // Reference values from the canonical splitmix64.c with seed 0.
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = r.below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not produce identity shuffle");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SplitMix64::new(9);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic]
    fn sample_too_many_panics() {
        SplitMix64::new(0).sample_indices(3, 4);
    }
}
