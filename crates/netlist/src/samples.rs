//! Small embedded circuits with known-good behaviour, used as ground truth
//! throughout the workspace's tests and examples.

use crate::{bench, Circuit, GateKind, NetId};

/// The ISCAS-85 `c17` benchmark (5 inputs, 2 outputs, 6 NAND gates) — the
/// classic smallest "real" benchmark circuit.
pub fn c17() -> Circuit {
    const TEXT: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
    bench::parse_named(TEXT, "c17").expect("embedded c17 is valid")
}

/// A 1-bit full adder: inputs `a`, `b`, `cin`; outputs `sum`, `cout`.
pub fn full_adder() -> Circuit {
    let mut c = Circuit::new("full_adder");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let cin = c.add_input("cin");
    let axb = c.add_gate(GateKind::Xor, vec![a, b], "axb").unwrap();
    let sum = c.add_gate(GateKind::Xor, vec![axb, cin], "sum").unwrap();
    let t1 = c.add_gate(GateKind::And, vec![axb, cin], "t1").unwrap();
    let t2 = c.add_gate(GateKind::And, vec![a, b], "t2").unwrap();
    let cout = c.add_gate(GateKind::Or, vec![t1, t2], "cout").unwrap();
    c.mark_output(sum);
    c.mark_output(cout);
    c
}

/// An n-bit ripple-carry adder: inputs `a0..`, `b0..`, output `s0..` plus
/// final carry `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder needs at least one bit");
    let mut c = Circuit::new(format!("ripple_adder_{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry: Option<NetId> = None;
    for i in 0..bits {
        let axb = c
            .add_gate(GateKind::Xor, vec![a[i], b[i]], format!("axb{i}"))
            .unwrap();
        let (sum, cnext) = match carry {
            None => {
                let sum = c.add_gate(GateKind::Buf, vec![axb], format!("s{i}")).unwrap();
                let cn = c
                    .add_gate(GateKind::And, vec![a[i], b[i]], format!("c{i}"))
                    .unwrap();
                (sum, cn)
            }
            Some(cin) => {
                let sum = c
                    .add_gate(GateKind::Xor, vec![axb, cin], format!("s{i}"))
                    .unwrap();
                let t1 = c
                    .add_gate(GateKind::And, vec![axb, cin], format!("t1_{i}"))
                    .unwrap();
                let t2 = c
                    .add_gate(GateKind::And, vec![a[i], b[i]], format!("t2_{i}"))
                    .unwrap();
                let cn = c
                    .add_gate(GateKind::Or, vec![t1, t2], format!("c{i}"))
                    .unwrap();
                (sum, cn)
            }
        };
        c.mark_output(sum);
        carry = Some(cnext);
    }
    let cout = c
        .add_gate(GateKind::Buf, vec![carry.unwrap()], "cout")
        .unwrap();
    c.mark_output(cout);
    c
}

/// 3-input majority gate built from NAND gates: output is 1 iff at least two
/// inputs are 1.
pub fn majority3() -> Circuit {
    let mut c = Circuit::new("majority3");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let d = c.add_input("d");
    let n1 = c.add_gate(GateKind::Nand, vec![a, b], "n1").unwrap();
    let n2 = c.add_gate(GateKind::Nand, vec![a, d], "n2").unwrap();
    let n3 = c.add_gate(GateKind::Nand, vec![b, d], "n3").unwrap();
    let y = c.add_gate(GateKind::Nand, vec![n1, n2, n3], "y").unwrap();
    c.mark_output(y);
    c
}

/// A 2-to-1 multiplexer: `y = s ? b : a`.
pub fn mux2() -> Circuit {
    let mut c = Circuit::new("mux2");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let s = c.add_input("s");
    let ns = c.add_gate(GateKind::Not, vec![s], "ns").unwrap();
    let t0 = c.add_gate(GateKind::And, vec![a, ns], "t0").unwrap();
    let t1 = c.add_gate(GateKind::And, vec![b, s], "t1").unwrap();
    let y = c.add_gate(GateKind::Or, vec![t0, t1], "y").unwrap();
    c.mark_output(y);
    c
}

/// An n-bit binary up-counter with enable: a small *sequential* sample for
/// scan-chain and unlock-controller tests. Inputs: `en`; outputs: the count
/// bits `q0..`.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn counter(bits: usize) -> Circuit {
    assert!(bits > 0, "counter needs at least one bit");
    let mut c = Circuit::new(format!("counter_{bits}"));
    let en = c.add_input("en");
    // q bits start as placeholder inputs, converted to DFFs once the next-
    // state logic exists.
    let q: Vec<NetId> = (0..bits).map(|i| c.add_input(format!("q{i}"))).collect();
    let mut carry = en;
    for (i, &qi) in q.iter().enumerate() {
        let d = c
            .add_gate(GateKind::Xor, vec![qi, carry], format!("d{i}"))
            .unwrap();
        if i + 1 < bits {
            carry = c
                .add_gate(GateKind::And, vec![qi, carry], format!("cy{i}"))
                .unwrap();
        }
        c.convert_input_to_dff(qi, d).unwrap();
        c.mark_output(qi);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_validate() {
        for c in [c17(), full_adder(), ripple_adder(4), majority3(), mux2(), counter(3)] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        }
    }

    #[test]
    fn c17_shape() {
        let c = c17();
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.num_gates(), 6);
    }

    #[test]
    fn counter_shape() {
        let c = counter(4);
        assert_eq!(c.dffs().len(), 4);
        assert_eq!(c.primary_inputs().len(), 1);
        assert_eq!(c.primary_outputs().len(), 4);
        assert_eq!(c.comb_inputs().len(), 5);
    }

    #[test]
    fn ripple_adder_shape() {
        let c = ripple_adder(8);
        assert_eq!(c.primary_inputs().len(), 16);
        assert_eq!(c.primary_outputs().len(), 9);
    }
}
