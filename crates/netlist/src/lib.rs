//! Gate-level netlist infrastructure for the OraP logic-locking reproduction.
//!
//! This crate provides the circuit representation shared by every other crate
//! in the workspace:
//!
//! - [`Circuit`]: a gate-level netlist whose sequential elements (D flip-flops)
//!   are kept at the boundary, exposing the *combinational part* the way the
//!   OraP paper (and every combinational logic-locking work) treats circuits.
//! - [`mod@bench`]: a parser and writer for the ISCAS-89 `.bench` format used by
//!   the ISCAS'89 and ITC'99 benchmark suites.
//! - [`generate`]: a deterministic synthetic benchmark generator that matches
//!   the published size profiles of the circuits used in the paper
//!   (s38417, s38584, b17–b22), since the original netlists are not
//!   redistributable here.
//! - [`samples`]: small embedded, well-known circuits (c17, adders, majority)
//!   used as ground truth in tests.
//! - [`rng`]: a tiny, stable [SplitMix64](rng::SplitMix64) PRNG so generated
//!   circuits are bit-reproducible regardless of external crate versions.
//!
//! # Example
//!
//! ```
//! use netlist::{Circuit, GateKind};
//!
//! # fn main() -> Result<(), netlist::Error> {
//! let mut c = Circuit::new("half_adder");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let sum = c.add_gate(GateKind::Xor, vec![a, b], "sum")?;
//! let carry = c.add_gate(GateKind::And, vec![a, b], "carry")?;
//! c.mark_output(sum);
//! c.mark_output(carry);
//! c.validate()?;
//! assert_eq!(c.num_gates(), 2);
//! # Ok(())
//! # }
//! ```

pub mod bench;
pub mod verilog;
mod circuit;
pub mod compiled;
mod error;
pub mod generate;
pub mod rng;
pub mod samples;
mod stats;
pub mod stream;
mod topo;

pub use circuit::{Circuit, Dff, Gate, GateKind, Net, NetId};
pub use compiled::{CompiledCircuit, EngineCounters, EvalScratch, LevelQueue};
pub use stream::StreamBuilder;
pub use error::Error;
pub use stats::CircuitStats;
pub use topo::{Levelization, TransitiveFanin};
