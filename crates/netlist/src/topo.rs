//! Topological ordering, levelization and cone analysis.

use crate::{Circuit, Error, NetId};

/// A topological ordering of a circuit's combinational part, with the logic
/// level (longest-path depth) of every net.
///
/// Inputs sit at level 0; a gate's level is `1 + max(level of fanins)`.
/// The level metric is what the paper uses for delay-overhead estimation
/// ("delay overhead (in terms of number of levels)").
#[derive(Debug, Clone)]
pub struct Levelization {
    order: Vec<NetId>,
    level: Vec<u32>,
}

impl Levelization {
    /// Computes a topological order using Kahn's algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CombinationalCycle`] if the combinational part is
    /// cyclic, naming a net on the cycle.
    pub fn build(circuit: &Circuit) -> Result<Self, Error> {
        let n = circuit.num_nets();
        let mut indeg = vec![0u32; n];
        let mut level = vec![0u32; n];
        for id in circuit.net_ids() {
            if let Some(g) = circuit.gate(id) {
                indeg[id.index()] = g.fanin.len() as u32;
            }
        }
        let fanouts = circuit.fanouts();
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<NetId> = circuit
            .net_ids()
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &succ in &fanouts[id.index()] {
                let s = succ.index();
                let cand = level[id.index()] + 1;
                if cand > level[s] {
                    level[s] = cand;
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() != n {
            let on_cycle = circuit
                .net_ids()
                .find(|id| indeg[id.index()] > 0)
                .expect("cycle implies a net with leftover indegree");
            return Err(Error::CombinationalCycle(
                circuit.net(on_cycle).name().to_owned(),
            ));
        }
        Ok(Levelization { order, level })
    }

    /// Assembles a levelization from an already-topological order and its
    /// per-net levels — the streaming-compile path, where gates are created
    /// fanin-first and the order is the identity by construction, so running
    /// Kahn's algorithm again would be a wasted O(V+E) pass.
    pub(crate) fn from_parts(order: Vec<NetId>, level: Vec<u32>) -> Self {
        debug_assert_eq!(order.len(), level.len());
        Levelization { order, level }
    }

    /// The nets in topological order (fanins always before fanouts).
    pub fn order(&self) -> &[NetId] {
        &self.order
    }

    /// The logic level of every net, indexed by dense net id.
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// Test-only mutation hook for the conformance mutation-kill harness:
    /// swaps two entries of the cached order, deliberately breaking the
    /// fanin-before-fanout invariant when the entries are dependent. Never
    /// call this outside fault-injection tests.
    pub fn mutate_swap_order_entries(&mut self, i: usize, j: usize) {
        self.order.swap(i, j);
    }

    /// The level of a net.
    pub fn level(&self, net: NetId) -> u32 {
        self.level[net.index()]
    }

    /// The depth of the circuit: the maximum level over all nets.
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

/// The transitive fanin cone of a set of nets.
#[derive(Debug, Clone)]
pub struct TransitiveFanin {
    member: Vec<bool>,
    count: usize,
}

impl TransitiveFanin {
    /// Computes the transitive fanin of `roots` in `circuit` (the roots are
    /// included).
    pub fn of(circuit: &Circuit, roots: impl IntoIterator<Item = NetId>) -> Self {
        let mut member = vec![false; circuit.num_nets()];
        let mut stack: Vec<NetId> = roots.into_iter().collect();
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if member[id.index()] {
                continue;
            }
            member[id.index()] = true;
            count += 1;
            if let Some(g) = circuit.gate(id) {
                stack.extend(g.fanin.iter().copied());
            }
        }
        TransitiveFanin { member, count }
    }

    /// Whether `net` lies in the cone.
    pub fn contains(&self, net: NetId) -> bool {
        self.member.get(net.index()).copied().unwrap_or(false)
    }

    /// Number of nets in the cone.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the cone is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates over the member nets in dense id order.
    pub fn iter(&self) -> impl Iterator<Item = NetId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NetId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn chain(len: usize) -> (Circuit, Vec<NetId>) {
        let mut c = Circuit::new("chain");
        let mut ids = vec![c.add_input("i")];
        for k in 0..len {
            let prev = *ids.last().unwrap();
            ids.push(c.add_gate(GateKind::Not, vec![prev], format!("g{k}")).unwrap());
        }
        c.mark_output(*ids.last().unwrap());
        (c, ids)
    }

    #[test]
    fn levels_of_chain() {
        let (c, ids) = chain(5);
        let lv = Levelization::build(&c).unwrap();
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(lv.level(id), k as u32);
        }
        assert_eq!(lv.depth(), 5);
        assert_eq!(lv.order().len(), c.num_nets());
    }

    #[test]
    fn order_respects_dependencies() {
        let (c, _) = chain(10);
        let lv = Levelization::build(&c).unwrap();
        let mut seen = vec![false; c.num_nets()];
        for &id in lv.order() {
            if let Some(g) = c.gate(id) {
                for &f in &g.fanin {
                    assert!(seen[f.index()], "fanin after fanout in order");
                }
            }
            seen[id.index()] = true;
        }
    }

    #[test]
    fn diamond_levels() {
        let mut c = Circuit::new("d");
        let a = c.add_input("a");
        let l = c.add_gate(GateKind::Not, vec![a], "l").unwrap();
        let r = c.add_gate(GateKind::Buf, vec![a], "r").unwrap();
        let r2 = c.add_gate(GateKind::Not, vec![r], "r2").unwrap();
        let out = c.add_gate(GateKind::And, vec![l, r2], "out").unwrap();
        c.mark_output(out);
        let lv = Levelization::build(&c).unwrap();
        assert_eq!(lv.level(out), 3); // longest path a -> r -> r2 -> out
    }

    #[test]
    fn cycle_detected() {
        // Build a cycle by splicing a driver whose fanin is its own output.
        let mut c = Circuit::new("cyc");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::And, vec![a, a], "g").unwrap();
        let h = c.add_gate(GateKind::Not, vec![g], "h").unwrap();
        // redirect g's driver to read h -> cycle g -> h -> g
        c.set_driver(g, crate::Gate::new(GateKind::And, vec![a, h]).unwrap())
            .unwrap();
        assert!(matches!(
            Levelization::build(&c),
            Err(Error::CombinationalCycle(_))
        ));
    }

    #[test]
    fn transitive_fanin_cone() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g = c.add_gate(GateKind::And, vec![a, b], "g").unwrap();
        let h = c.add_gate(GateKind::Or, vec![g, b], "h").unwrap();
        let unrelated = c.add_gate(GateKind::Not, vec![x], "u").unwrap();
        let cone = TransitiveFanin::of(&c, [h]);
        assert!(cone.contains(h));
        assert!(cone.contains(g));
        assert!(cone.contains(a));
        assert!(cone.contains(b));
        assert!(!cone.contains(x));
        assert!(!cone.contains(unrelated));
        assert_eq!(cone.len(), 4);
        assert_eq!(cone.iter().count(), 4);
    }

    #[test]
    fn empty_cone() {
        let c = Circuit::new("e");
        let cone = TransitiveFanin::of(&c, []);
        assert!(cone.is_empty());
    }
}
