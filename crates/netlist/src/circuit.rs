use std::collections::HashMap;
use std::fmt;

use crate::Error;

/// Identifier of a net (signal) inside one [`Circuit`].
///
/// Net ids are dense indices: they index into the circuit's net table and are
/// only meaningful for the circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index.
    ///
    /// Useful when iterating `0..circuit.num_nets()`; the id is only valid for
    /// the circuit whose net count bounds `index`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `index` exceeds `u32::MAX` (net ids are 32-bit;
    /// circuits can never hand out such an index, see
    /// [`Error::TooManyNets`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(
            u32::try_from(index).is_ok(),
            "net index {index} exceeds the u32 id space"
        );
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function computed by a [`Gate`].
///
/// `And`, `Nand`, `Or`, `Nor`, `Xor` and `Xnor` accept two or more fanins
/// (`Xor`/`Xnor` are n-ary parity / inverted parity). `Not` and `Buf` accept
/// exactly one. `Const0`/`Const1` accept none and exist so synthesis passes
/// can express constant propagation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// n-ary AND.
    And,
    /// n-ary NAND.
    Nand,
    /// n-ary OR.
    Or,
    /// n-ary NOR.
    Nor,
    /// n-ary parity (XOR).
    Xor,
    /// n-ary inverted parity (XNOR).
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
}

impl GateKind {
    /// Human-readable upper-case name, matching `.bench` keywords.
    pub fn as_str(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }

    /// Whether `n` fanins is a legal arity for this kind.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self {
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => n >= 2,
            GateKind::Xor | GateKind::Xnor => n >= 2,
            GateKind::Not | GateKind::Buf => n == 1,
            GateKind::Const0 | GateKind::Const1 => n == 0,
        }
    }

    /// Whether this kind is an inverter or buffer (excluded from the paper's
    /// gate counts, which report "number of gates without inverters").
    pub fn is_inverter_like(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// Evaluates the gate function over boolean fanin values.
    pub fn eval(self, fanin: impl IntoIterator<Item = bool>) -> bool {
        let mut it = fanin.into_iter();
        match self {
            GateKind::And => it.all(|b| b),
            GateKind::Nand => !it.all(|b| b),
            GateKind::Or => it.any(|b| b),
            GateKind::Nor => !it.any(|b| b),
            GateKind::Xor => it.fold(false, |acc, b| acc ^ b),
            GateKind::Xnor => !it.fold(false, |acc, b| acc ^ b),
            GateKind::Not => !it.next().expect("NOT takes one fanin"),
            GateKind::Buf => it.next().expect("BUFF takes one fanin"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// All kinds, in a stable order.
    pub const ALL: [GateKind; 10] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A logic gate: a kind plus ordered fanin nets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The logic function.
    pub kind: GateKind,
    /// Ordered fanin nets.
    pub fanin: Vec<NetId>,
}

impl Gate {
    /// Creates a gate, validating arity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadArity`] if `fanin.len()` is not legal for `kind`.
    pub fn new(kind: GateKind, fanin: Vec<NetId>) -> Result<Self, Error> {
        if !kind.accepts_arity(fanin.len()) {
            return Err(Error::BadArity {
                kind: kind.as_str(),
                got: fanin.len(),
            });
        }
        Ok(Gate { kind, fanin })
    }
}

/// One net of the circuit: a name plus, for gate outputs, its driving gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Option<Gate>,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate driving this net, or `None` for primary inputs and flip-flop
    /// outputs.
    pub fn driver(&self) -> Option<&Gate> {
        self.driver.as_ref()
    }
}

/// A D flip-flop at the sequential boundary of the circuit.
///
/// The combinational part treats `q` as an extra input (pseudo primary input)
/// and `d` as an extra output (pseudo primary output), exactly how scan-based
/// testing — and therefore every combinational logic-locking paper — views a
/// sequential design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dff {
    /// The flip-flop output net (state bit, pseudo primary input).
    pub q: NetId,
    /// The flip-flop input net (next state, pseudo primary output).
    pub d: NetId,
}

/// A gate-level netlist with flip-flops kept at the boundary.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    nets: Vec<Net>,
    pis: Vec<NetId>,
    pos: Vec<NetId>,
    dffs: Vec<Dff>,
    by_name: HashMap<String, NetId>,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nets: Vec::new(),
            pis: Vec::new(),
            pos: Vec::new(),
            dffs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The id the next net will get, or [`Error::TooManyNets`] once the
    /// 32-bit id space is exhausted (instead of silently wrapping).
    fn next_id(&self) -> Result<NetId, Error> {
        u32::try_from(self.nets.len())
            .map(NetId)
            .map_err(|_| Error::TooManyNets)
    }

    fn intern_name(&mut self, want: &str, id: NetId) -> String {
        let mut name = want.to_owned();
        let mut i = 0u32;
        while self.by_name.contains_key(&name) {
            name = format!("{want}${}_{i}", id.0);
            i += 1;
        }
        self.by_name.insert(name.clone(), id);
        name
    }

    /// Adds a primary input and returns its net id.
    ///
    /// If `name` is already taken the input is given a fresh, deterministic
    /// variant of the name (`name$<id>_<n>`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit already holds `u32::MAX` nets (the fallible
    /// constructors return [`Error::TooManyNets`] instead).
    pub fn add_input(&mut self, name: impl AsRef<str>) -> NetId {
        let id = self.next_id().expect("net count exceeds the u32 id space");
        let name = self.intern_name(name.as_ref(), id);
        self.nets.push(Net { name, driver: None });
        self.pis.push(id);
        id
    }

    /// Adds a gate driving a fresh net and returns the new net's id.
    ///
    /// Duplicate names are uniquified the same way as [`add_input`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadArity`] if the fanin count is illegal for `kind`,
    /// [`Error::UnknownNet`] if any fanin id is out of range, and
    /// [`Error::TooManyNets`] if the 32-bit id space is exhausted.
    ///
    /// [`add_input`]: Circuit::add_input
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanin: Vec<NetId>,
        name: impl AsRef<str>,
    ) -> Result<NetId, Error> {
        for &f in &fanin {
            if f.index() >= self.nets.len() {
                return Err(Error::UnknownNet(f.0));
            }
        }
        let gate = Gate::new(kind, fanin)?;
        let id = self.next_id()?;
        let name = self.intern_name(name.as_ref(), id);
        self.nets.push(Net {
            name,
            driver: Some(gate),
        });
        Ok(id)
    }

    /// Marks a net as a primary output. A net may be marked more than once;
    /// duplicates are ignored.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.pos.contains(&net) {
            self.pos.push(net);
        }
    }

    /// Adds a D flip-flop: creates the `q` net (state output, behaves like an
    /// input of the combinational part) fed by the existing net `d`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] if `d` is out of range and
    /// [`Error::TooManyNets`] if the 32-bit id space is exhausted.
    pub fn add_dff(&mut self, q_name: impl AsRef<str>, d: NetId) -> Result<NetId, Error> {
        if d.index() >= self.nets.len() {
            return Err(Error::UnknownNet(d.0));
        }
        let q = self.next_id()?;
        let name = self.intern_name(q_name.as_ref(), q);
        self.nets.push(Net { name, driver: None });
        self.dffs.push(Dff { q, d });
        Ok(q)
    }

    /// Reclassifies a primary input as a flip-flop output fed by `d`.
    ///
    /// This is used when a circuit's state elements are discovered after its
    /// nets were created (e.g. the two-pass `.bench` parser), or when a model
    /// wants to turn free inputs into state bits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] if `d` is out of range, or
    /// [`Error::Undriven`] if `q` is not currently a primary input.
    pub fn convert_input_to_dff(&mut self, q: NetId, d: NetId) -> Result<(), Error> {
        if d.index() >= self.nets.len() {
            return Err(Error::UnknownNet(d.0));
        }
        let pos = self
            .pis
            .iter()
            .position(|&p| p == q)
            .ok_or_else(|| Error::Undriven(format!("{q} is not a primary input")))?;
        self.pis.remove(pos);
        self.dffs.push(Dff { q, d });
        Ok(())
    }

    /// Detaches the driver of `net`, moving it onto a freshly created net, and
    /// returns the new net's id. `net` is left undriven; the caller must give
    /// it a new driver via [`set_driver`](Circuit::set_driver) (this is the
    /// primitive used to splice key gates into a signal).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] if `net` is out of range,
    /// [`Error::Undriven`] if `net` has no driver (inputs cannot be split),
    /// or [`Error::TooManyNets`] if the 32-bit id space is exhausted.
    pub fn split_net(&mut self, net: NetId, new_name: impl AsRef<str>) -> Result<NetId, Error> {
        if net.index() >= self.nets.len() {
            return Err(Error::UnknownNet(net.0));
        }
        self.next_id()?;
        let driver = self.nets[net.index()]
            .driver
            .take()
            .ok_or_else(|| Error::Undriven(self.nets[net.index()].name.clone()))?;
        let id = self.next_id().expect("checked above");
        let name = self.intern_name(new_name.as_ref(), id);
        self.nets.push(Net {
            name,
            driver: Some(driver),
        });
        Ok(id)
    }

    /// Installs `gate` as the driver of `net`, replacing any existing driver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] if `net` or any fanin is out of range.
    /// Installing a driver on a primary input is allowed only for nets that
    /// are *not* listed as inputs; attempting it on a primary input or
    /// flip-flop output returns [`Error::Undriven`] (those nets must stay
    /// driverless).
    pub fn set_driver(&mut self, net: NetId, gate: Gate) -> Result<(), Error> {
        if net.index() >= self.nets.len() {
            return Err(Error::UnknownNet(net.0));
        }
        for &f in &gate.fanin {
            if f.index() >= self.nets.len() {
                return Err(Error::UnknownNet(f.0));
            }
        }
        if self.is_comb_input(net) {
            return Err(Error::Undriven(self.nets[net.index()].name.clone()));
        }
        self.nets[net.index()].driver = Some(gate);
        Ok(())
    }

    /// Number of nets (inputs + gate outputs).
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates (nets with a driver).
    pub fn num_gates(&self) -> usize {
        self.nets.iter().filter(|n| n.driver.is_some()).count()
    }

    /// Number of gates excluding inverters and buffers — the metric the paper
    /// reports in Table I ("# Gates ... without inverters").
    pub fn num_gates_excluding_inverters(&self) -> usize {
        self.nets
            .iter()
            .filter_map(|n| n.driver.as_ref())
            .filter(|g| !g.kind.is_inverter_like())
            .count()
    }

    /// The primary inputs, in creation order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.pis
    }

    /// The primary outputs, in creation order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.pos
    }

    /// The flip-flops, in creation order.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// All inputs of the *combinational part*: primary inputs followed by
    /// flip-flop outputs (pseudo primary inputs).
    pub fn comb_inputs(&self) -> Vec<NetId> {
        let mut v = self.pis.clone();
        v.extend(self.dffs.iter().map(|d| d.q));
        v
    }

    /// All outputs of the *combinational part*: primary outputs followed by
    /// flip-flop inputs (pseudo primary outputs).
    pub fn comb_outputs(&self) -> Vec<NetId> {
        let mut v = self.pos.clone();
        v.extend(self.dffs.iter().map(|d| d.d));
        v
    }

    /// Whether `net` is an input of the combinational part (primary input or
    /// flip-flop output).
    pub fn is_comb_input(&self, net: NetId) -> bool {
        self.pis.contains(&net) || self.dffs.iter().any(|d| d.q == net)
    }

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net(&self, net: NetId) -> &Net {
        &self.nets[net.index()]
    }

    /// Returns the gate driving `net`, or `None` for inputs.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn gate(&self, net: NetId) -> Option<&Gate> {
        self.nets[net.index()].driver.as_ref()
    }

    /// Looks a net up by name.
    pub fn find(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all net ids in dense order.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Iterates over `(id, net)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// Builds the fanout list of every net: `fanouts[n]` lists the nets whose
    /// driving gate reads net `n`.
    pub fn fanouts(&self) -> Vec<Vec<NetId>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (i, net) in self.nets.iter().enumerate() {
            if let Some(g) = &net.driver {
                for &f in &g.fanin {
                    out[f.index()].push(NetId(i as u32));
                }
            }
        }
        out
    }

    /// Checks structural sanity: every non-input net is driven with a legal
    /// arity, all fanins are in range, and the combinational part is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), Error> {
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            match &net.driver {
                Some(g) => {
                    if !g.kind.accepts_arity(g.fanin.len()) {
                        return Err(Error::BadArity {
                            kind: g.kind.as_str(),
                            got: g.fanin.len(),
                        });
                    }
                    for &f in &g.fanin {
                        if f.index() >= self.nets.len() {
                            return Err(Error::UnknownNet(f.0));
                        }
                    }
                }
                None => {
                    let is_pi = self.pis.contains(&id);
                    let is_q = self.dffs.iter().any(|d| d.q == id);
                    if !is_pi && !is_q {
                        return Err(Error::Undriven(net.name.clone()));
                    }
                }
            }
        }
        // Acyclicity via the levelization routine.
        crate::topo::Levelization::build(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_eval_truth_tables() {
        use GateKind::*;
        let tt = |k: GateKind, a: bool, b: bool| k.eval([a, b]);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(tt(And, a, b), a & b);
            assert_eq!(tt(Nand, a, b), !(a & b));
            assert_eq!(tt(Or, a, b), a | b);
            assert_eq!(tt(Nor, a, b), !(a | b));
            assert_eq!(tt(Xor, a, b), a ^ b);
            assert_eq!(tt(Xnor, a, b), !(a ^ b));
        }
        assert!(!Not.eval([true]));
        assert!(Buf.eval([true]));
        assert!(!Const0.eval([]));
        assert!(Const1.eval([]));
    }

    #[test]
    fn nary_eval() {
        use GateKind::*;
        assert!(And.eval([true, true, true]));
        assert!(!And.eval([true, false, true]));
        assert!(Xor.eval([true, true, true]));
        assert!(!Xor.eval([true, true]));
        assert!(Xnor.eval([true, true]));
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(1));
        assert!(GateKind::Const0.accepts_arity(0));
        assert!(!GateKind::Const1.accepts_arity(1));
    }

    #[test]
    fn build_and_query() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g").unwrap();
        c.mark_output(g);
        assert_eq!(c.num_nets(), 3);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.primary_inputs(), &[a, b]);
        assert_eq!(c.primary_outputs(), &[g]);
        assert_eq!(c.find("g"), Some(g));
        assert!(c.is_comb_input(a));
        assert!(!c.is_comb_input(g));
        c.validate().unwrap();
    }

    #[test]
    fn duplicate_names_uniquified() {
        let mut c = Circuit::new("t");
        let a = c.add_input("x");
        let b = c.add_input("x");
        assert_ne!(c.net(a).name(), c.net(b).name());
        assert_eq!(c.find("x"), Some(a));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let err = c.add_gate(GateKind::And, vec![a], "g").unwrap_err();
        assert!(matches!(err, Error::BadArity { .. }));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let bogus = NetId(99);
        let err = c.add_gate(GateKind::Not, vec![bogus], "g").unwrap_err();
        assert!(matches!(err, Error::UnknownNet(99)));
        let _ = a;
    }

    #[test]
    fn dff_boundary() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let q = c.add_dff("q", a).unwrap();
        let g = c.add_gate(GateKind::Xor, vec![a, q], "g").unwrap();
        c.mark_output(g);
        assert_eq!(c.comb_inputs(), vec![a, q]);
        assert_eq!(c.comb_outputs(), vec![g, a]);
        assert!(c.is_comb_input(q));
        c.validate().unwrap();
    }

    #[test]
    fn split_net_moves_driver() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g").unwrap();
        let moved = c.split_net(g, "g_orig").unwrap();
        assert!(c.gate(g).is_none());
        assert_eq!(c.gate(moved).unwrap().kind, GateKind::And);
        // Re-drive g with an XOR of the moved net and a new key input.
        let k = c.add_input("k");
        c.set_driver(g, Gate::new(GateKind::Xor, vec![moved, k]).unwrap())
            .unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn split_input_fails() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        assert!(matches!(c.split_net(a, "x"), Err(Error::Undriven(_))));
    }

    #[test]
    fn set_driver_on_input_fails() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = Gate::new(GateKind::Const1, vec![]).unwrap();
        assert!(matches!(c.set_driver(a, g), Err(Error::Undriven(_))));
    }

    #[test]
    fn undriven_net_detected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a], "g").unwrap();
        let h = c.split_net(g, "h").unwrap();
        let _ = h;
        // g now has no driver and is not an input.
        assert!(matches!(c.validate(), Err(Error::Undriven(_))));
    }

    #[test]
    fn mark_output_dedupes() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        c.mark_output(a);
        c.mark_output(a);
        assert_eq!(c.primary_outputs().len(), 1);
    }
}
