//! Reader and writer for the ISCAS-89 `.bench` netlist format.
//!
//! The `.bench` format is the lingua franca of the ISCAS'85/'89 and ITC'99
//! benchmark distributions used by the paper:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Sequential circuits use `q = DFF(d)` lines; we map those onto the
//! [`Circuit`] flip-flop boundary. As an extension, `CONST0()`
//! and `CONST1()` gates are accepted so optimized circuits round-trip.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), netlist::Error> {
//! let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
//! let c = netlist::bench::parse(text)?;
//! assert_eq!(c.num_gates(), 1);
//! let round = netlist::bench::write(&c);
//! let c2 = netlist::bench::parse(&round)?;
//! assert_eq!(c2.num_gates(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::{Circuit, Error, GateKind, Levelization, NetId};

#[derive(Debug)]
enum Stmt {
    Input(String),
    Output(String),
    Assign {
        target: String,
        kind: Kind,
        args: Vec<String>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Gate(GateKind),
    Dff,
}

fn parse_kind(word: &str, line: usize) -> Result<Kind, Error> {
    let up = word.to_ascii_uppercase();
    let k = match up.as_str() {
        "AND" => Kind::Gate(GateKind::And),
        "NAND" => Kind::Gate(GateKind::Nand),
        "OR" => Kind::Gate(GateKind::Or),
        "NOR" => Kind::Gate(GateKind::Nor),
        "XOR" => Kind::Gate(GateKind::Xor),
        "XNOR" => Kind::Gate(GateKind::Xnor),
        "NOT" | "INV" => Kind::Gate(GateKind::Not),
        "BUF" | "BUFF" => Kind::Gate(GateKind::Buf),
        "CONST0" => Kind::Gate(GateKind::Const0),
        "CONST1" => Kind::Gate(GateKind::Const1),
        "DFF" => Kind::Dff,
        other => {
            return Err(Error::BenchSyntax {
                line,
                msg: format!("unknown gate type `{other}`"),
            })
        }
    };
    Ok(k)
}

fn tokenize(text: &str) -> Result<Vec<(usize, Stmt)>, Error> {
    let mut stmts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let syntax = |msg: String| Error::BenchSyntax { line: lineno, msg };
        if let Some(eq) = line.find('=') {
            let target = line[..eq].trim().to_owned();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| syntax(format!("expected `(` in `{rhs}`")))?;
            let close = rhs
                .rfind(')')
                .ok_or_else(|| syntax(format!("expected `)` in `{rhs}`")))?;
            if close < open {
                return Err(syntax("mismatched parentheses".to_owned()));
            }
            let kind = parse_kind(rhs[..open].trim(), lineno)?;
            let inner = rhs[open + 1..close].trim();
            let args: Vec<String> = if inner.is_empty() {
                Vec::new()
            } else {
                inner.split(',').map(|a| a.trim().to_owned()).collect()
            };
            if args.iter().any(|a| a.is_empty()) {
                return Err(syntax("empty fanin name".to_owned()));
            }
            if target.is_empty() {
                return Err(syntax("empty assignment target".to_owned()));
            }
            stmts.push((lineno, Stmt::Assign { target, kind, args }));
        } else {
            let up = line.to_ascii_uppercase();
            let grab = |prefix: &str| -> Option<String> {
                if up.starts_with(prefix) {
                    let rest = line[prefix.len()..].trim();
                    let rest = rest.strip_prefix('(')?.trim_end();
                    let rest = rest.strip_suffix(')')?.trim();
                    if rest.is_empty() {
                        None
                    } else {
                        Some(rest.to_owned())
                    }
                } else {
                    None
                }
            };
            if let Some(name) = grab("INPUT") {
                stmts.push((lineno, Stmt::Input(name)));
            } else if let Some(name) = grab("OUTPUT") {
                stmts.push((lineno, Stmt::Output(name)));
            } else {
                return Err(syntax(format!("unrecognized statement `{line}`")));
            }
        }
    }
    Ok(stmts)
}

/// Parses a `.bench` netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`Error::BenchSyntax`] for malformed lines,
/// [`Error::DuplicateName`] / [`Error::UndefinedName`] for name problems and
/// [`Error::CombinationalCycle`] if the combinational part is cyclic.
pub fn parse(text: &str) -> Result<Circuit, Error> {
    parse_named(text, "bench")
}

/// Like [`parse`], giving the circuit an explicit name.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_named(text: &str, name: &str) -> Result<Circuit, Error> {
    let stmts = tokenize(text)?;
    let mut circuit = Circuit::new(name);
    let mut ids: HashMap<String, NetId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut assigns: Vec<(usize, String, Kind, Vec<String>)> = Vec::new();

    // Pass 1: create all defined nets. Inputs and DFF outputs become inputs
    // immediately (DFF q converted to a flip-flop at the end); gate outputs
    // are recorded for topological creation in pass 2.
    for (line, stmt) in stmts {
        match stmt {
            Stmt::Input(n) => {
                if ids.contains_key(&n) {
                    return Err(Error::DuplicateName(n));
                }
                let id = circuit.add_input(&n);
                ids.insert(n, id);
            }
            Stmt::Output(n) => outputs.push(n),
            Stmt::Assign { target, kind, args } => {
                if ids.contains_key(&target) || assigns.iter().any(|(_, t, _, _)| *t == target) {
                    return Err(Error::DuplicateName(target));
                }
                if kind == Kind::Dff {
                    if args.len() != 1 {
                        return Err(Error::BenchSyntax {
                            line,
                            msg: format!("DFF takes one fanin, got {}", args.len()),
                        });
                    }
                    let id = circuit.add_input(&target);
                    ids.insert(target.clone(), id);
                }
                assigns.push((line, target, kind, args));
            }
        }
    }

    // Pass 2: create gates in dependency order via a worklist.
    let mut pending: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();
    let mut dffs: Vec<(String, String)> = Vec::new();
    for (line, target, kind, args) in assigns {
        match kind {
            Kind::Dff => dffs.push((target, args.into_iter().next().expect("arity checked"))),
            Kind::Gate(g) => pending.push((line, target, g, args)),
        }
    }
    loop {
        let before = pending.len();
        let mut still = Vec::new();
        for (line, target, kind, args) in pending {
            if args.iter().all(|a| ids.contains_key(a)) {
                let fanin: Vec<NetId> = args.iter().map(|a| ids[a]).collect();
                let id = circuit
                    .add_gate(kind, fanin, &target)
                    .map_err(|e| Error::BenchSyntax {
                        line,
                        msg: e.to_string(),
                    })?;
                ids.insert(target, id);
            } else {
                still.push((line, target, kind, args));
            }
        }
        pending = still;
        if pending.is_empty() {
            break;
        }
        if pending.len() == before {
            // Either an undefined name or a combinational cycle.
            let (line, _, _, args) = &pending[0];
            let missing = args
                .iter()
                .find(|a| !ids.contains_key(*a))
                .cloned()
                .unwrap_or_default();
            // Distinguish: if the missing name is defined by another pending
            // assignment, it is a cycle; otherwise it is undefined.
            let defined_later = pending.iter().any(|(_, t, _, _)| *t == missing);
            return Err(if defined_later {
                Error::CombinationalCycle(missing)
            } else {
                Error::BenchSyntax {
                    line: *line,
                    msg: format!("undefined net `{missing}`"),
                }
            });
        }
    }

    // Pass 3: wire flip-flops and outputs.
    for (q_name, d_name) in dffs {
        let d = *ids
            .get(&d_name)
            .ok_or_else(|| Error::UndefinedName(d_name.clone()))?;
        let q = ids[&q_name];
        circuit
            .convert_input_to_dff(q, d)
            .expect("q created as input in pass 1");
    }
    for out in outputs {
        let id = *ids.get(&out).ok_or(Error::UndefinedName(out))?;
        circuit.mark_output(id);
    }
    circuit.validate()?;
    Ok(circuit)
}

/// Serializes a circuit to `.bench` text.
///
/// Gates are emitted in topological order so the output parses in one
/// streaming pass with single-definition-before-use tools.
///
/// # Panics
///
/// Panics if the circuit fails [`Circuit::validate`] (cyclic or undriven
/// nets); write only validated circuits.
pub fn write(circuit: &Circuit) -> String {
    let lv = Levelization::build(circuit).expect("circuit must be acyclic to serialize");
    let mut s = String::new();
    s.push_str(&format!("# {}\n", circuit.name()));
    s.push_str(&format!(
        "# {} inputs, {} outputs, {} DFFs, {} gates\n",
        circuit.primary_inputs().len(),
        circuit.primary_outputs().len(),
        circuit.dffs().len(),
        circuit.num_gates()
    ));
    for &pi in circuit.primary_inputs() {
        s.push_str(&format!("INPUT({})\n", circuit.net(pi).name()));
    }
    for &po in circuit.primary_outputs() {
        s.push_str(&format!("OUTPUT({})\n", circuit.net(po).name()));
    }
    for dff in circuit.dffs() {
        s.push_str(&format!(
            "{} = DFF({})\n",
            circuit.net(dff.q).name(),
            circuit.net(dff.d).name()
        ));
    }
    for &id in lv.order() {
        if let Some(g) = circuit.gate(id) {
            let fanins: Vec<&str> = g.fanin.iter().map(|&f| circuit.net(f).name()).collect();
            s.push_str(&format!(
                "{} = {}({})\n",
                circuit.net(id).name(),
                g.kind.as_str(),
                fanins.join(", ")
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17() {
        let c = parse(C17).unwrap();
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.num_gates(), 6);
        assert_eq!(c.dffs().len(), 0);
    }

    #[test]
    fn parse_out_of_order_definitions() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUFF(a)\n";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn parse_sequential() {
        let text = "\
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(a, q)
y = NOT(q)
";
        let c = parse(text).unwrap();
        assert_eq!(c.dffs().len(), 1);
        assert_eq!(c.comb_inputs().len(), 2);
        assert_eq!(c.comb_outputs().len(), 2);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let c = parse(C17).unwrap();
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        assert_eq!(c.num_gates(), c2.num_gates());
        assert_eq!(c.primary_inputs().len(), c2.primary_inputs().len());
        assert_eq!(c.primary_outputs().len(), c2.primary_outputs().len());
    }

    #[test]
    fn roundtrip_sequential() {
        let text = "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = XOR(a, q)\ny = NOT(q)\n";
        let c = parse(text).unwrap();
        let c2 = parse(&write(&c)).unwrap();
        assert_eq!(c2.dffs().len(), 1);
        assert_eq!(c2.num_gates(), c.num_gates());
    }

    #[test]
    fn const_extension() {
        let text = "OUTPUT(y)\nc = CONST1()\ny = NOT(c)\n";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 2);
        let c2 = parse(&write(&c)).unwrap();
        assert_eq!(c2.num_gates(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\nINPUT(a)  # trailing\n\nOUTPUT(a)\n";
        let c = parse(text).unwrap();
        assert_eq!(c.primary_inputs().len(), 1);
        assert_eq!(c.primary_outputs().len(), 1);
    }

    #[test]
    fn error_unknown_gate() {
        let e = parse("INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(e, Error::BenchSyntax { line: 2, .. }), "{e}");
    }

    #[test]
    fn error_undefined_net() {
        let e = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n").unwrap_err();
        assert!(matches!(e, Error::BenchSyntax { .. }), "{e}");
    }

    #[test]
    fn error_duplicate_definition() {
        let e = parse("INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(matches!(e, Error::DuplicateName(_)), "{e}");
    }

    #[test]
    fn error_cycle() {
        let e = parse("INPUT(a)\nx = NOT(y)\ny = NOT(x)\n").unwrap_err();
        assert!(matches!(e, Error::CombinationalCycle(_)), "{e}");
    }

    #[test]
    fn error_output_of_undefined() {
        let e = parse("INPUT(a)\nOUTPUT(nope)\n").unwrap_err();
        assert!(matches!(e, Error::UndefinedName(_)), "{e}");
    }

    #[test]
    fn error_dff_bad_arity() {
        let e = parse("INPUT(a)\nq = DFF(a, a)\n").unwrap_err();
        assert!(matches!(e, Error::BenchSyntax { .. }), "{e}");
    }

    #[test]
    fn dialect_buf_and_inv() {
        let c = parse("INPUT(a)\nOUTPUT(y)\nx = BUF(a)\ny = INV(x)\n").unwrap();
        assert_eq!(c.num_gates(), 2);
    }
}
