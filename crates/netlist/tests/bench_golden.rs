//! Golden-file tests for the `.bench` parser/writer: checked-in ISCAS-89
//! fixtures must reach a parse→write→parse fixpoint, i.e. one write
//! normalizes the text and further round trips change nothing.

use netlist::bench;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// parse→write→parse must be a fixpoint: the circuit from the normalized
/// text equals the original in structure counts and function, and writing
/// it again reproduces the normalized text byte for byte.
fn assert_fixpoint(text: &str, patterns: usize) {
    let first = bench::parse(text).expect("fixture parses");
    first.validate().expect("fixture validates");
    let written = bench::write(&first);
    let second = bench::parse(&written).expect("normalized text parses");
    // Structural agreement.
    assert_eq!(first.primary_inputs().len(), second.primary_inputs().len());
    assert_eq!(first.primary_outputs().len(), second.primary_outputs().len());
    assert_eq!(first.dffs().len(), second.dffs().len());
    assert_eq!(first.num_gates(), second.num_gates());
    // Functional agreement over random patterns.
    assert_eq!(
        gatesim::equiv::check_random(&first, &second, patterns, 0xF1).expect("simulable"),
        None,
        "write→parse changed the function"
    );
    // Byte-level fixpoint: a second write is identical to the first.
    assert_eq!(bench::write(&second), written, "write is not idempotent");
}

#[test]
fn comb_fixture_roundtrip_is_fixpoint() {
    let text = fixture("s_toy_comb.bench");
    assert_fixpoint(&text, 1024);
    // Sanity-pin the fixture's shape so silent edits are caught.
    let c = bench::parse(&text).unwrap();
    assert_eq!(c.primary_inputs().len(), 4);
    assert_eq!(c.primary_outputs().len(), 3);
    assert_eq!(c.dffs().len(), 0);
    assert_eq!(c.num_gates(), 13);
}

#[test]
fn seq_fixture_roundtrip_is_fixpoint() {
    let text = fixture("s_toy_seq.bench");
    assert_fixpoint(&text, 512);
    let c = bench::parse(&text).unwrap();
    assert_eq!(c.primary_inputs().len(), 2);
    assert_eq!(c.primary_outputs().len(), 1);
    assert_eq!(c.dffs().len(), 3);
    assert_eq!(c.num_gates(), 5);
}

/// The same fixpoint law, property-tested over random generated circuits
/// (this is also the workspace's smoke test that the `qcheck` dev-dependency
/// cycle netlist → qcheck → netlist builds cleanly).
#[test]
fn random_circuits_reach_write_fixpoint() {
    qcheck::qcheck!(
        "random_circuits_reach_write_fixpoint",
        qcheck::Config::with_cases(24),
        (seed, inputs, outputs, gates) in (0u64..5000, 3usize..8, 2usize..5, 10usize..60) => {
            let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
            // One parse normalizes (e.g. the `# name` header is not part of
            // the circuit and resets to the default); after that, write must
            // be an exact fixpoint.
            let normalized = bench::write(&bench::parse(&bench::write(&c)).unwrap());
            let reparsed = bench::parse(&normalized).unwrap();
            qcheck::prop_assert_eq!(bench::write(&reparsed), normalized);
        }
    );
}
