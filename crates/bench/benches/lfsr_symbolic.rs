//! Microbenchmark: GF(2) symbolic LFSR analysis (threat-(d) machinery and
//! the key-sequence solver).

use criterion::{criterion_group, criterion_main, Criterion};
use lfsr::{KeySequence, LfsrConfig, UnlockSchedule};

fn schedule(width: usize, seeds: usize, gap: usize) -> UnlockSchedule {
    let cfg = LfsrConfig::with_tap_spacing(width, 8);
    let mut state = 0x5eedu64;
    let mut bit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };
    let ss: Vec<Vec<bool>> = (0..seeds)
        .map(|_| (0..width).map(|_| bit()).collect())
        .collect();
    UnlockSchedule::new(cfg, KeySequence::new(ss, vec![gap; seeds]))
}

fn bench_symbolic(c: &mut Criterion) {
    let sched = schedule(128, 8, 4);
    c.bench_function("symbolic_state_128bit_8seeds", |b| {
        b.iter(|| lfsr::symbolic::SymbolicState::of_schedule(std::hint::black_box(&sched)));
    });
}

fn bench_solve(c: &mut Criterion) {
    let sched = schedule(128, 4, 2);
    let target: Vec<bool> = (0..128).map(|i| i % 3 == 0).collect();
    c.bench_function("solve_key_sequence_128bit", |b| {
        b.iter(|| {
            sched
                .solve_seeds_for_key(std::hint::black_box(&target))
                .expect("full reseed points")
        });
    });
}

criterion_group!(benches, bench_symbolic, bench_solve);
criterion_main!(benches);
