//! Microbenchmark: GF(2) symbolic LFSR analysis (threat-(d) machinery and
//! the key-sequence solver).

use lfsr::{KeySequence, LfsrConfig, UnlockSchedule};
use orap_bench::timing::Harness;

fn schedule(width: usize, seeds: usize, gap: usize) -> UnlockSchedule {
    let cfg = LfsrConfig::with_tap_spacing(width, 8);
    let mut state = 0x5eedu64;
    let mut bit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };
    let ss: Vec<Vec<bool>> = (0..seeds)
        .map(|_| (0..width).map(|_| bit()).collect())
        .collect();
    UnlockSchedule::new(cfg, KeySequence::new(ss, vec![gap; seeds]))
}

fn main() {
    let mut h = Harness::new("lfsr_symbolic");

    let sched = schedule(128, 8, 4);
    h.bench("symbolic_state_128bit_8seeds", || {
        lfsr::symbolic::SymbolicState::of_schedule(std::hint::black_box(&sched))
    });

    let sched = schedule(128, 4, 2);
    let target: Vec<bool> = (0..128).map(|i| i % 3 == 0).collect();
    h.bench("solve_key_sequence_128bit", || {
        sched
            .solve_seeds_for_key(std::hint::black_box(&target))
            .expect("full reseed points")
    });

    h.finish().expect("write results");
}
