//! Compiled-netlist engine benchmark: hill-climb rescoring and fault-sim
//! batch wall-clock over a fixed synthetic circuit set.
//!
//! Two workloads exercise the evaluation layers the engine refactor
//! targets:
//!
//! 1. **hill** — the hill-climbing attack against fixed stimulus/response
//!    pairs. Every candidate key-bit flip triggers a rescore of the whole
//!    pattern set, which is exactly the repeated-re-simulation pattern the
//!    incremental kernel accelerates.
//! 2. **fsim** — one 64-pattern batch of parallel fault simulation over the
//!    collapsed fault list, at 1, 2 and 8 worker threads. The detected set
//!    must be bit-identical across thread counts.
//!
//! Results go to `results/BENCH_engine.json`; a checked-in pre-refactor
//! baseline (`results/BENCH_engine_baseline.json`) at the same scale yields
//! per-workload geometric-mean speedups.
//!
//! Environment:
//! - `ORAP_BENCH_SMOKE=1` — CI smoke mode: smaller scale, one sample,
//!   written to `results/BENCH_engine_smoke.json` instead.
//! - `BENCH_SAMPLES` — samples per workload (median reported; default 3).
//! - `ORAP_ENGINE_BENCH_SCALE` — override the circuit scale factor.

use std::time::Instant;

use attacks::hill_climbing::{attack_with_responses, HillClimbConfig};
use exec::Pool;
use gatesim::CombSim;
use locking::weighted::WllConfig;
use locking::LockedCircuit;
use netlist::generate::{self, BenchmarkId};
use netlist::rng::SplitMix64;
use orap_bench::json::{parse, Json};
use orap_bench::{control_width, json_object, key_bits, write_results};

/// Circuits the engine workloads run over (a mid-size slice of the Table 2
/// set; the two largest ITC'99 members are left to the SAT bench).
const CIRCUITS: [BenchmarkId; 3] = [BenchmarkId::S38417, BenchmarkId::B20, BenchmarkId::B22];

/// Patterns in the hill-climb stimulus/response set (4 word-batches).
const HILL_PATTERNS: usize = 256;

fn lock_for(id: BenchmarkId, scale: f64) -> LockedCircuit {
    let profile = generate::profile(id).scaled(scale);
    let design = generate::synthesize(&profile).expect("synthesizable profile");
    locking::weighted::lock(
        &design,
        &WllConfig {
            key_bits: key_bits(id, scale),
            control_width: control_width(id),
            seed: 0x5A7 ^ id as u64,
        },
    )
    .expect("lockable")
}

/// Deterministic stimulus/response pairs under the correct key, the input
/// the hill climber rescoring loop consumes.
fn oracle_responses(locked: &LockedCircuit, patterns: usize, seed: u64) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let sim = CombSim::new(&locked.circuit).expect("acyclic");
    let key_pos: Vec<usize> = locked
        .key_inputs
        .iter()
        .map(|k| sim.inputs().iter().position(|n| n == k).expect("key input"))
        .collect();
    let data_pos: Vec<usize> = (0..sim.inputs().len())
        .filter(|i| !key_pos.contains(i))
        .collect();
    let mut rng = SplitMix64::new(seed);
    let mut xs = Vec::with_capacity(patterns);
    let mut ys = Vec::with_capacity(patterns);
    for _ in 0..patterns {
        let x: Vec<bool> = (0..data_pos.len()).map(|_| rng.bool()).collect();
        let mut input = vec![false; sim.inputs().len()];
        for (&p, &b) in data_pos.iter().zip(&x) {
            input[p] = b;
        }
        for (&p, &b) in key_pos.iter().zip(&locked.correct_key) {
            input[p] = b;
        }
        xs.push(x);
        ys.push(sim.eval_bools(&input));
    }
    (xs, ys)
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Geometric-mean speedup of `new` over `old` across paired measurements.
fn geomean_speedup(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(old, new)| (old / new.max(1.0)).ln())
        .sum();
    Some((log_sum / pairs.len() as f64).exp())
}

/// Extracts `(circuit, field)` rows from the baseline document if its scale
/// matches this run.
fn baseline_rows(doc: &Json, scale: f64, field: &str) -> Vec<(String, f64)> {
    let Json::Object(fields) = doc else {
        return Vec::new();
    };
    let matches_scale = fields.iter().any(|(k, v)| {
        k == "scale"
            && match v {
                Json::Float(f) => (f - scale).abs() < 1e-12,
                _ => false,
            }
    });
    if !matches_scale {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (k, v) in fields {
        if k != "rows" {
            continue;
        }
        let Json::Array(rows) = v else { continue };
        for row in rows {
            let Json::Object(cols) = row else { continue };
            let mut name = None;
            let mut wall = None;
            for (ck, cv) in cols {
                if ck == "circuit" {
                    if let Json::Str(s) = cv {
                        name = Some(s.clone());
                    }
                }
                if ck == field {
                    match cv {
                        Json::UInt(n) => wall = Some(*n as f64),
                        Json::Float(f) => wall = Some(*f),
                        _ => {}
                    }
                }
            }
            if let (Some(n), Some(w)) = (name, wall) {
                out.push((n, w));
            }
        }
    }
    out
}

fn main() {
    let smoke = std::env::var("ORAP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let scale = std::env::var("ORAP_ENGINE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.01 } else { 0.05 });
    let samples = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);

    let hill_config = HillClimbConfig {
        sample_patterns: HILL_PATTERNS,
        restarts: 2,
        max_sweeps: 4,
        seed: 0xEC0,
    };

    let mut rows = Vec::new();
    for &id in &CIRCUITS {
        let locked = lock_for(id, scale);
        let (patterns, responses) = oracle_responses(&locked, HILL_PATTERNS, 0xBEEF ^ id as u64);

        // Workload 1: hill-climb rescoring (median over samples).
        let mut hill_walls = Vec::with_capacity(samples);
        let mut hill_out = attack_with_responses(&locked, &patterns, &responses, &hill_config, 0);
        for _ in 0..samples {
            let t = Instant::now();
            hill_out = attack_with_responses(&locked, &patterns, &responses, &hill_config, 0);
            hill_walls.push(t.elapsed().as_nanos());
        }
        let hill_wall_ns = median(hill_walls) as u64;

        // Workload 2: one fault-sim batch at 1/2/8 threads, results
        // asserted bit-identical.
        let design = {
            let profile = generate::profile(id).scaled(scale);
            generate::synthesize(&profile).expect("synthesizable profile")
        };
        let faults = atpg::collapse(&design, atpg::enumerate_faults(&design));
        let cc = std::sync::Arc::new(
            netlist::CompiledCircuit::compile(&design).expect("acyclic"),
        );
        let compile_ns = cc.compile_ns();
        let fsim = atpg::fsim::FaultSim::from_compiled(std::sync::Arc::clone(&cc));
        let mut rng = SplitMix64::new(0xF51 ^ id as u64);
        let words: Vec<u64> = (0..design.comb_inputs().len())
            .map(|_| rng.next_u64())
            .collect();
        let mut fsim_walls = [0u64; 3];
        let mut detected_ref: Option<Vec<usize>> = None;
        let mut fsim_engine = netlist::EngineCounters::default();
        for (ti, threads) in [1usize, 2, 8].into_iter().enumerate() {
            let pool = Pool::with_threads(threads);
            let mut walls = Vec::with_capacity(samples);
            let mut detected = Vec::new();
            for _ in 0..samples {
                let t = Instant::now();
                let (d, counters) = fsim.detect_batch_par_counted(&pool, &words, &faults);
                walls.push(t.elapsed().as_nanos());
                detected = d;
                fsim_engine = counters;
            }
            match &detected_ref {
                None => detected_ref = Some(detected),
                Some(reference) => assert_eq!(
                    reference, &detected,
                    "{}: detected set differs at {threads} threads",
                    id.as_str()
                ),
            }
            fsim_walls[ti] = median(walls) as u64;
        }
        let detected = detected_ref.expect("at least one thread count ran");

        println!(
            "engine/{}@{scale}  hill={}  fsim t1={} t2={} t8={}  faults={} detected={}",
            id.as_str(),
            orap_bench::timing::human_time(hill_wall_ns as f64),
            orap_bench::timing::human_time(fsim_walls[0] as f64),
            orap_bench::timing::human_time(fsim_walls[1] as f64),
            orap_bench::timing::human_time(fsim_walls[2] as f64),
            faults.len(),
            detected.len(),
        );
        rows.push(json_object! {
            circuit: id.as_str(),
            gates: locked.circuit.num_gates(),
            key_bits: locked.key_inputs.len(),
            compile_ns: compile_ns,
            hill_wall_ns: hill_wall_ns,
            hill_iterations: hill_out.iterations,
            hill_key_found: hill_out.key.is_some(),
            hill_engine: hill_out.telemetry.engine,
            faults: faults.len(),
            detected: detected.len(),
            fsim_wall_t1_ns: fsim_walls[0],
            fsim_wall_t2_ns: fsim_walls[1],
            fsim_wall_t8_ns: fsim_walls[2],
            fsim_engine: fsim_engine,
        });
    }

    // Optional speedups vs the checked-in pre-refactor baseline.
    let baseline_doc = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_engine_baseline.json"),
    )
    .ok()
    .and_then(|text| parse(text.trim_end()).ok());
    let speedup_of = |field: &str| {
        baseline_doc.as_ref().and_then(|doc| {
            let old = baseline_rows(doc, scale, field);
            let pairs: Vec<(f64, f64)> = rows
                .iter()
                .filter_map(|row| {
                    let Json::Object(cols) = row else { return None };
                    let name = cols.iter().find_map(|(k, v)| match (k.as_str(), v) {
                        ("circuit", Json::Str(s)) => Some(s.clone()),
                        _ => None,
                    })?;
                    let new_wall = cols.iter().find_map(|(k, v)| {
                        if k == field {
                            if let Json::UInt(n) = v {
                                return Some(*n as f64);
                            }
                        }
                        None
                    })?;
                    let old_wall = old.iter().find(|(n, _)| *n == name)?.1;
                    Some((old_wall, new_wall))
                })
                .collect();
            geomean_speedup(&pairs)
        })
    };
    let hill_speedup = speedup_of("hill_wall_ns");
    let fsim_speedup = speedup_of("fsim_wall_t8_ns");
    if let Some(s) = hill_speedup {
        println!("engine/hill speedup_vs_baseline  geomean {s:.2}x");
    }
    if let Some(s) = fsim_speedup {
        println!("engine/fsim speedup_vs_baseline  geomean {s:.2}x");
    }

    let doc = json_object! {
        harness: "engine",
        scale: scale,
        smoke: smoke,
        samples: samples,
        hill_patterns: HILL_PATTERNS,
        rows: rows,
        hill_speedup_geomean_vs_baseline: hill_speedup,
        fsim_speedup_geomean_vs_baseline: fsim_speedup,
    };
    let name = if smoke { "BENCH_engine_smoke" } else { "BENCH_engine" };
    let path = write_results(name, &doc).expect("write results");
    println!("engine: results written to {}", path.display());
}
