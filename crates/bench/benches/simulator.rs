//! Microbenchmark: bit-parallel simulator throughput (the engine behind the
//! Table I Hamming-distance measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId as CbId, Criterion, Throughput};
use gatesim::CombSim;
use netlist::generate::{self, BenchmarkId};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("comb_sim_eval_words");
    for (label, scale) in [("b20@0.02", 0.02), ("b20@0.05", 0.05)] {
        let profile = generate::profile(BenchmarkId::B20).scaled(scale);
        let circuit = generate::synthesize(&profile).expect("profile valid");
        let sim = CombSim::new(&circuit).expect("acyclic");
        let mut rng = netlist::rng::SplitMix64::new(1);
        let input: Vec<u64> = (0..sim.inputs().len()).map(|_| rng.next_u64()).collect();
        group.throughput(Throughput::Elements(64 * circuit.num_gates() as u64));
        group.bench_with_input(CbId::from_parameter(label), &input, |b, input| {
            b.iter(|| sim.eval_words(std::hint::black_box(input)));
        });
    }
    group.finish();
}

fn bench_hd(c: &mut Criterion) {
    let profile = generate::profile(BenchmarkId::B20).scaled(0.02);
    let circuit = generate::synthesize(&profile).expect("profile valid");
    let locked = locking::weighted::lock(
        &circuit,
        &locking::weighted::WllConfig {
            key_bits: 24,
            control_width: 3,
            seed: 1,
        },
    )
    .expect("lockable");
    c.bench_function("hamming_distance_1k_patterns", |b| {
        b.iter(|| {
            gatesim::hd::average_hd_random_keys(
                &locked.circuit,
                &locked.key_inputs,
                &locked.correct_key,
                2,
                1024,
                7,
            )
            .expect("simulable")
        });
    });
}

criterion_group!(benches, bench_simulator, bench_hd);
criterion_main!(benches);
