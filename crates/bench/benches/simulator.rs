//! Microbenchmark: bit-parallel simulator throughput (the engine behind the
//! Table I Hamming-distance measurement).

use gatesim::CombSim;
use netlist::generate::{self, BenchmarkId};
use orap_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("simulator");

    for (label, scale) in [("b20@0.02", 0.02), ("b20@0.05", 0.05)] {
        let profile = generate::profile(BenchmarkId::B20).scaled(scale);
        let circuit = generate::synthesize(&profile).expect("profile valid");
        let sim = CombSim::new(&circuit).expect("acyclic");
        let mut rng = netlist::rng::SplitMix64::new(1);
        let input: Vec<u64> = (0..sim.inputs().len()).map(|_| rng.next_u64()).collect();
        h.bench_throughput(
            &format!("comb_sim_eval_words/{label}"),
            64 * circuit.num_gates() as u64,
            || sim.eval_words(std::hint::black_box(&input)),
        );
    }

    let profile = generate::profile(BenchmarkId::B20).scaled(0.02);
    let circuit = generate::synthesize(&profile).expect("profile valid");
    let locked = locking::weighted::lock(
        &circuit,
        &locking::weighted::WllConfig {
            key_bits: 24,
            control_width: 3,
            seed: 1,
        },
    )
    .expect("lockable");
    h.bench("hamming_distance_1k_patterns", || {
        gatesim::hd::average_hd_random_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            2,
            1024,
            7,
        )
        .expect("simulable")
    });

    // Thread-scaling trajectory: the same pattern-parallel workloads on a
    // 1-thread pool versus the machine's full pool (`ORAP_THREADS`
    // honoured). Benchmark names carry the thread count so successive
    // BENCH_simulator.json snapshots plot the scaling curve.
    let sim = CombSim::new(&locked.circuit).expect("acyclic");
    let mut rng = netlist::rng::SplitMix64::new(3);
    let batches: Vec<Vec<u64>> = (0..64)
        .map(|_| (0..sim.inputs().len()).map(|_| rng.next_u64()).collect())
        .collect();
    let elems = 64 * 64 * locked.circuit.num_gates() as u64;
    let env_pool = exec::Pool::from_env();
    let mut pools = vec![exec::Pool::with_threads(1)];
    if env_pool.threads() > 1 {
        pools.push(env_pool);
    }
    for pool in pools {
        let t = pool.threads();
        h.bench_throughput(&format!("eval_words_many_64batches/t{t}"), elems, || {
            sim.eval_words_many(&pool, std::hint::black_box(&batches))
        });
        h.bench(&format!("hamming_distance_8keys/t{t}"), || {
            gatesim::hd::average_hd_random_keys_on(
                &pool,
                &locked.circuit,
                &locked.key_inputs,
                &locked.correct_key,
                8,
                1024,
                7,
            )
            .expect("simulable")
        });
    }

    h.finish().expect("write results");
}
