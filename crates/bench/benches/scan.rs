//! Scan-obfuscation workload harness: DynUnlock against a dynamically
//! keyed scan chain plus the K-Gate SAT leg, with the scan-specific
//! mutation kills as a gate.
//!
//! Like the `conformance` harness this is a *gate*, not a timing bench: it
//! exits non-zero if the clean scancheck battery fails, if DynUnlock does
//! not recover a session-exact seed, or if any of the three scan mutants
//! survives its battery.
//!
//! Results go to `results/BENCH_scan.json`; with `ORAP_BENCH_SMOKE=1` the
//! smoke battery runs instead and writes `results/BENCH_scan_smoke.json`
//! (the file checked into the repository — regenerate it when the scan
//! workloads change).

use std::time::Instant;

use attacks::dyn_unlock::ScanSessionOracle;
use attacks::engine::{self, AttackCtl};
use conformance::mutation::Scale;
use conformance::scancheck::{self, ScanSabotage};
use locking::scan_obfuscation::{self, ScanObfConfig, UnrollOptions};
use orap_bench::json::Json;
use orap_bench::{json_object, write_results};

fn main() {
    let smoke = std::env::var("ORAP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let scale = if smoke { Scale::Smoke } else { Scale::Full };
    let start = Instant::now();

    // --- DynUnlock against the battery's scan-obfuscation workload. -------
    let (design, config) = if smoke {
        (
            netlist::samples::counter(8),
            ScanObfConfig {
                key_bits: 8,
                num_chains: 2,
                invert_spacing: 2,
                swap_spacing: 2,
                seed: 3,
            },
        )
    } else {
        (netlist::samples::counter(16), ScanObfConfig::balanced(16, 3))
    };
    let locked = scan_obfuscation::lock(&design, &config).expect("lockable");
    let unrolled = locked.unroll(&UnrollOptions::default()).expect("acyclic");
    let eng = engine::by_name("dyn_unlock").expect("registered engine");
    let mut oracle = ScanSessionOracle::new(&locked, &unrolled).expect("chip oracle");
    let out = engine::run(eng.as_ref(), &unrolled.locked, &mut oracle, &mut AttackCtl::new());
    let key_exact = out
        .key
        .as_ref()
        .map(|k| attacks::verify::key_exact_counterexample(&unrolled.locked, k).is_none())
        .unwrap_or(false);
    println!(
        "dyn_unlock ({scale:?}): depth {} session, {} iterations, {} queries, \
         seed recovered: {}, exact: {key_exact}",
        unrolled.unroll_depth(),
        out.iterations,
        out.oracle_queries,
        out.key.is_some(),
    );

    // --- Scan-specific mutation kills (plus the clean baseline). ----------
    let baseline = scancheck::scan_battery(None, scale);
    let mutants = [
        ScanSabotage::WrongHopPermutation,
        ScanSabotage::DropUnrollFrame,
        ScanSabotage::DecodeTableSwap,
    ];
    let mut rows: Vec<Json> = Vec::new();
    let mut kills = 0usize;
    for sab in mutants {
        let t = Instant::now();
        let verdict = scancheck::scan_battery(Some(sab), scale);
        let killed = verdict.is_err();
        kills += killed as usize;
        println!(
            "  {:<24} {}",
            format!("{sab:?}"),
            if killed { "killed" } else { "SURVIVED" }
        );
        rows.push(json_object! {
            mutant: format!("{sab:?}"),
            killed: killed,
            killed_by: verdict.err().unwrap_or_default(),
            wall_ns: t.elapsed().as_nanos() as u64,
        });
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    println!(
        "scan kill count: {kills}/{} (baseline {})",
        mutants.len(),
        if baseline.is_ok() { "ok" } else { "FAILED" },
    );

    let doc = json_object! {
        harness: "scan",
        smoke: smoke,
        scheme: unrolled.locked.scheme,
        key_bits: config.key_bits,
        num_chains: unrolled.num_chains,
        unroll_depth: unrolled.unroll_depth(),
        load_cycles: unrolled.load_cycles,
        unload_cycles: unrolled.unload_cycles,
        frame_bits: unrolled.frame_bits(),
        dyn_unlock: json_object! {
            key_recovered: out.key.is_some(),
            key_exact: key_exact,
            iterations: out.iterations,
            oracle_queries: out.oracle_queries,
            solver: out.telemetry.solver,
            clauses: out.telemetry.clauses,
            vars: out.telemetry.vars,
        },
        baseline_ok: baseline.is_ok(),
        baseline_detail: baseline.as_ref().err().cloned().unwrap_or_default(),
        scan_mutants: mutants.len(),
        scan_kills: kills,
        rows: rows,
        wall_ns: wall_ns,
    };
    let name = if smoke { "BENCH_scan_smoke" } else { "BENCH_scan" };
    let path = write_results(name, &doc).expect("write results");
    println!("results -> {}", path.display());

    assert!(
        baseline.is_ok(),
        "clean scancheck battery failed: {}",
        baseline.err().unwrap_or_default()
    );
    assert!(key_exact, "dyn_unlock must recover a session-exact seed");
    assert_eq!(kills, mutants.len(), "a scan mutant survived its battery");
}
