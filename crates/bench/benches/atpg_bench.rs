//! Microbenchmark: fault simulation and full ATPG throughput (Table II's
//! engine).

use atpg::{fsim::FaultSim, run_atpg, AtpgConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_fault_sim(c: &mut Criterion) {
    let circuit = netlist::generate::random_comb(11, 16, 10, 1000).expect("generate");
    let faults = atpg::collapse(&circuit, atpg::enumerate_faults(&circuit));
    let mut sim = FaultSim::new(&circuit).expect("acyclic");
    let mut rng = netlist::rng::SplitMix64::new(2);
    let words: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
    let mut group = c.benchmark_group("fault_simulation");
    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_function("event_driven_batch_1k_gates", |b| {
        b.iter(|| sim.detect_batch(std::hint::black_box(&words), &faults));
    });
    group.finish();
}

fn bench_full_atpg(c: &mut Criterion) {
    let circuit = netlist::generate::random_comb(13, 12, 8, 400).expect("generate");
    let cfg = AtpgConfig {
        random_patterns: 512,
        backtrack_limit: 200,
        seed: 1,
    };
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    group.bench_function("full_flow_400_gates", |b| {
        b.iter(|| run_atpg(&circuit, &cfg).expect("acyclic"));
    });
    group.finish();
}

criterion_group!(benches, bench_fault_sim, bench_full_atpg);
criterion_main!(benches);
