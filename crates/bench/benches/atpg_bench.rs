//! Microbenchmark: fault simulation and full ATPG throughput (Table II's
//! engine).

use atpg::{fsim::FaultSim, run_atpg, AtpgConfig};
use orap_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("atpg");

    let circuit = netlist::generate::random_comb(11, 16, 10, 1000).expect("generate");
    let faults = atpg::collapse(&circuit, atpg::enumerate_faults(&circuit));
    let mut sim = FaultSim::new(&circuit).expect("acyclic");
    let mut rng = netlist::rng::SplitMix64::new(2);
    let words: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
    h.bench_throughput(
        "fault_simulation/event_driven_batch_1k_gates",
        faults.len() as u64,
        || sim.detect_batch(std::hint::black_box(&words), &faults),
    );

    // Thread-scaling trajectory: the same fault batch on a 1-thread pool
    // versus the machine's full pool (`ORAP_THREADS` honoured). The
    // detected set is bit-identical across pool sizes; only wall time may
    // differ. Names carry the thread count for the perf trajectory.
    let env_pool = exec::Pool::from_env();
    let mut pools = vec![exec::Pool::with_threads(1)];
    if env_pool.threads() > 1 {
        pools.push(env_pool);
    }
    for pool in pools {
        let t = pool.threads();
        h.bench_throughput(
            &format!("fault_simulation/par_batch_1k_gates/t{t}"),
            faults.len() as u64,
            || sim.detect_batch_par(&pool, std::hint::black_box(&words), &faults),
        );
    }

    let circuit = netlist::generate::random_comb(13, 12, 8, 400).expect("generate");
    let cfg = AtpgConfig {
        random_patterns: 512,
        backtrack_limit: 200,
        seed: 1,
    };
    h.bench("full_flow_400_gates", || {
        run_atpg(&circuit, &cfg).expect("acyclic")
    });

    h.finish().expect("write results");
}
