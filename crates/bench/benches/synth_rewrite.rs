//! Microbenchmark: the AIG optimization pipeline used for Table I's
//! area/delay overhead columns.

use aigsynth::{optimize_aig, passes, Aig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn build_aig(gates: usize) -> Aig {
    let circuit = netlist::generate::random_comb(21, 24, 12, gates).expect("generate");
    Aig::from_circuit(&circuit).expect("acyclic")
}

fn bench_passes(c: &mut Criterion) {
    let aig = build_aig(2000);
    let mut group = c.benchmark_group("synth_passes_2k_gates");
    group.sample_size(20);
    group.throughput(Throughput::Elements(aig.num_ands() as u64));
    group.bench_function("strash", |b| {
        b.iter(|| passes::strash(std::hint::black_box(&aig)));
    });
    group.bench_function("balance", |b| {
        b.iter(|| passes::balance(std::hint::black_box(&aig)));
    });
    group.bench_function("rewrite_k4", |b| {
        b.iter(|| passes::rewrite(std::hint::black_box(&aig), 4));
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| optimize_aig(std::hint::black_box(&aig)));
    });
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
