//! Microbenchmark: the AIG optimization pipeline used for Table I's
//! area/delay overhead columns.

use aigsynth::{optimize_aig, passes, Aig};
use orap_bench::timing::Harness;

fn build_aig(gates: usize) -> Aig {
    let circuit = netlist::generate::random_comb(21, 24, 12, gates).expect("generate");
    Aig::from_circuit(&circuit).expect("acyclic")
}

fn main() {
    let mut h = Harness::new("synth_rewrite");

    let aig = build_aig(2000);
    let ands = aig.num_ands() as u64;
    h.bench_throughput("synth_passes_2k_gates/strash", ands, || {
        passes::strash(std::hint::black_box(&aig))
    });
    h.bench_throughput("synth_passes_2k_gates/balance", ands, || {
        passes::balance(std::hint::black_box(&aig))
    });
    h.bench_throughput("synth_passes_2k_gates/rewrite_k4", ands, || {
        passes::rewrite(std::hint::black_box(&aig), 4)
    });
    h.bench_throughput("synth_passes_2k_gates/full_pipeline", ands, || {
        optimize_aig(std::hint::black_box(&aig))
    });

    h.finish().expect("write results");
}
