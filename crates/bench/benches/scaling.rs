//! Million-gate scaling benchmark: streaming synthesis, compile, full
//! sweep and coarse-chunked parallel fault simulation at 10⁴, 10⁵ and 10⁶
//! gates.
//!
//! Per tier this measures, over the streamed artifact
//! ([`netlist::generate::synthesize_compiled`], no intermediate
//! [`netlist::Circuit`]):
//!
//! - `synth_ns` — end-to-end streaming synthesis + CSR assembly;
//! - `sweep_ns` — one 64-lane full sweep over every net;
//! - `fsim_wall_t{1,2,8}_ns` — one 64-pattern batch of event-driven fault
//!   simulation over a stride-sampled stem-fault list, on 1/2/8-thread
//!   pools; the detected sets are asserted bit-identical (the determinism
//!   contract), and the 8-thread pool's stage telemetry (including stolen
//!   chunk counts) is exported.
//!
//! The scaling gate: on a multi-core host `speedup_t8 = t1/t8` is the
//! headline near-linear-scaling number; on a single-core host (CI) the
//! honest expectation is `t8 ≈ t1`, so smoke mode asserts `t8 ≤ t1·5/4`
//! (plus a small absolute grace) — i.e. the chunked dispatch must not cost
//! anything even when it cannot win anything. `host_threads` is recorded so
//! readers can tell the two regimes apart. Full mode additionally asserts
//! the 10⁶-gate tier stays under the ~4 GiB RSS budget from the issue.
//!
//! Environment:
//! - `ORAP_BENCH_SMOKE=1` — CI smoke mode: 10⁴-gate tier only, one sample,
//!   written to `results/BENCH_scaling_smoke.json`.
//! - `BENCH_SAMPLES` — samples per measurement (median reported; default 3).

use std::sync::Arc;
use std::time::Instant;

use atpg::{Fault, FaultSim};
use exec::Pool;
use netlist::generate::{profile, synthesize_compiled, BenchmarkId};
use netlist::rng::SplitMix64;
use netlist::{CompiledCircuit, NetId};
use orap_bench::{json_object, write_results};

/// (base profile, exact non-inverter gate count) per scaling tier.
const TIERS: [(BenchmarkId, usize); 3] = [
    (BenchmarkId::S38417, 10_000),
    (BenchmarkId::B18, 100_000),
    (BenchmarkId::B19, 1_000_000),
];

/// Stem faults sampled per tier (stride over the driven nets, so the list
/// spans shallow and deep cones at every scale).
const FAULTS_PER_TIER: usize = 400;

/// ~4 GiB: the issue's RSS budget for the 10⁶-gate tier.
const RSS_BUDGET_BYTES: u64 = 4 << 30;

fn sampled_stem_faults(cc: &CompiledCircuit, count: usize) -> Vec<Fault> {
    let driven: Vec<u32> = (0..cc.num_nets() as u32)
        .filter(|&n| cc.kind_of(n).is_some())
        .collect();
    let stride = (driven.len() / count).max(1);
    driven
        .iter()
        .step_by(stride)
        .take(count)
        .enumerate()
        .map(|(i, &n)| {
            let net = NetId::from_index(n as usize);
            if i % 2 == 0 {
                Fault::stem_sa0(net)
            } else {
                Fault::stem_sa1(net)
            }
        })
        .collect()
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::var("ORAP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let samples = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tiers: &[(BenchmarkId, usize)] = if smoke { &TIERS[..1] } else { &TIERS };

    let mut rows = Vec::new();
    for &(base, gates) in tiers {
        let p = profile(base).scaled_to_gates(gates);

        // Streaming synthesis + CSR assembly, end to end.
        let t = Instant::now();
        let cc = Arc::new(synthesize_compiled(&p).expect("synthesizable at scale"));
        let synth_ns = t.elapsed().as_nanos() as u64;
        assert!(
            cc.num_nets() > gates,
            "{}: artifact smaller than its gate count",
            p.name
        );

        // One full sweep over every net.
        let mut rng = SplitMix64::new(0x5CA1E ^ gates as u64);
        let words: Vec<u64> = (0..cc.inputs().len()).map(|_| rng.next_u64()).collect();
        let mut values = Vec::new();
        let mut sweep_walls = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            cc.eval_full_into(&words, &mut values);
            sweep_walls.push(t.elapsed().as_nanos());
        }
        let sweep_ns = median(sweep_walls) as u64;

        // Fault simulation at 1/2/8 threads over the same fault list.
        let faults = sampled_stem_faults(&cc, FAULTS_PER_TIER);
        let fsim = FaultSim::from_compiled(Arc::clone(&cc));
        let mut fsim_walls = [0u64; 3];
        let mut detected_ref: Option<Vec<usize>> = None;
        let mut counters = netlist::EngineCounters::default();
        let mut t8_pool_stats = None;
        for (ti, threads) in [1usize, 2, 8].into_iter().enumerate() {
            let pool = Pool::with_threads(threads);
            let mut walls = Vec::with_capacity(samples);
            let mut detected = Vec::new();
            for _ in 0..samples {
                let t = Instant::now();
                let (d, c) = fsim.detect_batch_par_counted(&pool, &words, &faults);
                walls.push(t.elapsed().as_nanos());
                detected = d;
                counters = c;
            }
            match &detected_ref {
                None => detected_ref = Some(detected),
                Some(reference) => assert_eq!(
                    reference, &detected,
                    "{}: detected set differs at {threads} threads",
                    p.name
                ),
            }
            fsim_walls[ti] = median(walls) as u64;
            if threads == 8 {
                t8_pool_stats = Some(pool.stats());
            }
        }
        let detected = detected_ref.expect("at least one thread count ran").len();
        let speedup_t8 = fsim_walls[0] as f64 / fsim_walls[2].max(1) as f64;
        let rss = peak_rss_bytes();

        println!(
            "scaling/{}  synth={}  sweep={}  fsim t1={} t2={} t8={} (t8 speedup {speedup_t8:.2}x on {host_threads}-thread host)  detected={detected}/{}  peak_rss={:.1} MiB",
            p.name,
            orap_bench::timing::human_time(synth_ns as f64),
            orap_bench::timing::human_time(sweep_ns as f64),
            orap_bench::timing::human_time(fsim_walls[0] as f64),
            orap_bench::timing::human_time(fsim_walls[1] as f64),
            orap_bench::timing::human_time(fsim_walls[2] as f64),
            faults.len(),
            rss as f64 / (1 << 20) as f64,
        );

        if smoke {
            // The single-core-honest gate: chunked parallel dispatch must
            // be free even when it cannot win (2 ms grace for timer noise
            // on the small smoke tier).
            assert!(
                fsim_walls[2] <= fsim_walls[0] + fsim_walls[0] / 4 + 2_000_000,
                "{}: t8 {}ns regressed past t1 {}ns + 25% dispatch budget",
                p.name,
                fsim_walls[2],
                fsim_walls[0]
            );
        }
        if gates >= 1_000_000 && rss > 0 {
            assert!(
                rss <= RSS_BUDGET_BYTES,
                "{}: peak RSS {rss} bytes blew the 4 GiB budget",
                p.name
            );
        }

        rows.push(json_object! {
            circuit: p.name.clone(),
            gates: gates,
            nets: cc.num_nets(),
            depth: cc.depth(),
            synth_ns: synth_ns,
            compile_ns: cc.compile_ns(),
            sweep_ns: sweep_ns,
            faults: faults.len(),
            detected: detected,
            fsim_wall_t1_ns: fsim_walls[0],
            fsim_wall_t2_ns: fsim_walls[1],
            fsim_wall_t8_ns: fsim_walls[2],
            speedup_t8: speedup_t8,
            fsim_engine: counters,
            fsim_pool_t8: t8_pool_stats.expect("t8 ran"),
            peak_rss_bytes: rss,
        });
    }

    let doc = json_object! {
        harness: "scaling",
        smoke: smoke,
        samples: samples,
        host_threads: host_threads,
        faults_per_tier: FAULTS_PER_TIER,
        rows: rows,
    };
    let name = if smoke {
        "BENCH_scaling_smoke"
    } else {
        "BENCH_scaling"
    };
    let path = write_results(name, &doc).expect("write results");
    println!("scaling: results written to {}", path.display());
}
