//! Conformance kill-matrix harness: runs the mutation battery of the
//! `conformance` crate and exports the per-mutant kill matrix.
//!
//! Unlike the timing benches, this harness is a *gate*: it exits non-zero
//! (via assertion) if the clean baseline fails or any checked-in mutant
//! survives, so wiring it into ci.sh makes the kill rate a tier-1
//! invariant alongside the unit suites.
//!
//! Results go to `results/BENCH_conformance.json`; with
//! `ORAP_BENCH_SMOKE=1` the smaller smoke battery runs instead and writes
//! `results/BENCH_conformance_smoke.json` (the file checked into the
//! repository — regenerate it when the catalog changes).

use std::time::Instant;

use conformance::mutation::{self, Scale};
use orap_bench::json::Json;
use orap_bench::{json_object, write_results};

fn main() {
    let smoke = std::env::var("ORAP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let scale = if smoke { Scale::Smoke } else { Scale::Full };

    let start = Instant::now();
    let report = mutation::run_matrix(scale);
    let wall_ns = start.elapsed().as_nanos() as u64;

    println!(
        "conformance kill matrix ({scale:?} scale): {} mutants, baseline {}",
        report.results.len(),
        if report.baseline_ok { "ok" } else { "FAILED" },
    );
    for r in &report.results {
        let verdict = if r.killed { "killed" } else { "SURVIVED" };
        let detail: String = r.killed_by.chars().take(72).collect();
        println!("  {:<32} {:<8} {:<9} {}", r.id, r.layer, verdict, detail);
    }
    println!(
        "kill rate: {:.0}% ({}/{}) in {}",
        100.0 * report.kill_rate(),
        report.results.iter().filter(|r| r.killed).count(),
        report.results.len(),
        orap_bench::timing::human_time(wall_ns as f64),
    );

    let rows: Vec<Json> = report
        .results
        .iter()
        .map(|r| {
            json_object! {
                id: r.id,
                layer: r.layer,
                description: r.description,
                killed: r.killed,
                killed_by: r.killed_by,
                wall_ns: r.wall_ns,
            }
        })
        .collect();
    let doc = json_object! {
        harness: "conformance",
        smoke: smoke,
        mutants: report.results.len(),
        killed: report.results.iter().filter(|r| r.killed).count(),
        kill_rate: report.kill_rate(),
        baseline_ok: report.baseline_ok,
        baseline_detail: report.baseline_detail.clone(),
        survivors: report.survivors(),
        wall_ns: wall_ns,
        rows: rows,
    };
    let name = if smoke {
        "BENCH_conformance_smoke"
    } else {
        "BENCH_conformance"
    };
    let path = write_results(name, &doc).expect("write results");
    println!("results -> {}", path.display());

    assert!(
        report.baseline_ok,
        "clean engines failed the conformance battery: {}",
        report.baseline_detail
    );
    let survivors = report.survivors();
    assert!(
        survivors.is_empty(),
        "mutants survived the conformance battery: {survivors:?}"
    );
}
