//! Microbenchmark: SAT-attack cost per key width on RLL-locked circuits.

use attacks::{sat, CombOracle};
use orap_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("sat_attack");

    for key_bits in [8usize, 12, 16] {
        let circuit = netlist::generate::random_comb(7, 12, 8, 300).expect("generate");
        let locked = locking::random::lock(
            &circuit,
            &locking::random::RllConfig { key_bits, seed: 3 },
        )
        .expect("lockable");
        h.bench(&format!("sat_attack_rll/{key_bits}"), || {
            let mut oracle = CombOracle::from_locked(&locked).expect("oracle");
            sat::attack(&locked, &mut oracle, &sat::SatAttackConfig::default())
        });
    }

    // Pigeonhole 8-into-7: a classic hard UNSAT instance for CDCL.
    h.bench("cdcl_pigeonhole_8_7", || {
        let mut s = cdcl::Solver::new();
        let p: Vec<Vec<cdcl::Var>> = (0..8)
            .map(|_| (0..7).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let clause: Vec<cdcl::Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for i1 in 0..8 {
            for i2 in (i1 + 1)..8 {
                for (a, b) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[a.negative(), b.negative()]);
                }
            }
        }
        s.solve()
    });

    h.finish().expect("write results");
}
