//! SAT-attack wall-clock benchmark over the Table 2 circuit set.
//!
//! Runs the full oracle-guided SAT attack against every WLL-locked
//! benchmark circuit and records, per circuit, the iteration count, the
//! solver's cumulative search statistics, and the median wall-clock time —
//! plus whole-set wall-clock at one worker thread (`t1`) and at the
//! machine's default thread count (`tN`), exercising the deterministic
//! chunked runtime the same way `attack_resistance` does.
//!
//! Results go to `results/BENCH_sat.json`. If a checked-in baseline
//! (`results/BENCH_sat_baseline.json`, measured on the pre-AIG-encoder
//! pipeline) has rows at the same scale, a geometric-mean speedup is
//! computed against it.
//!
//! Environment:
//! - `ORAP_BENCH_SMOKE=1` — smoke mode for CI: smaller scale, one sample,
//!   written to `results/BENCH_sat_smoke.json` instead.
//! - `BENCH_SAMPLES` — samples per circuit (median reported; default 3).
//! - `ORAP_SAT_BENCH_SCALE` — override the circuit scale factor.

use std::time::Instant;

use attacks::{sat, AttackOutcome, CombOracle};
use exec::Pool;
use locking::weighted::WllConfig;
use locking::LockedCircuit;
use netlist::generate::{self, BenchmarkId};
use orap_bench::json::{parse, Json};
use orap_bench::{control_width, json_object, key_bits, write_results};

/// Per-circuit lock used by both this bench and the checked-in baseline:
/// WLL with Table-I-scaled key widths and a fixed per-circuit seed.
fn lock_for(id: BenchmarkId, scale: f64) -> LockedCircuit {
    let profile = generate::profile(id).scaled(scale);
    let design = generate::synthesize(&profile).expect("synthesizable profile");
    locking::weighted::lock(
        &design,
        &WllConfig {
            key_bits: key_bits(id, scale),
            control_width: control_width(id),
            seed: 0x5A7 ^ id as u64,
        },
    )
    .expect("lockable")
}

fn run_attack(locked: &LockedCircuit) -> AttackOutcome {
    let mut oracle = CombOracle::from_locked(locked).expect("acyclic oracle");
    sat::attack(locked, &mut oracle, &sat::SatAttackConfig::default())
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Geometric-mean speedup of `new` over `old` across paired circuits.
fn geomean_speedup(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(old, new)| (old / new.max(1.0)).ln())
        .sum();
    Some((log_sum / pairs.len() as f64).exp())
}

/// Extracts `(circuit, wall_ns)` rows from the baseline document if its
/// scale matches this run.
fn baseline_rows(doc: &Json, scale: f64) -> Vec<(String, f64)> {
    let Json::Object(fields) = doc else {
        return Vec::new();
    };
    let matches_scale = fields.iter().any(|(k, v)| {
        k == "scale"
            && match v {
                Json::Float(f) => (f - scale).abs() < 1e-12,
                _ => false,
            }
    });
    if !matches_scale {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (k, v) in fields {
        if k != "rows" {
            continue;
        }
        let Json::Array(rows) = v else { continue };
        for row in rows {
            let Json::Object(cols) = row else { continue };
            let mut name = None;
            let mut wall = None;
            for (ck, cv) in cols {
                match (ck.as_str(), cv) {
                    ("circuit", Json::Str(s)) => name = Some(s.clone()),
                    ("wall_ns", Json::UInt(n)) => wall = Some(*n as f64),
                    ("wall_ns", Json::Float(f)) => wall = Some(*f),
                    _ => {}
                }
            }
            if let (Some(n), Some(w)) = (name, wall) {
                out.push((n, w));
            }
        }
    }
    out
}

fn main() {
    let smoke = std::env::var("ORAP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let scale = std::env::var("ORAP_SAT_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.003 } else { 0.004 });
    let samples = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);

    let locked: Vec<(BenchmarkId, LockedCircuit)> = BenchmarkId::ALL
        .iter()
        .map(|&id| (id, lock_for(id, scale)))
        .collect();

    // Per-circuit timing (sequential, median over samples).
    let mut rows = Vec::new();
    for (id, lc) in &locked {
        let mut walls = Vec::with_capacity(samples);
        let mut out = run_attack(lc);
        for _ in 0..samples {
            let t = Instant::now();
            out = run_attack(lc);
            walls.push(t.elapsed().as_nanos());
        }
        let wall_ns = median(walls) as u64;
        println!(
            "sat/{}@{scale}  {}  iters={} conflicts={} clauses={} ",
            id.as_str(),
            orap_bench::timing::human_time(wall_ns as f64),
            out.iterations,
            out.telemetry.solver.conflicts,
            out.telemetry.clauses,
        );
        rows.push(json_object! {
            circuit: id.as_str(),
            gates: lc.circuit.num_gates(),
            key_bits: lc.key_inputs.len(),
            ok: out.key.is_some(),
            iterations: out.iterations,
            oracle_queries: out.oracle_queries,
            wall_ns: wall_ns,
            telemetry: out.telemetry,
        });
    }

    // Whole-set wall-clock across the pattern-parallel runtime at one
    // thread and at the default thread count (the `t1`/`tN` datapoints).
    let time_set = |pool: &Pool| {
        let t = Instant::now();
        let outs = pool.par_map("bench_sat_attacks", &locked, |_, (_, lc)| {
            run_attack(lc).iterations
        });
        (t.elapsed().as_nanos() as u64, outs)
    };
    let pool1 = Pool::with_threads(1);
    let pool_n = Pool::with_threads(exec::default_threads());
    let (t1_ns, iters1) = time_set(&pool1);
    let (tn_ns, iters_n) = time_set(&pool_n);
    assert_eq!(iters1, iters_n, "iteration counts must be thread-invariant");
    println!(
        "sat/set  t1={}  tN={} ({} threads)",
        orap_bench::timing::human_time(t1_ns as f64),
        orap_bench::timing::human_time(tn_ns as f64),
        exec::default_threads(),
    );

    // Optional speedup vs the checked-in pre-overhaul baseline.
    let baseline_doc = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_sat_baseline.json"),
    )
    .ok()
    .and_then(|text| parse(text.trim_end()).ok());
    let speedup = baseline_doc.as_ref().and_then(|doc| {
        let old = baseline_rows(doc, scale);
        let pairs: Vec<(f64, f64)> = rows
            .iter()
            .filter_map(|row| {
                let Json::Object(cols) = row else { return None };
                let name = cols.iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("circuit", Json::Str(s)) => Some(s.clone()),
                    _ => None,
                })?;
                let new_wall = cols.iter().find_map(|(k, v)| match (k.as_str(), v) {
                    ("wall_ns", Json::UInt(n)) => Some(*n as f64),
                    _ => None,
                })?;
                let old_wall = old.iter().find(|(n, _)| *n == name)?.1;
                Some((old_wall, new_wall))
            })
            .collect();
        geomean_speedup(&pairs)
    });
    if let Some(s) = speedup {
        println!("sat/speedup_vs_baseline  geomean {s:.2}x");
    }

    let doc = json_object! {
        harness: "sat",
        scale: scale,
        smoke: smoke,
        samples: samples,
        rows: rows,
        set_wall_ns_t1: t1_ns,
        set_wall_ns_tn: tn_ns,
        threads_n: exec::default_threads(),
        speedup_geomean_vs_baseline: speedup,
    };
    // Smoke runs (CI) record their datapoint separately so they never
    // clobber the full-scale before/after measurement.
    let name = if smoke { "BENCH_sat_smoke" } else { "BENCH_sat" };
    let path = write_results(name, &doc).expect("write results");
    println!("sat: results written to {}", path.display());
}
