//! Round-trip tests of the in-repo JSON writer against the checked-in
//! `results/*.json` shapes produced by the experiment binaries.

use orap_bench::json::{parse, Json};
use orap_bench::json_object;

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .expect("workspace root")
}

/// Every checked-in results file (written by the serde_json-era harness)
/// must parse, re-serialize, and re-parse to the identical value tree —
/// proving the in-repo writer speaks the same dialect.
#[test]
fn checked_in_results_roundtrip() {
    let dir = results_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("results dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e != "json").unwrap_or(true) {
            continue;
        }
        // Skip scratch files written by other tests running in parallel.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.contains("selftest") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let first = parse(text.trim_end()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rewritten = first.pretty();
        let second = parse(&rewritten).unwrap_or_else(|e| panic!("{name} rewrite: {e}"));
        assert_eq!(first, second, "{name}: value tree changed across round trip");
        checked += 1;
    }
    assert!(checked >= 5, "expected the five checked-in results files, saw {checked}");
}

/// The exact Row shapes emitted by the five experiment binaries round-trip
/// through write→parse with types preserved.
#[test]
fn experiment_row_shapes_roundtrip() {
    let rows = vec![
        // table1-style row.
        json_object! {
            circuit: "s38417",
            gates: 435usize,
            comb_outputs: 86usize,
            lfsr_size: 36usize,
            control_inputs: 3usize,
            hd_percent: 15.82729605741279f64,
            area_overhead_percent: 18.848167539267017f64,
            delay_overhead_percent: 6.0606060606060606f64,
        },
        // attack_resistance-style row with Option fields both ways.
        json_object! {
            attack: "sat",
            target: "rll",
            oracle: "combinational",
            key_recovered: true,
            key_correct: false,
            iterations: 17usize,
            queries: 212usize,
            failure: None::<String>,
        },
        json_object! {
            scenario: "shadow_register",
            baseline_ge: 800usize,
            hardened_ge: 2124usize,
            detected_baseline: false,
            detected_hardened: true,
            oracle_resurrected: Some(true),
        },
    ];
    let doc = Json::Array(rows);
    let text = doc.pretty();
    assert_eq!(parse(&text).expect("valid"), doc);
    // Floats survive with full precision.
    assert!(text.contains("15.82729605741279"));
    // Nulls appear for None options.
    assert!(text.contains("\"failure\": null"));
}

/// write_results output parses back identically (end-to-end through the
/// file system, as the binaries use it).
#[test]
fn write_results_output_parses() {
    let doc = json_object! {
        name: "json_results_selftest",
        values: vec![1.5f64, 2.0, 3.25],
        nested: json_object! { deep: "yes\nwith\tescapes\"" },
    };
    let path = orap_bench::write_results("json_results_selftest", &doc).expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    assert_eq!(parse(text.trim_end()).expect("valid"), doc);
    let _ = std::fs::remove_file(path);
}
