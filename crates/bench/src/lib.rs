//! Shared plumbing for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).

use std::path::PathBuf;

pub mod json;
pub mod timing;

/// Command-line scale options shared by all table binaries.
///
/// The synthetic stand-ins for the ISCAS'89/ITC'99 circuits are generated at
/// a configurable fraction of their published gate counts so the experiments
/// run in minutes on a laptop; relative sizes (and hence the paper's trends)
/// are preserved at any scale. `--full` uses the paper's exact gate counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Benchmark scale factor (1.0 = the paper's gate counts).
    pub scale: f64,
    /// Patterns for Hamming-distance measurement.
    pub hd_patterns: usize,
    /// Random wrong keys averaged for HD.
    pub hd_keys: usize,
    /// Random patterns for the ATPG prefilter phase.
    pub atpg_random: usize,
    /// PODEM backtrack limit ("high effort" scales with this).
    pub atpg_backtrack: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 0.05,
            hd_patterns: 16 * 1024,
            hd_keys: 10,
            atpg_random: 4096,
            atpg_backtrack: 100,
        }
    }
}

impl RunOptions {
    /// Parses `--scale <f>`, `--full` and `--quick` from the process
    /// arguments, starting from defaults.
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        opts.scale = v;
                        i += 1;
                    }
                }
                "--full" => opts.scale = 1.0,
                "--quick" => {
                    opts.scale = 0.02;
                    opts.hd_patterns = 4096;
                    opts.hd_keys = 5;
                    opts.atpg_random = 1024;
                    opts.atpg_backtrack = 50;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Writes an experiment's machine-readable results next to the printed
/// table, into `results/<name>.json` under the workspace root.
///
/// # Errors
///
/// Returns an I/O error if the results directory cannot be created or the
/// file cannot be written.
pub fn write_results<T: json::ToJson>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut text = value.to_json().pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Picks the control-gate width per benchmark as the paper does (5 inputs
/// for the two largest ITC'99 circuits, 3 otherwise).
pub fn control_width(id: netlist::generate::BenchmarkId) -> usize {
    use netlist::generate::BenchmarkId::*;
    match id {
        B18 | B19 => 5,
        _ => 3,
    }
}

/// Key (LFSR) sizes per benchmark from Table I column 4, scaled down with
/// the circuit so that HD measurement stays meaningful.
pub fn key_bits(id: netlist::generate::BenchmarkId, scale: f64) -> usize {
    use netlist::generate::BenchmarkId::*;
    let full = match id {
        S38417 => 256,
        S38584 => 186,
        B17 => 256,
        B18 => 97,
        B19 => 208,
        B20 => 236,
        B21 => 229,
        B22 => 243,
    };
    if scale >= 1.0 {
        full
    } else {
        // Scale the key with the circuit, keeping control-gate alignment and
        // a sensible floor.
        ((full as f64 * scale.max(0.05)) as usize).clamp(12, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_sane() {
        let o = RunOptions::default();
        assert!(o.scale > 0.0 && o.scale <= 1.0);
        assert!(o.hd_patterns >= 1024);
    }

    #[test]
    fn key_bits_scale() {
        use netlist::generate::BenchmarkId;
        assert_eq!(key_bits(BenchmarkId::S38417, 1.0), 256);
        assert!(key_bits(BenchmarkId::S38417, 0.05) >= 12);
        assert_eq!(control_width(BenchmarkId::B18), 5);
        assert_eq!(control_width(BenchmarkId::S38417), 3);
    }

    #[test]
    fn write_results_roundtrip() {
        struct Tiny {
            x: u32,
        }
        impl json::ToJson for Tiny {
            fn to_json(&self) -> json::Json {
                json_object! { x: self.x }
            }
        }
        let path = write_results("selftest", &Tiny { x: 7 }).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"x\": 7"));
        assert_eq!(
            json::parse(text.trim_end()).unwrap(),
            json::Json::Object(vec![("x".into(), json::Json::UInt(7))])
        );
    }
}
