//! Regenerates **Table I** of the paper: Hamming distance, area overhead and
//! delay overhead of OraP + weighted logic locking on the eight benchmark
//! circuits.
//!
//! Methodology (mirroring Section IV):
//! - circuits are profile-matched synthetic stand-ins (see DESIGN.md §3),
//!   scaled by `--scale` (default 0.05; `--full` = published gate counts);
//! - HD: the valid key versus random wrong keys over pseudorandom patterns;
//! - area/delay: both the original and the protected netlist go through the
//!   `strash → refactor → rewrite` pipeline (our AIG optimizer); the
//!   protected side additionally pays the OraP gates (reseeding XORs,
//!   polynomial XORs, pulse-generator NANDs), as the paper counts them;
//! - delay overhead is measured in logic levels.
//!
//! Run: `cargo run -p orap-bench --release --bin table1 [--scale f|--full|--quick]`

use locking::weighted::WllConfig;
use netlist::generate::{self, BenchmarkId};
use orap::{protect, OrapConfig};
use orap_bench::{control_width, key_bits, write_results, RunOptions};
use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

#[derive(Debug)]
struct Row {
    circuit: String,
    gates: usize,
    comb_outputs: usize,
    lfsr_size: usize,
    control_inputs: usize,
    hd_percent: f64,
    area_overhead_percent: f64,
    delay_overhead_percent: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        json_object! {
            circuit: self.circuit,
            gates: self.gates,
            comb_outputs: self.comb_outputs,
            lfsr_size: self.lfsr_size,
            control_inputs: self.control_inputs,
            hd_percent: self.hd_percent,
            area_overhead_percent: self.area_overhead_percent,
            delay_overhead_percent: self.delay_overhead_percent,
        }
    }
}

/// Builds one Table I row (the whole per-circuit pipeline: protect, probe
/// key sizes, measure HD, resynthesize). Errors are stringified so rows can
/// be produced on pool workers.
fn build_row(id: BenchmarkId, opts: &RunOptions) -> Result<Row, String> {
    let err = |e: netlist::Error| e.to_string();
    let profile = generate::profile(id).scaled(opts.scale);
    let design = generate::synthesize(&profile).map_err(err)?;
    let cw = control_width(id);
    // The paper's key-sizing methodology: grow the key until output
    // corruptibility reaches the optimal HD = 50% or saturates, capped
    // at the benchmark's Table I key size (scaled with the circuit so
    // the key-gate density stays comparable).
    let cap = key_bits(id, opts.scale).max(
        (design.num_gates_excluding_inverters() / 12).clamp(12, 256),
    );
    let mut kb = 12usize;
    let mut best: Option<(usize, f64, orap::OrapProtected)> = None;
    loop {
        let candidate = protect(
            &design,
            &WllConfig {
                key_bits: kb,
                control_width: cw,
                seed: 0x7AB1E ^ id as u64,
            },
            &OrapConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        let probe_hd = gatesim::hd::average_hd_random_keys(
            &candidate.locked.circuit,
            &candidate.locked.key_inputs,
            &candidate.locked.correct_key,
            opts.hd_keys.min(5),
            (opts.hd_patterns / 4).max(1024),
            0x4D ^ id as u64,
        )
        .map_err(err)?;
        if best.as_ref().map(|&(_, prev, _)| probe_hd > prev).unwrap_or(true) {
            best = Some((kb, probe_hd, candidate));
        }
        if probe_hd >= 49.0 || kb >= cap {
            break;
        }
        kb = (kb * 2).min(cap);
    }
    let (kb, _, protected) = best.expect("at least one key size probed");
    let locked = &protected.locked;

    // Final HD measurement at full pattern count.
    let hd = gatesim::hd::average_hd_random_keys(
        &locked.circuit,
        &locked.key_inputs,
        &locked.correct_key,
        opts.hd_keys,
        opts.hd_patterns,
        0x4D ^ id as u64,
    )
    .map_err(err)?;

    // Area/delay after resynthesis of both versions.
    let base = aigsynth::optimize(&design).map_err(err)?;
    let prot = aigsynth::optimize(&locked.circuit).map_err(err)?;
    let prot_area = prot.area + protected.hardware.gates();
    let area_ovhd = 100.0 * (prot_area as f64 - base.area as f64) / base.area as f64;
    let delay_ovhd = 100.0 * (prot.depth as f64 - base.depth as f64) / base.depth as f64;

    Ok(Row {
        circuit: id.as_str().to_owned(),
        gates: design.num_gates_excluding_inverters(),
        comb_outputs: design.comb_outputs().len(),
        lfsr_size: kb,
        control_inputs: cw,
        hd_percent: hd,
        area_overhead_percent: area_ovhd,
        delay_overhead_percent: delay_ovhd.max(0.0),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let pool = exec::global();
    println!(
        "Table I reproduction (scale {}, {} HD patterns x {} random keys, {} threads)\n",
        opts.scale,
        opts.hd_patterns,
        opts.hd_keys,
        pool.threads()
    );
    println!(
        "{:<10} {:>8} {:>8} {:>6} {:>5} {:>8} {:>10} {:>10}",
        "Circuit", "#Gates", "#Outs", "LFSR", "Ctrl", "HD(%)", "ArOvhd(%)", "DelOvhd(%)"
    );

    // One pool task per benchmark circuit; rows come back in Table I order.
    let built = pool.par_map("table1_circuits", &BenchmarkId::ALL, |_, &id| {
        build_row(id, &opts)
    });
    let mut rows = Vec::new();
    for r in built {
        rows.push(r?);
    }
    for row in &rows {
        println!(
            "{:<10} {:>8} {:>8} {:>6} {:>5} {:>8.2} {:>10.2} {:>10.2}",
            row.circuit,
            row.gates,
            row.comb_outputs,
            row.lfsr_size,
            row.control_inputs,
            row.hd_percent,
            row.area_overhead_percent,
            row.delay_overhead_percent
        );
    }
    let doc = json_object! { rows: rows, exec: pool.stats() };
    let path = write_results("table1", &doc)?;
    println!("\nresults written to {}", path.display());
    Ok(())
}
