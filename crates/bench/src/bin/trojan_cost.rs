//! Experiment E4: the Section III threat/countermeasure analysis as a table.
//!
//! For every threat scenario (a)–(e), reports the Trojan payload cost (gate
//! equivalents) under the strawman baseline versus the hardened OraP design
//! guidelines, the side-channel detection verdict, and — where the scenario
//! is behavioural — whether the armed Trojan actually resurrects the oracle
//! on the chip model. Uses a paper-sized 128-bit key register.
//!
//! Run: `cargo run -p orap-bench --release --bin trojan_cost`

use orap::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::threat::{
    arm, extract_key_via_scan, payload_cost, xor_tree_cost, DesignPosture, SideChannelModel,
    ThreatScenario,
};
use orap::{protect, OrapConfig, OrapVariant};
use orap_bench::write_results;
use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

#[derive(Debug)]
struct Row {
    scenario: String,
    baseline_ge: usize,
    hardened_ge: usize,
    detected_baseline: bool,
    detected_hardened: bool,
    oracle_resurrected: Option<bool>,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        json_object! {
            scenario: self.scenario,
            baseline_ge: self.baseline_ge,
            hardened_ge: self.hardened_ge,
            detected_baseline: self.detected_baseline,
            detected_hardened: self.detected_hardened,
            oracle_resurrected: self.oracle_resurrected,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper-sized configuration: 128-bit key register (the paper's example
    // size for threat (a)'s ~64-gate estimate).
    let profile = netlist::generate::profile(netlist::generate::BenchmarkId::B20).scaled(0.05);
    let design = netlist::generate::synthesize(&profile)?;
    let wll = locking::weighted::WllConfig {
        key_bits: 128,
        control_width: 4,
        seed: 5,
    };
    let basic = protect(&design, &wll, &OrapConfig::default())?;
    let modified = protect(
        &design,
        &wll,
        &OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        },
    )?;
    let detector = SideChannelModel::default();
    println!(
        "Trojan payload costs, {}-bit key register; detector: >= {:.1}% of a {}-gate segment\n",
        basic.key_bits(),
        detector.min_detectable_fraction * 100.0,
        detector.segment_gates
    );
    println!(
        "{:<38} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "scenario", "base GE", "hard GE", "det.base", "det.hard", "oracle back?"
    );

    let mut rows = Vec::new();
    for scenario in ThreatScenario::ALL {
        let base = payload_cost(&basic, scenario, DesignPosture::Baseline);
        let hard = payload_cost(&basic, scenario, DesignPosture::Hardened);

        // Behavioural check where applicable: arm the Trojan and see if the
        // chip now yields correct responses (or leaks the key).
        let resurrected = match scenario {
            ThreatScenario::SuppressPerCellReset => {
                let mut chip = ProtectedChip::new(&basic)?;
                arm(&mut chip, scenario);
                let key = extract_key_via_scan(&mut chip);
                Some(key == basic.locked.correct_key)
            }
            ThreatScenario::HoldLfsrAndBypass | ThreatScenario::ShadowRegister => {
                let mut chip = ProtectedChip::new(&basic)?;
                arm(&mut chip, scenario);
                let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
                let mut rng = netlist::rng::SplitMix64::new(3);
                let n = design.primary_inputs().len() + design.dffs().len();
                let mut ok = true;
                for _ in 0..8 {
                    let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
                    ok &= oracle.response_is_correct(&input)?;
                }
                Some(ok)
            }
            ThreatScenario::XorTrees => None, // cost-only scenario
            ThreatScenario::FreezeStateFfs => {
                // Against the MODIFIED scheme the unlock itself breaks.
                let mut chip = ProtectedChip::new(&modified)?;
                arm(&mut chip, scenario);
                chip.power_on_and_unlock();
                Some(chip.key_register_holds_correct_key())
            }
        };

        let row = Row {
            scenario: scenario.label().to_owned(),
            baseline_ge: base,
            hardened_ge: hard,
            detected_baseline: detector.detects(base),
            detected_hardened: detector.detects(hard),
            oracle_resurrected: resurrected,
        };
        println!(
            "{:<38} {:>9} {:>9} {:>9} {:>9} {:>12}",
            row.scenario,
            row.baseline_ge,
            row.hardened_ge,
            row.detected_baseline,
            row.detected_hardened,
            row.oracle_resurrected
                .map(|b| b.to_string())
                .unwrap_or_else(|| "n/a".into())
        );
        rows.push(row);
    }

    let hard_xt = xor_tree_cost(&basic, DesignPosture::Hardened);
    println!(
        "\nthreat (d) detail: {} XOR gates, {} muxes, {} shadow FFs \
         (max {} terms/cell) = {} GE",
        hard_xt.xor_gates,
        hard_xt.muxes,
        hard_xt.shadow_flipflops,
        hard_xt.max_terms_per_cell,
        hard_xt.gate_equivalents()
    );
    println!(
        "note: threat (e) row reports whether the key register still unlocks \
         correctly under the Trojan on the MODIFIED scheme (false = defence works)."
    );

    let path = write_results("trojan_cost", &rows)?;
    println!("results written to {}", path.display());
    Ok(())
}
