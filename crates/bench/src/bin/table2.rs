//! Regenerates **Table II** of the paper: stuck-at fault coverage and
//! redundant + aborted fault counts for the original versus the
//! OraP-protected versions of each benchmark.
//!
//! Because OraP tests the chip *locked* but keeps the key register on the
//! scan chains, the ATPG tool may set the key inputs freely; the key gates
//! then act as extra control points. The paper's finding — coverage
//! improves and the redundant+aborted count drops on the protected circuit
//! — is what this binary measures.
//!
//! The random-pattern prefilter phase mirrors the paper's use of the HOPE
//! fault simulator before Atalanta for the largest circuits.
//!
//! Run: `cargo run -p orap-bench --release --bin table2 [--scale f|--quick]`

use atpg::{run_atpg, AtpgConfig};
use locking::weighted::WllConfig;
use netlist::generate::{self, BenchmarkId};
use orap::{protect, OrapConfig};
use orap_bench::{control_width, key_bits, write_results, RunOptions};
use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

#[derive(Debug)]
struct Row {
    circuit: String,
    original_fc_percent: f64,
    original_red_abrt: usize,
    protected_fc_percent: f64,
    protected_red_abrt: usize,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        json_object! {
            circuit: self.circuit,
            original_fc_percent: self.original_fc_percent,
            original_red_abrt: self.original_red_abrt,
            protected_fc_percent: self.protected_fc_percent,
            protected_red_abrt: self.protected_red_abrt,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = RunOptions::from_args();
    // ATPG is the most expensive experiment; cap the default scale lower
    // than Table I's so the largest circuits stay tractable.
    if (opts.scale - RunOptions::default().scale).abs() < f64::EPSILON {
        opts.scale = 0.02;
    }
    println!(
        "Table II reproduction (scale {}, {} random patterns, backtrack limit {}, {} threads)\n",
        opts.scale,
        opts.atpg_random,
        opts.atpg_backtrack,
        exec::global().threads()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>14}",
        "Circuit", "orig FC(%)", "orig Red+Abrt", "prot FC(%)", "prot Red+Abrt"
    );

    let cfg = AtpgConfig {
        random_patterns: opts.atpg_random,
        backtrack_limit: opts.atpg_backtrack,
        seed: 0xA7A1,
    };
    let pool = exec::global();
    // One pool task per benchmark circuit (each of which further
    // fault-parallelizes its ATPG random phase on the same pool); rows come
    // back in Table II order.
    let built = pool.par_map("table2_circuits", &BenchmarkId::ALL, |_, &id| {
        let err = |e: netlist::Error| e.to_string();
        let profile = generate::profile(id).scaled(opts.scale);
        let design = generate::synthesize(&profile).map_err(err)?;
        let protected = protect(
            &design,
            &WllConfig {
                key_bits: key_bits(id, opts.scale),
                control_width: control_width(id),
                seed: 0x7AB1E ^ id as u64,
            },
            &OrapConfig::default(),
        )
        .map_err(|e| e.to_string())?;

        let original = run_atpg(&design, &cfg).map_err(err)?;
        let locked = run_atpg(&protected.locked.circuit, &cfg).map_err(err)?;

        Ok::<Row, String>(Row {
            circuit: id.as_str().to_owned(),
            original_fc_percent: original.coverage_percent(),
            original_red_abrt: original.redundant_plus_aborted(),
            protected_fc_percent: locked.coverage_percent(),
            protected_red_abrt: locked.redundant_plus_aborted(),
        })
    });
    let mut rows = Vec::new();
    for r in built {
        rows.push(r?);
    }
    for row in &rows {
        println!(
            "{:<10} {:>12.2} {:>14} {:>12.2} {:>14}",
            row.circuit,
            row.original_fc_percent,
            row.original_red_abrt,
            row.protected_fc_percent,
            row.protected_red_abrt
        );
    }
    let doc = json_object! { rows: rows, exec: pool.stats() };
    let path = write_results("table2", &doc)?;
    println!("\nresults written to {}", path.display());
    Ok(())
}
