//! Experiment E3: the Section II-A security claims, executed.
//!
//! Runs every oracle-guided attack against (a) conventionally locked
//! circuits with an open scan oracle and (b) the same lock behind an
//! OraP-protected chip, and reports who recovers a working key.
//!
//! Run: `cargo run -p orap-bench --release --bin attack_resistance`

use attacks::engine::{self, AttackCtl};
use attacks::{key_is_functionally_correct, CombOracle, Oracle};
use locking::LockedCircuit;
use orap::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::{protect, OrapConfig};
use orap_bench::write_results;
use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

#[derive(Debug)]
struct Row {
    attack: String,
    target: String,
    oracle: String,
    key_recovered: bool,
    key_correct: bool,
    iterations: usize,
    oracle_queries: usize,
    failure: Option<String>,
    telemetry: attacks::AttackTelemetry,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        json_object! {
            attack: self.attack,
            target: self.target,
            oracle: self.oracle,
            key_recovered: self.key_recovered,
            key_correct: self.key_correct,
            iterations: self.iterations,
            oracle_queries: self.oracle_queries,
            failure: self.failure,
            telemetry: self.telemetry,
        }
    }
}

fn run_attack(
    name: &str,
    locked: &LockedCircuit,
    target: &str,
    oracle_name: &str,
    oracle: &mut dyn Oracle,
) -> Row {
    // Every attack drives through the same engine loop the daemon and the
    // conformance harness use, so the telemetry (notably the
    // `oracle_queries` ledger) is schema-identical across all of them.
    let eng = engine::by_name(name).unwrap_or_else(|| unreachable!("unknown attack {name}"));
    let outcome = engine::run(eng.as_ref(), locked, oracle, &mut AttackCtl::new());
    let key_correct = outcome
        .key
        .as_ref()
        .map(|k| key_is_functionally_correct(locked, k, 4096).unwrap_or(false))
        .unwrap_or(false);
    Row {
        attack: name.to_owned(),
        target: target.to_owned(),
        oracle: oracle_name.to_owned(),
        key_recovered: outcome.key.is_some(),
        key_correct,
        iterations: outcome.iterations,
        oracle_queries: outcome.oracle_queries,
        failure: outcome.failure.map(|f| f.to_string()),
        telemetry: outcome.telemetry,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attacks = ["sat", "appsat", "double-dip", "hill-climb", "sensitize"];
    let mut rows: Vec<Row> = Vec::new();

    // --- Conventional targets with an open scan oracle. -------------------
    let comb = netlist::generate::random_comb(99, 12, 8, 350)?;
    let targets: Vec<(&str, LockedCircuit)> = vec![
        (
            "rll-12",
            locking::random::lock(&comb, &locking::random::RllConfig { key_bits: 12, seed: 1 })?,
        ),
        (
            "wll-12",
            locking::weighted::lock(
                &comb,
                &locking::weighted::WllConfig {
                    key_bits: 12,
                    control_width: 3,
                    seed: 1,
                },
            )?,
        ),
        (
            "sarlock-10",
            locking::point_function::sarlock(
                &comb,
                &locking::point_function::SarLockConfig { key_bits: 10, seed: 1 },
            )?,
        ),
        (
            "antisat-12",
            locking::point_function::anti_sat(
                &comb,
                &locking::point_function::AntiSatConfig { block_width: 6, seed: 1 },
            )?,
        ),
        (
            "sfll-8-h1",
            locking::sfll::sfll_hd(
                &comb,
                &locking::sfll::SfllConfig {
                    key_bits: 8,
                    hamming_distance: 1,
                    seed: 1,
                },
            )?,
        ),
        (
            "kgate-12",
            locking::kgate::lock(
                &comb,
                &locking::kgate::KGateConfig {
                    classes: 4,
                    word_bits: 3,
                    seed: 1,
                },
            )?,
        ),
    ];
    // One pool task per (target, attack) pair plus one for each target's
    // oracle-less SPS run; results come back in the sequential order.
    let pool = exec::global();
    let jobs: Vec<(usize, Option<&str>)> = (0..targets.len())
        .flat_map(|t| {
            attacks
                .iter()
                .map(move |&a| (t, Some(a)))
                .chain(std::iter::once((t, None)))
        })
        .collect();
    let built = pool.par_map("attack_targets", &jobs, |_, &(t, attack)| {
        let (tname, locked) = &targets[t];
        match attack {
            Some(name) => {
                let mut oracle = CombOracle::from_locked(locked).map_err(|e| e.to_string())?;
                Ok::<Row, String>(run_attack(name, locked, tname, "open-scan", &mut oracle))
            }
            None => {
                // The oracle-less SPS removal attack (defeats Anti-SAT,
                // nothing else).
                let sps = attacks::sps::attack(locked, &attacks::sps::SpsConfig::default())
                    .map_err(|e| e.to_string())?;
                let (recovered, correct) = match &sps.recovered {
                    Some(rec) => (
                        true,
                        attacks::sps::recovery_is_correct(locked, rec, 4096)
                            .map_err(|e| e.to_string())?,
                    ),
                    None => (false, false),
                };
                Ok(Row {
                    attack: "sps".into(),
                    target: (*tname).to_owned(),
                    oracle: "none".into(),
                    key_recovered: recovered,
                    key_correct: correct,
                    iterations: 1,
                    oracle_queries: 0,
                    failure: if correct {
                        None
                    } else {
                        Some("no removable skewed signal".into())
                    },
                    telemetry: attacks::AttackTelemetry::default(),
                })
            }
        }
    });
    for r in built {
        rows.push(r?);
    }

    // --- Dynamic scan obfuscation, attacked through real scan sessions. ---
    // The target is the unrolled bounded session (load + capture + unload)
    // whose key inputs are the LFSR seed; the oracle replays each candidate
    // session on the chip model, so this is the DynUnlock threat model
    // end to end. The netlist-level obfuscation does not protect the
    // oracle — the seed falls out of the SAT loop.
    {
        use attacks::dyn_unlock::ScanSessionOracle;
        use locking::scan_obfuscation::{self, ScanObfConfig, UnrollOptions};

        let seq = netlist::samples::counter(12);
        let scanobf = scan_obfuscation::lock(&seq, &ScanObfConfig::balanced(12, 1))?;
        let unrolled = scanobf.unroll(&UnrollOptions::default())?;
        for attack in ["dyn_unlock", "sat"] {
            let mut oracle = ScanSessionOracle::new(&scanobf, &unrolled)?;
            rows.push(run_attack(
                attack,
                &unrolled.locked,
                "scanobf-12",
                "scan-session",
                &mut oracle,
            ));
        }
    }

    // --- The same WLL lock behind an OraP chip. ---------------------------
    let seq = netlist::samples::counter(12);
    let protected = protect(
        &seq,
        &locking::weighted::WllConfig {
            key_bits: 12,
            control_width: 3,
            seed: 1,
        },
        &OrapConfig::default(),
    )?;
    let chip = ProtectedChip::new(&protected)?;
    for (mode, oracle_name) in [(OracleMode::Strict, "orap-strict"), (OracleMode::Naive, "orap-naive")] {
        rows.extend(pool.par_map("attack_orap", &attacks, |_, &attack| {
            let mut oracle = ProtectedChipOracle::new(chip.clone(), mode);
            run_attack(attack, &protected.locked, "orap+wll-12", oracle_name, &mut oracle)
        }));
    }

    println!("attack      target       oracle       recovered  correct   iters  queries  failure");
    for r in &rows {
        println!(
            "{:<11} {:<12} {:<12} {:>9} {:>8} {:>7} {:>8}  {}",
            r.attack,
            r.target,
            r.oracle,
            r.key_recovered,
            r.key_correct,
            r.iterations,
            r.oracle_queries,
            r.failure.as_deref().unwrap_or("-")
        );
    }

    // Headline verdicts.
    let open_broken = rows
        .iter()
        .filter(|r| r.oracle == "open-scan" && r.target != "sarlock-10" && r.key_correct)
        .count();
    let orap_broken = rows
        .iter()
        .filter(|r| r.oracle.starts_with("orap") && r.key_correct)
        .count();
    println!(
        "\nconventional locks broken via open scan: {open_broken} attack runs; \
         OraP chip broken: {orap_broken} attack runs"
    );

    let doc = json_object! { rows: rows, exec: pool.stats() };
    let path = write_results("attack_resistance", &doc)?;
    println!("results written to {}", path.display());
    Ok(())
}
