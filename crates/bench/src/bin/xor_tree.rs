//! Experiment E5: the design-space sweep behind the paper's threat-(d)
//! countermeasure — "by choosing these features carefully, the resulting
//! linear expressions will be complex enough to require big XOR trees".
//!
//! Sweeps the number of seeds, free-run cycles, reseeding points and tap
//! spacing of a 128-bit key register and reports the attacker's XOR-tree
//! payload, plus the LFSR-vs-shift-register ablation that justifies using
//! an LFSR in the first place.
//!
//! Run: `cargo run -p orap-bench --release --bin xor_tree`

use lfsr::symbolic::{shift_register_cost, sweep_point};
use orap_bench::write_results;
use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

const WIDTH: usize = 128;

#[derive(Debug)]
struct Point {
    sweep: String,
    seeds: usize,
    free_run: usize,
    reseed_points: usize,
    tap_spacing: usize,
    xor_gates: usize,
    payload_ge: usize,
    max_terms_per_cell: usize,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        json_object! {
            sweep: self.sweep,
            seeds: self.seeds,
            free_run: self.free_run,
            reseed_points: self.reseed_points,
            tap_spacing: self.tap_spacing,
            xor_gates: self.xor_gates,
            payload_ge: self.payload_ge,
            max_terms_per_cell: self.max_terms_per_cell,
        }
    }
}

fn record(
    rows: &mut Vec<Point>,
    sweep: &str,
    seeds: usize,
    gap: usize,
    points: usize,
    spacing: usize,
) {
    let cost = sweep_point(WIDTH, spacing, points, seeds, gap, 0xE5);
    rows.push(Point {
        sweep: sweep.to_owned(),
        seeds,
        free_run: gap,
        reseed_points: points,
        tap_spacing: spacing,
        xor_gates: cost.xor_gates,
        payload_ge: cost.gate_equivalents(),
        max_terms_per_cell: cost.max_terms_per_cell,
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();

    // Sweep 1: number of seeds (more stored seeds = more shadow registers
    // and denser expressions).
    for seeds in [1, 2, 4, 8, 16] {
        record(&mut rows, "seeds", seeds, 4, WIDTH, 8);
    }
    // Sweep 2: free-run cycles between seeds (more mixing per seed).
    for gap in [0, 2, 4, 8, 16] {
        record(&mut rows, "free_run", 4, gap, WIDTH, 8);
    }
    // Sweep 3: number of reseeding points.
    for points in [16, 32, 64, 128] {
        record(&mut rows, "reseed_points", 4, 4, points, 8);
    }
    // Sweep 4: tap spacing (the paper chose a new tap every 8 cells).
    for spacing in [4, 8, 16, 32, 64] {
        record(&mut rows, "tap_spacing", 4, 4, WIDTH, spacing);
    }

    println!(
        "{:<14} {:>6} {:>8} {:>7} {:>8} {:>9} {:>11} {:>10}",
        "sweep", "seeds", "freerun", "points", "spacing", "XOR gates", "payload GE", "max terms"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>8} {:>7} {:>8} {:>9} {:>11} {:>10}",
            r.sweep,
            r.seeds,
            r.free_run,
            r.reseed_points,
            r.tap_spacing,
            r.xor_gates,
            r.payload_ge,
            r.max_terms_per_cell
        );
    }

    // Ablation: why an LFSR (and not a plain shift register)?
    println!("\nLFSR vs shift-register ablation (4 seeds, gap 4):");
    let lfsr = sweep_point(WIDTH, 8, WIDTH, 4, 4, 0xE5);
    let sr = shift_register_cost(WIDTH, 4, 4, 0xE5);
    println!(
        "  LFSR (tap/8): {:>6} XOR gates, payload {:>6} GE",
        lfsr.xor_gates,
        lfsr.gate_equivalents()
    );
    println!(
        "  shift reg   : {:>6} XOR gates, payload {:>6} GE",
        sr.xor_gates,
        sr.gate_equivalents()
    );
    println!(
        "  mixing advantage: {:.1}x more XOR gates for the attacker",
        lfsr.xor_gates as f64 / sr.xor_gates.max(1) as f64
    );

    let path = write_results("xor_tree", &rows)?;
    println!("\nresults written to {}", path.display());
    Ok(())
}
