//! Minimal in-repo JSON support for the experiment harness.
//!
//! The hermetic-build policy (DESIGN.md) forbids registry dependencies, so
//! the `serde`/`serde_json` pair is replaced by this ~300-line module: a
//! [`Json`] value tree, a [`ToJson`] conversion trait with a
//! [`json_object!`](crate::json_object) ergonomic macro for row structs,
//! a writer with full string escaping and 2-space pretty-printing (matching
//! the `serde_json::to_string_pretty` layout of the checked-in
//! `results/*.json` files), and a recursive-descent parser used by the
//! round-trip tests.

use std::fmt::Write as _;

/// A JSON value.
///
/// Non-negative integers normalize to `UInt` and negative ones to `Int`
/// (both in the writer and the parser), so values compare equal across a
/// write→parse round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Any number written with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object; insertion order is preserved (the writer never reorders).
    Object(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] tree — the stand-in for `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )+};
}

macro_rules! impl_tojson_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 {
                    Json::UInt(v as u64)
                } else {
                    Json::Int(v)
                }
            }
        }
    )+};
}

impl_tojson_uint!(u8, u16, u32, u64, usize);
impl_tojson_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Builds a [`Json::Object`] from `key: value` pairs; keys are taken
/// literally from the identifiers and values through [`ToJson`].
///
/// ```
/// use orap_bench::json_object;
/// let row = json_object! { circuit: "c17", gates: 6usize, hd: 49.5f64 };
/// assert!(row.pretty().contains("\"circuit\": \"c17\""));
/// ```
#[macro_export]
macro_rules! json_object {
    ( $( $key:ident : $val:expr ),* $(,)? ) => {
        $crate::json::Json::Object(vec![
            $( (stringify!($key).to_string(), $crate::json::ToJson::to_json(&$val)) ),*
        ])
    };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite float so it round-trips and always reads back as a
/// float (`1.0`, not `1`). Non-finite values have no JSON representation
/// and are written as `null`, mirroring the common lossy convention.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

impl Json {
    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            out.push('\n');
                            out.push_str(&"  ".repeat(level + 1));
                            item.write(out, Some(level + 1));
                        }
                        None => item.write(out, None),
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            out.push('\n');
                            out.push_str(&"  ".repeat(level + 1));
                            escape_into(out, key);
                            out.push_str(": ");
                            value.write(out, Some(level + 1));
                        }
                        None => {
                            escape_into(out, key);
                            out.push(':');
                            value.write(out, None);
                        }
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push('}');
            }
        }
    }

    /// Serializes with 2-space indentation (the `serde_json` pretty layout
    /// used by the checked-in `results/*.json`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Serializes without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }
}

/// Position-annotated parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (used by the round-trip tests; the harness itself
/// only writes).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Json::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else {
            // Integer overflowing both i64 and u64: keep it as a float, the
            // same lossy fallback serde_json's arbitrary_precision-less
            // default applies on read.
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

impl ToJson for cdcl::SolverStats {
    fn to_json(&self) -> Json {
        crate::json_object! {
            solves: self.solves,
            decisions: self.decisions,
            propagations: self.propagations,
            conflicts: self.conflicts,
            restarts: self.restarts,
            learned_clauses: self.learned_clauses,
            learned_literals_pre: self.learned_literals_pre,
            learned_literals_post: self.learned_literals_post,
            db_reductions: self.db_reductions,
            clauses_deleted: self.clauses_deleted,
            inprocessings: self.inprocessings,
            subsumed_clauses: self.subsumed_clauses,
            strengthened_clauses: self.strengthened_clauses,
            eliminated_vars: self.eliminated_vars,
            restored_vars: self.restored_vars,
            vivified_literals: self.vivified_literals,
            chrono_backtracks: self.chrono_backtracks,
            restarts_blocked: self.restarts_blocked,
            restarts_forced: self.restarts_forced,
        }
    }
}

impl ToJson for netlist::EngineCounters {
    fn to_json(&self) -> Json {
        crate::json_object! {
            full_evals: self.full_evals,
            incremental_props: self.incremental_props,
            events: self.events,
        }
    }
}

impl ToJson for attacks::DipTelemetry {
    fn to_json(&self) -> Json {
        crate::json_object! {
            clauses_added: self.clauses_added,
            conflicts: self.conflicts,
            subsumed_clauses: self.subsumed_clauses,
            eliminated_vars: self.eliminated_vars,
            vivified_literals: self.vivified_literals,
        }
    }
}

impl ToJson for attacks::AttackTelemetry {
    fn to_json(&self) -> Json {
        let avg_clauses_per_dip = if self.dips.is_empty() {
            0.0
        } else {
            self.dips.iter().map(|d| d.clauses_added).sum::<usize>() as f64
                / self.dips.len() as f64
        };
        crate::json_object! {
            dips: self.dips.len(),
            avg_clauses_per_dip: avg_clauses_per_dip,
            clauses: self.clauses,
            vars: self.vars,
            solver: self.solver,
            engine: self.engine,
        }
    }
}

impl ToJson for exec::StageStats {
    fn to_json(&self) -> Json {
        crate::json_object! {
            label: self.label,
            calls: self.calls,
            tasks: self.tasks,
            wall_ns: self.wall_ns,
            busy_ns: self.busy_ns,
            idle_ns: self.idle_ns,
            stolen: self.stolen,
        }
    }
}

impl ToJson for exec::PoolStats {
    fn to_json(&self) -> Json {
        crate::json_object! {
            threads: self.threads,
            total_tasks: self.total_tasks(),
            total_wall_ns: self.total_wall_ns(),
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\u{01} high:\u{10348}";
        let written = Json::Str(nasty.to_string()).compact();
        assert!(written.contains("\\\""));
        assert!(written.contains("\\\\"));
        assert!(written.contains("\\n"));
        assert!(written.contains("\\t"));
        assert!(written.contains("\\u0001"));
        assert_eq!(parse(&written).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn floats_always_read_back_as_floats() {
        assert_eq!(Json::Float(1.0).compact(), "1.0");
        assert_eq!(Json::Float(15.82729605741279).compact(), "15.82729605741279");
        assert_eq!(Json::Float(-0.5).compact(), "-0.5");
        assert_eq!(parse(&Json::Float(1e300).compact()).unwrap(), Json::Float(1e300));
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
        let round = parse(&Json::Float(15.82729605741279).compact()).unwrap();
        assert_eq!(round, Json::Float(15.82729605741279));
    }

    #[test]
    fn integer_normalization() {
        assert_eq!((5usize).to_json(), Json::UInt(5));
        assert_eq!((5i64).to_json(), Json::UInt(5));
        assert_eq!((-5i64).to_json(), Json::Int(-5));
        assert_eq!(parse("5").unwrap(), Json::UInt(5));
        assert_eq!(parse("-5").unwrap(), Json::Int(-5));
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = json_object! {
            name: "x",
            values: vec![1usize, 2],
        };
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"x\",\n  \"values\": [\n    1,\n    2\n  ]\n}"
        );
        assert_eq!(Json::Array(vec![]).pretty(), "[]");
        assert_eq!(Json::Object(vec![]).pretty(), "{}");
    }

    #[test]
    fn option_and_null() {
        assert_eq!(None::<bool>.to_json(), Json::Null);
        assert_eq!(Some(true).to_json(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(
            parse("\"\\ud800\\udf48\"").unwrap(),
            Json::Str("\u{10348}".into())
        );
        assert!(parse("\"\\ud800\"").is_err());
    }
}
