//! Lightweight micro-benchmark harness replacing `criterion` under the
//! hermetic-build policy.
//!
//! Each `benches/*.rs` target (compiled with `harness = false`) builds a
//! [`Harness`], registers closures with [`Harness::bench`] /
//! [`Harness::bench_throughput`], and calls [`Harness::finish`], which
//! prints one line per benchmark and writes the machine-readable trajectory
//! to `results/BENCH_<harness>.json`:
//!
//! ```text
//! simulator/comb_sim_eval_words/b20@0.02  median 184.2 µs  (10 samples × 271 iters)  912.4 Melem/s
//! ```
//!
//! Methodology: one calibration run picks an iteration count targeting
//! 50 ms per sample (so cheap kernels amortize timer
//! overhead and expensive ones still finish), a warmup discards cache and
//! branch-predictor cold starts, then `BENCH_SAMPLES` (default 10) samples
//! are timed and summarized by their median — median-of-N is robust to the
//! scheduler-noise outliers that plague mean-based reporting.

use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::json_object;

/// Target wall-clock time per measured sample.
const TARGET_SAMPLE_NANOS: u128 = 50_000_000;

/// Hard cap on iterations per sample (guards against ~ns closures).
const MAX_ITERS_PER_SAMPLE: u64 = 4_000_000;

/// One benchmark's summarized measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (unique within the harness).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
    /// Optional elements-processed-per-iteration for throughput lines.
    pub throughput_elems: Option<u64>,
}

impl Measurement {
    /// Elements per second implied by the median, if a throughput element
    /// count was registered.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.throughput_elems
            .map(|e| e as f64 / (self.median_ns / 1e9))
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        json_object! {
            name: self.name,
            median_ns: self.median_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
            samples: self.samples,
            iters_per_sample: self.iters_per_sample,
            throughput_elems: self.throughput_elems,
            elems_per_sec: self.elems_per_sec(),
        }
    }
}

/// Latency-distribution summary over a set of raw nanosecond samples — the
/// telemetry shape the serving load harness reports per job kind
/// (p50/p95/p99 are the fields EXPERIMENTS.md documents for
/// `results/BENCH_serve.json`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Median (50th percentile), ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: f64,
    /// Fastest sample, ns.
    pub min_ns: u64,
    /// Slowest sample, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes raw latency samples (order irrelevant; `samples` is
    /// sorted in place). Percentiles use the nearest-rank method:
    /// `p = samples_sorted[ceil(q/100 · n) − 1]`, so `p99` of 100 samples
    /// is the 99th-smallest and every percentile is an actually observed
    /// latency. Returns an all-zero summary for an empty input.
    pub fn from_samples(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
                mean_ns: 0.0,
                min_ns: 0,
                max_ns: 0,
            };
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencySummary {
            count: n,
            p50_ns: rank(50.0),
            p95_ns: rank(95.0),
            p99_ns: rank(99.0),
            mean_ns: samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64,
            min_ns: samples[0],
            max_ns: samples[n - 1],
        }
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        json_object! {
            count: self.count,
            p50_ns: self.p50_ns,
            p95_ns: self.p95_ns,
            p99_ns: self.p99_ns,
            mean_ns: self.mean_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }
}

/// A named collection of benchmarks, written out together by [`finish`].
///
/// [`finish`]: Harness::finish
#[derive(Debug)]
pub struct Harness {
    name: String,
    samples: usize,
    results: Vec<Measurement>,
}

/// Formats a nanosecond duration with an adaptive unit (ns/µs/ms/s).
pub fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn human_rate(elems_per_sec: f64) -> String {
    if elems_per_sec >= 1e9 {
        format!("{:.2} Gelem/s", elems_per_sec / 1e9)
    } else if elems_per_sec >= 1e6 {
        format!("{:.2} Melem/s", elems_per_sec / 1e6)
    } else if elems_per_sec >= 1e3 {
        format!("{:.2} Kelem/s", elems_per_sec / 1e3)
    } else {
        format!("{elems_per_sec:.1} elem/s")
    }
}

impl Harness {
    /// Creates a harness; `name` becomes the `BENCH_<name>.json` stem. The
    /// `BENCH_SAMPLES` environment variable overrides the sample count
    /// (minimum 3 so a median is meaningful).
    pub fn new(name: &str) -> Self {
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(10)
            .max(3);
        Harness {
            name: name.to_string(),
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, reporting nanoseconds per call.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.run(name, None, f);
    }

    /// Times `f`, additionally reporting throughput given that one call
    /// processes `elems` elements.
    pub fn bench_throughput<R>(&mut self, name: &str, elems: u64, f: impl FnMut() -> R) {
        self.run(name, Some(elems), f);
    }

    fn run<R>(&mut self, name: &str, throughput_elems: Option<u64>, mut f: impl FnMut() -> R) {
        // Calibration: time one call, derive iterations per sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters = ((TARGET_SAMPLE_NANOS / once).clamp(1, MAX_ITERS_PER_SAMPLE as u128)) as u64;

        // Warmup: one full sample's worth, unrecorded.
        for _ in 0..iters.min(1000) {
            std::hint::black_box(f());
        }

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = if per_iter_ns.len() % 2 == 1 {
            per_iter_ns[per_iter_ns.len() / 2]
        } else {
            (per_iter_ns[per_iter_ns.len() / 2 - 1] + per_iter_ns[per_iter_ns.len() / 2]) / 2.0
        };
        let m = Measurement {
            name: name.to_string(),
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("samples >= 3"),
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
            throughput_elems,
        };
        let rate = m
            .elems_per_sec()
            .map(|r| format!("  {}", human_rate(r)))
            .unwrap_or_default();
        println!(
            "{}/{}  median {}  ({} samples × {} iters){}",
            self.name,
            m.name,
            human_time(m.median_ns),
            m.samples,
            m.iters_per_sample,
            rate
        );
        self.results.push(m);
    }

    /// Prints the footer and writes `results/BENCH_<name>.json`. Returns the
    /// path written.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        let doc = json_object! {
            harness: self.name,
            samples: self.samples,
            benchmarks: self.results,
        };
        let path = crate::write_results(&format!("BENCH_{}", self.name), &doc)?;
        println!(
            "{}: {} benchmarks, results written to {}",
            self.name,
            self.results.len(),
            path.display()
        );
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_summarizes() {
        std::env::set_var("BENCH_SAMPLES", "3");
        let mut h = Harness::new("selftest_timing");
        let mut acc = 0u64;
        h.bench_throughput("wrapping_sum", 64, || {
            for i in 0..64u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(h.results.len(), 1);
        let m = &h.results[0];
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.elems_per_sec().unwrap() > 0.0);
        let path = h.finish().expect("write");
        let text = std::fs::read_to_string(path).expect("read back");
        let doc = crate::json::parse(&text).expect("valid json");
        assert!(matches!(doc, Json::Object(_)));
        assert!(text.contains("wrapping_sum"));
    }

    #[test]
    fn human_units() {
        assert_eq!(human_time(12.3), "12.3 ns");
        assert_eq!(human_time(12_300.0), "12.300 µs");
        assert_eq!(human_time(12_300_000.0), "12.300 ms");
        assert_eq!(human_time(2_500_000_000.0), "2.500 s");
        assert_eq!(human_rate(1.5e9), "1.50 Gelem/s");
        assert_eq!(human_rate(2.0e6), "2.00 Melem/s");
    }
}
