//! Property-based tests (qcheck) for the CDCL solver and DIMACS I/O.
//!
//! The solver properties run with a deliberately hostile configuration —
//! restarts every conflict and a clause database that reduces almost
//! immediately — so the Luby/LBD machinery is exercised even on tiny
//! formulas where the defaults would never trigger it.

use cdcl::{dimacs, CcMin, RestartMode, SolveResult, Solver, SolverConfig, Var};
use qcheck::{any_bool, vec_of};

/// A configuration that restarts and reduces as aggressively as possible,
/// with the most elaborate minimization mode. Pinned to Luby restarts: the
/// restart-count sanity assertion below relies on the static
/// restart-every-conflict schedule.
fn hostile_config() -> SolverConfig {
    SolverConfig {
        restart_mode: RestartMode::Luby,
        restart_base: 1,
        reduce_base: 1,
        reduce_increment: 1,
        ccmin: CcMin::Deep,
        ..SolverConfig::default()
    }
}

/// Everything-on inprocessing: a simplification round before (almost) every
/// solve, chronological backtracking from distance 1, EMA restarts
/// re-evaluated every other conflict.
fn aggressive_config() -> SolverConfig {
    SolverConfig {
        restart_mode: RestartMode::Ema,
        restart_min_interval: 2,
        reduce_base: 2,
        reduce_increment: 2,
        ccmin: CcMin::Deep,
        chrono_threshold: 1,
        inprocess_trigger: 1,
        inprocess_min_clauses: 0,
        ..SolverConfig::default()
    }
}

/// Everything-off counterpart: pure Luby, no chronological backtracking, no
/// inprocessing — the pre-inprocessing solver.
fn plain_config() -> SolverConfig {
    SolverConfig {
        restart_mode: RestartMode::Luby,
        chrono_threshold: 0,
        inprocess_trigger: 0,
        ..SolverConfig::default()
    }
}

/// Builds clauses over `num_vars` variables from raw generator output.
fn build_clauses(raw: &[Vec<(u64, bool)>], num_vars: usize) -> Vec<Vec<cdcl::Lit>> {
    raw.iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&(v, sign)| Var::from_index((v % num_vars as u64) as usize).lit(sign))
                .collect()
        })
        .collect()
}

/// Exhaustive satisfiability check over all `2^num_vars` assignments.
fn brute_force_sat(clauses: &[Vec<cdcl::Lit>], num_vars: usize) -> bool {
    (0u32..1 << num_vars).any(|m| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive())
        })
    })
}

qcheck::props! {
    config = qcheck::Config::with_cases(64);

    /// `dimacs::write` followed by `dimacs::parse` reproduces the formula
    /// exactly (variable count, clause order, literal signs, even empty
    /// clauses).
    fn dimacs_roundtrip(
        num_vars in 1usize..17,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 0..8), 0..30),
    ) {
        let cnf = dimacs::Cnf {
            num_vars,
            clauses: build_clauses(&raw, num_vars),
        };
        let text = dimacs::write(&cnf);
        let again = dimacs::parse(&text)
            .map_err(|e| format!("write produced unparsable text: {e}"))?;
        qcheck::prop_assert_eq!(cnf, again);
    }

    /// The solver agrees with brute force on random small CNFs while
    /// restarting on every conflict and reducing the learnt database on
    /// every check — the verdict must be invariant under both.
    fn solver_agrees_with_brute_force_under_hostile_config(
        num_vars in 1usize..13,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..5), 0..60),
    ) {
        let clauses = build_clauses(&raw, num_vars);
        let expect = brute_force_sat(&clauses, num_vars);
        let mut solver = Solver::with_config(hostile_config());
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let verdict = solver.solve();
        qcheck::prop_assert_eq!(
            verdict,
            if expect { SolveResult::Sat } else { SolveResult::Unsat }
        );
        if verdict == SolveResult::Sat {
            // The model must actually satisfy every clause.
            for c in &clauses {
                qcheck::prop_assert!(
                    c.iter().any(|l| solver.value(l.var()) == Some(l.is_positive())),
                    "model violates clause {c:?}"
                );
            }
        }
        // The hostile schedule must have been exercised when there was any
        // real search (sanity check that the property tests what it claims).
        if solver.stats().conflicts >= 2 {
            qcheck::prop_assert!(solver.stats().restarts >= 1);
        }
    }

    /// Incremental solving under assumptions stays consistent with brute
    /// force: for a random assumption literal, the assumed solve matches
    /// brute force on the formula plus that unit clause.
    fn assumption_solve_matches_unit_clause(
        num_vars in 1usize..10,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..4), 0..40),
        pick in (0u64..1 << 30, any_bool()),
    ) {
        let clauses = build_clauses(&raw, num_vars);
        let lit = Var::from_index((pick.0 % num_vars as u64) as usize).lit(pick.1);
        let mut with_unit = clauses.clone();
        with_unit.push(vec![lit]);
        let expect = brute_force_sat(&with_unit, num_vars);
        let mut solver = Solver::with_config(hostile_config());
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let verdict = solver.solve_with(&[lit]);
        qcheck::prop_assert_eq!(
            verdict,
            if expect { SolveResult::Sat } else { SolveResult::Unsat }
        );
        // The solver must stay reusable after the assumed call.
        let unassumed = solver.solve();
        qcheck::prop_assert_eq!(
            unassumed,
            if brute_force_sat(&clauses, num_vars) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            }
        );
    }

    /// Inprocessing on vs off agree on SAT/UNSAT (and with brute force), and
    /// the inprocessing solver's models are valid for the *original*
    /// pre-elimination CNF — including across an incremental step that adds
    /// a clause and assumes a literal, both of which may mention variables
    /// the first solve eliminated (restore-on-demand).
    fn inprocessing_on_vs_off_agree(
        num_vars in 1usize..13,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..4), 0..50),
        extra_raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..4), 1..2),
        pick in (0u64..1 << 30, any_bool()),
    ) {
        let clauses = build_clauses(&raw, num_vars);
        let mut on = Solver::with_config(aggressive_config());
        let mut off = Solver::with_config(plain_config());
        for _ in 0..num_vars {
            on.new_var();
            off.new_var();
        }
        for c in &clauses {
            on.add_clause(c);
            off.add_clause(c);
        }
        let expect = if brute_force_sat(&clauses, num_vars) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        qcheck::prop_assert_eq!(on.solve(), expect);
        qcheck::prop_assert_eq!(off.solve(), expect);
        if expect == SolveResult::Sat {
            for c in &clauses {
                qcheck::prop_assert!(
                    c.iter().any(|l| on.value(l.var()) == Some(l.is_positive())),
                    "inprocessing model violates original clause {c:?}"
                );
            }
        }
        // Incremental step: a new clause plus an assumption, checked against
        // brute force on the extended formula.
        let extra = build_clauses(&extra_raw, num_vars);
        let lit = Var::from_index((pick.0 % num_vars as u64) as usize).lit(pick.1);
        let mut extended = clauses.clone();
        extended.extend(extra.iter().cloned());
        let mut assumed = extended.clone();
        assumed.push(vec![lit]);
        let expect2 = if brute_force_sat(&assumed, num_vars) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        for c in &extra {
            on.add_clause(c);
            off.add_clause(c);
        }
        qcheck::prop_assert_eq!(on.solve_with(&[lit]), expect2);
        qcheck::prop_assert_eq!(off.solve_with(&[lit]), expect2);
        if expect2 == SolveResult::Sat {
            for c in &extended {
                qcheck::prop_assert!(
                    c.iter().any(|l| on.value(l.var()) == Some(l.is_positive())),
                    "post-restore model violates clause {c:?}"
                );
            }
            qcheck::prop_assert_eq!(on.value(lit.var()), Some(lit.is_positive()));
        }
    }
}
