//! Property-based tests (qcheck) for the CDCL solver and DIMACS I/O.
//!
//! The solver properties run with a deliberately hostile configuration —
//! restarts every conflict and a clause database that reduces almost
//! immediately — so the Luby/LBD machinery is exercised even on tiny
//! formulas where the defaults would never trigger it.

use cdcl::{dimacs, CcMin, SolveResult, Solver, SolverConfig, Var};
use qcheck::{any_bool, vec_of};

/// A configuration that restarts and reduces as aggressively as possible,
/// with the most elaborate minimization mode.
fn hostile_config() -> SolverConfig {
    SolverConfig {
        restart_base: 1,
        reduce_base: 1,
        reduce_increment: 1,
        ccmin: CcMin::Deep,
        ..SolverConfig::default()
    }
}

/// Builds clauses over `num_vars` variables from raw generator output.
fn build_clauses(raw: &[Vec<(u64, bool)>], num_vars: usize) -> Vec<Vec<cdcl::Lit>> {
    raw.iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&(v, sign)| Var::from_index((v % num_vars as u64) as usize).lit(sign))
                .collect()
        })
        .collect()
}

/// Exhaustive satisfiability check over all `2^num_vars` assignments.
fn brute_force_sat(clauses: &[Vec<cdcl::Lit>], num_vars: usize) -> bool {
    (0u32..1 << num_vars).any(|m| {
        clauses.iter().all(|c| {
            c.iter()
                .any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive())
        })
    })
}

qcheck::props! {
    config = qcheck::Config::with_cases(64);

    /// `dimacs::write` followed by `dimacs::parse` reproduces the formula
    /// exactly (variable count, clause order, literal signs, even empty
    /// clauses).
    fn dimacs_roundtrip(
        num_vars in 1usize..17,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 0..8), 0..30),
    ) {
        let cnf = dimacs::Cnf {
            num_vars,
            clauses: build_clauses(&raw, num_vars),
        };
        let text = dimacs::write(&cnf);
        let again = dimacs::parse(&text)
            .map_err(|e| format!("write produced unparsable text: {e}"))?;
        qcheck::prop_assert_eq!(cnf, again);
    }

    /// The solver agrees with brute force on random small CNFs while
    /// restarting on every conflict and reducing the learnt database on
    /// every check — the verdict must be invariant under both.
    fn solver_agrees_with_brute_force_under_hostile_config(
        num_vars in 1usize..13,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..5), 0..60),
    ) {
        let clauses = build_clauses(&raw, num_vars);
        let expect = brute_force_sat(&clauses, num_vars);
        let mut solver = Solver::with_config(hostile_config());
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let verdict = solver.solve();
        qcheck::prop_assert_eq!(
            verdict,
            if expect { SolveResult::Sat } else { SolveResult::Unsat }
        );
        if verdict == SolveResult::Sat {
            // The model must actually satisfy every clause.
            for c in &clauses {
                qcheck::prop_assert!(
                    c.iter().any(|l| solver.value(l.var()) == Some(l.is_positive())),
                    "model violates clause {c:?}"
                );
            }
        }
        // The hostile schedule must have been exercised when there was any
        // real search (sanity check that the property tests what it claims).
        if solver.stats().conflicts >= 2 {
            qcheck::prop_assert!(solver.stats().restarts >= 1);
        }
    }

    /// Incremental solving under assumptions stays consistent with brute
    /// force: for a random assumption literal, the assumed solve matches
    /// brute force on the formula plus that unit clause.
    fn assumption_solve_matches_unit_clause(
        num_vars in 1usize..10,
        raw in vec_of(vec_of((0u64..1 << 30, any_bool()), 1..4), 0..40),
        pick in (0u64..1 << 30, any_bool()),
    ) {
        let clauses = build_clauses(&raw, num_vars);
        let lit = Var::from_index((pick.0 % num_vars as u64) as usize).lit(pick.1);
        let mut with_unit = clauses.clone();
        with_unit.push(vec![lit]);
        let expect = brute_force_sat(&with_unit, num_vars);
        let mut solver = Solver::with_config(hostile_config());
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            solver.add_clause(c);
        }
        let verdict = solver.solve_with(&[lit]);
        qcheck::prop_assert_eq!(
            verdict,
            if expect { SolveResult::Sat } else { SolveResult::Unsat }
        );
        // The solver must stay reusable after the assumed call.
        let unassumed = solver.solve();
        qcheck::prop_assert_eq!(
            unassumed,
            if brute_force_sat(&clauses, num_vars) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            }
        );
    }
}
