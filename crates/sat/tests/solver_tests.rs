//! Functional and randomized tests for the CDCL solver.

use cdcl::{Lit, SolveResult, Solver, Var};

fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
    (0..n).map(|_| s.new_var()).collect()
}

/// Pigeonhole exclusivity: no two pigeons (rows) share a hole (column).
fn at_most_one_per_hole(s: &mut Solver, p: &[Vec<Var>]) {
    for (i1, row1) in p.iter().enumerate() {
        for row2 in &p[i1 + 1..] {
            for (a, b) in row1.iter().zip(row2) {
                s.add_clause(&[a.negative(), b.negative()]);
            }
        }
    }
}

/// Naive DPLL-free truth-table check for reference.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(num_vars <= 20);
    'outer: for m in 0u64..(1 << num_vars) {
        for c in clauses {
            let sat = c.iter().any(|l| {
                let v = (m >> l.var().index()) & 1 == 1;
                v == l.is_positive()
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn model_satisfies(s: &Solver, clauses: &[Vec<Lit>]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|l| s.value(l.var()) == Some(l.is_positive()))
    })
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn unit_propagation_chain() {
    let mut s = Solver::new();
    let v = vars(&mut s, 5);
    s.add_clause(&[v[0].positive()]);
    for i in 0..4 {
        s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    for &x in &v {
        assert_eq!(s.value(x), Some(true));
    }
}

#[test]
fn trivial_unsat() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.positive()]));
    assert!(!s.add_clause(&[a.negative()]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautologies_ignored() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.positive(), a.negative()]));
    assert_eq!(s.num_clauses(), 0);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn xor_chain_sat() {
    // x0 ^ x1 ^ ... ^ x7 = 1, encoded clause-wise pairwise via Tseitin-ish
    // chaining: t_i = t_{i-1} ^ x_i.
    let mut s = Solver::new();
    let x = vars(&mut s, 8);
    let mut prev = x[0];
    for &xi in &x[1..] {
        let t = s.new_var();
        // t = prev XOR xi
        s.add_clause(&[t.negative(), prev.positive(), xi.positive()]);
        s.add_clause(&[t.negative(), prev.negative(), xi.negative()]);
        s.add_clause(&[t.positive(), prev.negative(), xi.positive()]);
        s.add_clause(&[t.positive(), prev.positive(), xi.negative()]);
        prev = t;
    }
    s.add_clause(&[prev.positive()]);
    assert_eq!(s.solve(), SolveResult::Sat);
    let parity = x
        .iter()
        .fold(false, |acc, &v| acc ^ s.value(v).unwrap_or(false));
    assert!(parity, "model must satisfy odd parity");
}

#[test]
fn pigeonhole_4_into_3_unsat() {
    // p_{i,j}: pigeon i in hole j. 4 pigeons, 3 holes.
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..4).map(|_| vars(&mut s, 3)).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    at_most_one_per_hole(&mut s, &p);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn pigeonhole_unsat_under_every_ccmin_mode() {
    use cdcl::{CcMin, SolverConfig};
    for ccmin in [CcMin::None, CcMin::Basic, CcMin::Deep] {
        let mut s = Solver::with_config(SolverConfig {
            ccmin,
            ..SolverConfig::default()
        });
        let p: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 4)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        at_most_one_per_hole(&mut s, &p);
        assert_eq!(s.solve(), SolveResult::Unsat, "ccmin mode {ccmin:?}");
    }
}

#[test]
fn pigeonhole_5_into_5_sat() {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 5)).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    at_most_one_per_hole(&mut s, &p);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn assumptions_flip_verdict() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.positive(), b.positive()]);
    assert_eq!(s.solve_with(&[a.negative(), b.negative()]), SolveResult::Unsat);
    assert_eq!(s.solve_with(&[a.negative()]), SolveResult::Sat);
    assert_eq!(s.value(b), Some(true));
    // Solver stays usable: no permanent damage from assumption conflicts.
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn incremental_strengthening() {
    // The SAT-attack usage pattern: solve, add clauses, solve again.
    let mut s = Solver::new();
    let v = vars(&mut s, 4);
    s.add_clause(&[v[0].positive(), v[1].positive()]);
    assert_eq!(s.solve(), SolveResult::Sat);
    s.add_clause(&[v[0].negative()]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(v[1]), Some(true));
    s.add_clause(&[v[1].negative()]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn conflict_budget_reports_unknown() {
    // A hard-ish random instance with a 1-conflict budget.
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..7).map(|_| vars(&mut s, 6)).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    at_most_one_per_hole(&mut s, &p);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn random_3cnf_agrees_with_brute_force() {
    // Deterministic xorshift for clause generation.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..200 {
        let nv = 4 + (next() % 9) as usize; // 4..=12 vars
        let nc = nv * 4 + (next() % 10) as usize;
        let clauses: Vec<Vec<Lit>> = (0..nc)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = Var::from_index((next() % nv as u64) as usize);
                        v.lit(next() & 1 == 1)
                    })
                    .collect()
            })
            .collect();
        let expected = brute_force_sat(nv, &clauses);
        let mut s = Solver::new();
        vars(&mut s, nv);
        let mut root_conflict = false;
        for c in &clauses {
            if !s.add_clause(c) {
                root_conflict = true;
            }
        }
        let got = if root_conflict {
            SolveResult::Unsat
        } else {
            s.solve()
        };
        let want = if expected {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        assert_eq!(got, want, "round {round} ({nv} vars, {nc} clauses)");
        if got == SolveResult::Sat {
            assert!(
                model_satisfies(&s, &clauses),
                "round {round}: returned model does not satisfy formula"
            );
        }
    }
}

#[test]
fn incremental_random_sequences() {
    // Add clauses in batches, solving between batches; verdicts must match a
    // from-scratch solver on every prefix.
    let mut state = 0xdead_beef_cafe_1234u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..30 {
        let nv = 5 + (next() % 6) as usize;
        let batches: Vec<Vec<Vec<Lit>>> = (0..4)
            .map(|_| {
                (0..nv)
                    .map(|_| {
                        (0..3)
                            .map(|_| {
                                let v = Var::from_index((next() % nv as u64) as usize);
                                v.lit(next() & 1 == 1)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut inc = Solver::new();
        vars(&mut inc, nv);
        let mut all: Vec<Vec<Lit>> = Vec::new();
        for (bi, batch) in batches.iter().enumerate() {
            let mut inc_dead = false;
            for c in batch {
                all.push(c.clone());
                if !inc.add_clause(c) {
                    inc_dead = true;
                }
            }
            let got = if inc_dead { SolveResult::Unsat } else { inc.solve() };
            let want = if brute_force_sat(nv, &all) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(got, want, "round {round} batch {bi}");
            if got == SolveResult::Unsat {
                break;
            }
        }
    }
}

#[test]
fn assumption_model_respects_assumptions() {
    let mut s = Solver::new();
    let v = vars(&mut s, 6);
    for i in 0..5 {
        s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
    }
    let r = s.solve_with(&[v[0].positive()]);
    assert_eq!(r, SolveResult::Sat);
    for &x in &v {
        assert_eq!(s.value(x), Some(true), "implication chain from assumption");
    }
}

/// Builds pigeonhole PHP(holes+1, holes): unsatisfiable and exponentially
/// hard for resolution, so a search on it reliably outlives short timers.
fn php(s: &mut Solver, holes: usize) -> Vec<Vec<Var>> {
    let p: Vec<Vec<Var>> = (0..holes + 1).map(|_| vars(s, holes)).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    at_most_one_per_hole(s, &p);
    p
}

#[test]
fn preset_interrupt_flag_stops_before_search() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let mut s = Solver::new();
    php(&mut s, 7);
    let flag = Arc::new(AtomicBool::new(true));
    s.set_interrupt(Some(Arc::clone(&flag)));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert!(s.interrupted());
    // Clearing the flag resumes normally and the latch resets.
    flag.store(false, Ordering::Relaxed);
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(!s.interrupted());
}

#[test]
fn interrupt_flag_cancels_a_long_solve_mid_search() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    // PHP(13, 12) takes far longer than the timer on any hardware; the
    // solve must come back quickly once the flag fires mid-search.
    let mut s = Solver::new();
    php(&mut s, 12);
    let flag = Arc::new(AtomicBool::new(false));
    s.set_interrupt(Some(Arc::clone(&flag)));
    let setter = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            flag.store(true, Ordering::Relaxed);
        })
    };
    let t0 = Instant::now();
    let result = s.solve();
    setter.join().unwrap();
    assert_eq!(result, SolveResult::Unknown);
    assert!(s.interrupted());
    assert!(s.stats().conflicts > 0, "interrupt should land mid-search");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "cancel took {:?}",
        t0.elapsed()
    );
    // The solver stays usable: drop the hook and finish a sat instance.
    s.set_interrupt(None);
    let mut easy = Solver::new();
    let v = vars(&mut easy, 2);
    easy.add_clause(&[v[0].positive(), v[1].positive()]);
    assert_eq!(easy.solve(), SolveResult::Sat);
}

#[test]
fn expired_deadline_reports_unknown_and_interrupted() {
    use std::time::{Duration, Instant};
    let mut s = Solver::new();
    php(&mut s, 9);
    s.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert!(s.interrupted());
    s.set_deadline(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(!s.interrupted());
}

#[test]
fn budget_unknown_is_not_reported_as_interrupted() {
    let mut s = Solver::new();
    php(&mut s, 7);
    s.set_conflict_budget(Some(1));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert!(!s.interrupted());
}
