//! Inprocessing core: root-level cleanup, occurrence-list backward
//! subsumption with self-subsuming strengthening, and bounded variable
//! elimination (BVE) with model reconstruction.
//!
//! This is a child module of [`super`] (the solver), so it works on the
//! solver's private state directly. A round runs at decision level 0 with
//! every root reason cleared ([`Solver::propagate_root_clear`]): conflict
//! analysis never expands level-0 literals, and with no reason pointers
//! into the arena every clause is free to be deleted or rebuilt. Watch
//! entries of deleted clauses are removed eagerly — the binary watch lists
//! carry no deleted-flag check, so a stale entry there would be unsound.
//!
//! Elimination soundness for incremental use: eliminating `v` replaces its
//! occurrence clauses by their pairwise resolvents, which preserves
//! satisfiability but not equivalence. The original occurrence clauses are
//! saved in an [`ElimRecord`]; models are extended over eliminated
//! variables by walking the records in reverse ([`Solver::extend_model`]),
//! and any later clause or assumption that mentions an eliminated variable
//! re-adds the saved clauses ([`Solver::restore_var`]), restoring full
//! equivalence for that variable.

use super::*;
use std::collections::HashMap;

/// Longest clause allowed to act as a subsumer.
const SUB_MAX_CLEN: usize = 20;
/// Skip subsumption checks through literals hotter than this (e.g. the
/// activation literal of a miter, which occurs in almost every clause).
const SUB_MAX_OCCS: usize = 3000;
/// BVE: max occurrences per polarity for an elimination candidate.
const BVE_MAX_OCC: usize = 16;
/// BVE: max length of clauses feeding a resolution.
const BVE_MAX_CLEN: usize = 16;
/// BVE: max length of a produced resolvent.
const BVE_MAX_RES_LEN: usize = 24;

/// Result of the combined subsumption/strengthening check.
enum SubsumeResult {
    None,
    /// The subsumer implies the candidate: delete the candidate.
    Subsume,
    /// All literals match except one occurring negated in the candidate:
    /// self-subsuming resolution removes that literal from the candidate.
    Strengthen(Lit),
}

impl Solver {
    /// One inprocessing round, run at the start of a solve. `assumptions`
    /// are pinned (frozen) for the duration so the round cannot eliminate a
    /// variable this very solve is about to assume.
    pub(super) fn inprocess(&mut self, assumptions: &[Lit]) {
        debug_assert!(self.trail_lim.is_empty());
        self.stats.inprocessings += 1;
        if !self.propagate_root_clear() {
            self.ok = false;
            self.adds_since_inprocess = 0;
            return;
        }
        let mut pinned: Vec<usize> = Vec::new();
        for a in assumptions {
            let v = a.var().index();
            if !self.frozen[v] {
                self.frozen[v] = true;
                pinned.push(v);
            }
        }
        self.cleanup_root();
        if self.ok {
            self.simplify_round();
        }
        if self.ok {
            self.vivify_round();
        }
        for v in pinned {
            self.frozen[v] = false;
        }
        self.adds_since_inprocess = 0;
        if self.ok && self.wasted * 3 > self.arena.len() {
            self.collect_garbage();
        }
    }

    /// Root-level propagation for inprocessing: propagates to fixpoint and
    /// clears the reason of every trail literal. Returns `false` on a root
    /// conflict.
    pub(super) fn propagate_root_clear(&mut self) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        let conflict = self.propagate();
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.reason[v] = REASON_NONE;
        }
        conflict.is_none()
    }

    /// The literals of a clause, copied out of the arena.
    pub(super) fn clause_lits(&self, cref: ClauseRef) -> Vec<Lit> {
        let base = cref as usize;
        let len = (self.arena[base] & LEN_MASK) as usize;
        (0..len).map(|k| Lit(self.arena[base + HDR + k])).collect()
    }

    /// Removes the two watch entries of a live clause (long or binary).
    pub(super) fn detach_watches(&mut self, cref: ClauseRef) {
        let base = cref as usize;
        let len = (self.arena[base] & LEN_MASK) as usize;
        let w0 = Lit(self.arena[base + HDR]);
        let w1 = Lit(self.arena[base + HDR + 1]);
        let lists = if len == 2 {
            &mut self.watches_bin
        } else {
            &mut self.watches
        };
        lists[(!w0).code()].retain(|w| w.cref != cref);
        lists[(!w1).code()].retain(|w| w.cref != cref);
    }

    /// Re-adds the watch entries of a clause whose slots are untouched.
    pub(super) fn attach_watches(&mut self, cref: ClauseRef) {
        let base = cref as usize;
        let len = (self.arena[base] & LEN_MASK) as usize;
        let w0 = Lit(self.arena[base + HDR]);
        let w1 = Lit(self.arena[base + HDR + 1]);
        let lists = if len == 2 {
            &mut self.watches_bin
        } else {
            &mut self.watches
        };
        lists[(!w0).code()].push(Watch { cref, blocker: w1 });
        lists[(!w1).code()].push(Watch { cref, blocker: w0 });
    }

    /// Marks an already-detached clause deleted and fixes the counters.
    pub(super) fn delete_detached(&mut self, cref: ClauseRef) {
        let base = cref as usize;
        let header = self.arena[base];
        debug_assert_eq!(header & FLAG_DELETED, 0);
        self.arena[base] = header | FLAG_DELETED;
        self.wasted += HDR + (header & LEN_MASK) as usize;
        self.live_clauses -= 1;
        if header & FLAG_LEARNT != 0 {
            self.learnt_count -= 1;
        }
    }

    /// Deletes a live attached clause, removing its watches eagerly.
    pub(super) fn delete_clause(&mut self, cref: ClauseRef) {
        self.detach_watches(cref);
        self.delete_detached(cref);
    }

    /// Attaches a clause during inprocessing: dedupes, drops tautologies,
    /// satisfied clauses and root-falsified literals; units are enqueued at
    /// the root (reasons cleared). Returns the `ClauseRef` of clauses that
    /// were actually attached.
    pub(super) fn add_inprocess_clause(
        &mut self,
        lits: &[Lit],
        learnt: bool,
        lbd: u32,
    ) -> Option<ClauseRef> {
        if !self.ok {
            return None;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable_by_key(|l| l.code());
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return None; // tautology
            }
            match self.lit_value(l) {
                TRUE => return None,
                FALSE => {}
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                None
            }
            1 => {
                self.unchecked_enqueue(simplified[0], REASON_NONE);
                if !self.propagate_root_clear() {
                    self.ok = false;
                }
                None
            }
            _ => {
                let lbd = lbd.clamp(1, simplified.len() as u32 - 1);
                Some(self.attach_clause(&simplified, learnt, lbd))
            }
        }
    }

    /// Deletes root-satisfied clauses and strips root-falsified literals
    /// from the rest, so the occurrence lists built afterwards see only
    /// live literals.
    fn cleanup_root(&mut self) {
        let end = self.arena.len();
        let mut off = 0usize;
        while off < end {
            let header = self.arena[off];
            let len = (header & LEN_MASK) as usize;
            let cref = off as ClauseRef;
            off += HDR + len;
            if header & FLAG_DELETED != 0 {
                continue;
            }
            let mut satisfied = false;
            let mut falsified = false;
            for k in 0..len {
                match self.lit_value(Lit(self.arena[cref as usize + HDR + k])) {
                    TRUE => {
                        satisfied = true;
                        break;
                    }
                    FALSE => falsified = true,
                    _ => {}
                }
            }
            if satisfied {
                self.delete_clause(cref);
            } else if falsified {
                let lits = self.clause_lits(cref);
                let lits: Vec<Lit> = lits
                    .into_iter()
                    .filter(|&l| self.lit_value(l) != FALSE)
                    .collect();
                let learnt = header & FLAG_LEARNT != 0;
                let lbd = self.arena[cref as usize + 1];
                self.delete_clause(cref);
                self.add_inprocess_clause(&lits, learnt, lbd);
                if !self.ok {
                    return;
                }
            }
        }
    }

    /// Builds occurrence lists and runs subsumption/strengthening followed
    /// by bounded variable elimination.
    fn simplify_round(&mut self) {
        let nlits = self.assigns.len() * 2;
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); nlits];
        let mut sig: HashMap<ClauseRef, u64> = HashMap::new();
        let mut queue: Vec<ClauseRef> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off];
            let len = (header & LEN_MASK) as usize;
            let cref = off as ClauseRef;
            off += HDR + len;
            if header & FLAG_DELETED != 0 {
                continue;
            }
            let mut s = 0u64;
            for k in 0..len {
                let l = Lit(self.arena[cref as usize + HDR + k]);
                occ[l.code()].push(cref);
                s |= 1u64 << (l.var().index() & 63);
            }
            sig.insert(cref, s);
            queue.push(cref);
        }
        // Shortest subsumers first: they delete the most.
        queue.sort_by_key(|&c| self.arena[c as usize] & LEN_MASK);
        self.subsume_round(&mut occ, &mut sig, queue);
        if self.ok {
            self.bve_round(&mut occ, &mut sig);
        }
    }

    /// Backward subsumption + self-subsuming strengthening over a worklist.
    /// Strengthened clauses are re-queued until fixpoint.
    fn subsume_round(
        &mut self,
        occ: &mut [Vec<ClauseRef>],
        sig: &mut HashMap<ClauseRef, u64>,
        mut queue: Vec<ClauseRef>,
    ) {
        let mut qi = 0usize;
        while qi < queue.len() {
            let c = queue[qi];
            qi += 1;
            let cbase = c as usize;
            let cheader = self.arena[cbase];
            if cheader & FLAG_DELETED != 0 {
                continue;
            }
            let clen = (cheader & LEN_MASK) as usize;
            if clen > SUB_MAX_CLEN {
                continue;
            }
            let clits = self.clause_lits(c);
            let csig = sig[&c];
            let mut c_learnt = cheader & FLAG_LEARNT != 0;
            // Scan candidates through the least-occurring literal, both
            // polarities (the negated list catches strengthenings whose
            // flipped literal is the pivot itself).
            let lmin = clits
                .iter()
                .copied()
                .min_by_key(|&l| occ[l.code()].len() + occ[(!l).code()].len())
                .expect("clauses have at least two literals");
            if occ[lmin.code()].len() + occ[(!lmin).code()].len() > SUB_MAX_OCCS {
                continue;
            }
            let cands: Vec<ClauseRef> = occ[lmin.code()]
                .iter()
                .chain(occ[(!lmin).code()].iter())
                .copied()
                .collect();
            for d in cands {
                if d == c {
                    continue;
                }
                let dbase = d as usize;
                let dheader = self.arena[dbase];
                if dheader & FLAG_DELETED != 0 {
                    continue;
                }
                if ((dheader & LEN_MASK) as usize) < clen {
                    continue;
                }
                if csig & !sig[&d] != 0 {
                    continue;
                }
                match self.subsume_check(&clits, d) {
                    SubsumeResult::None => {}
                    SubsumeResult::Subsume => {
                        // A learnt clause subsuming an original is promoted
                        // to original first, so a later DB reduction can
                        // never delete both (CaDiCaL's rule).
                        if c_learnt && dheader & FLAG_LEARNT == 0 {
                            self.arena[cbase] &= !(FLAG_LEARNT | FLAG_USED);
                            self.learnt_count -= 1;
                            c_learnt = false;
                        }
                        self.delete_clause(d);
                        self.stats.subsumed_clauses += 1;
                    }
                    SubsumeResult::Strengthen(flip) => {
                        let newlits: Vec<Lit> = self
                            .clause_lits(d)
                            .into_iter()
                            .filter(|&l| l != flip)
                            .collect();
                        let d_learnt = dheader & FLAG_LEARNT != 0;
                        let dlbd = self.arena[dbase + 1];
                        self.delete_clause(d);
                        self.stats.strengthened_clauses += 1;
                        if let Some(nref) = self.add_inprocess_clause(&newlits, d_learnt, dlbd) {
                            let mut s = 0u64;
                            for l in self.clause_lits(nref) {
                                occ[l.code()].push(nref);
                                s |= 1u64 << (l.var().index() & 63);
                            }
                            sig.insert(nref, s);
                            queue.push(nref);
                        }
                        if !self.ok {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Does `clits` subsume (or strengthen-by-one-flip) clause `d`?
    fn subsume_check(&self, clits: &[Lit], d: ClauseRef) -> SubsumeResult {
        let dbase = d as usize;
        let dlen = (self.arena[dbase] & LEN_MASK) as usize;
        // Fault injection (test-only): compare variables while ignoring
        // polarity, yielding bogus Subsume verdicts.
        if self.sabotage == Some(SolverSabotage::UnsoundSubsumption) {
            for &cl in clits {
                let found = (0..dlen)
                    .any(|k| Lit(self.arena[dbase + HDR + k]).var() == cl.var());
                if !found {
                    return SubsumeResult::None;
                }
            }
            return SubsumeResult::Subsume;
        }
        let mut flip: Option<Lit> = None;
        for &cl in clits {
            let mut hit = false;
            for k in 0..dlen {
                let dl = Lit(self.arena[dbase + HDR + k]);
                if dl == cl {
                    hit = true;
                    break;
                }
                if dl == !cl {
                    if flip.is_some() {
                        return SubsumeResult::None;
                    }
                    flip = Some(dl);
                    hit = true;
                    break;
                }
            }
            if !hit {
                return SubsumeResult::None;
            }
        }
        match flip {
            None => SubsumeResult::Subsume,
            Some(f) => SubsumeResult::Strengthen(f),
        }
    }

    /// Bounded variable elimination, cheapest candidates first.
    fn bve_round(&mut self, occ: &mut [Vec<ClauseRef>], sig: &mut HashMap<ClauseRef, u64>) {
        let nvars = self.assigns.len();
        let mut cands: Vec<(usize, usize)> = (0..nvars)
            .filter(|&v| !self.frozen[v] && !self.eliminated[v] && self.assigns[v] == UNDEF)
            .filter_map(|v| {
                let p = Var(v as u32).positive();
                let n = occ[p.code()].len() + occ[(!p).code()].len();
                (n > 0).then_some((n, v))
            })
            .collect();
        cands.sort_unstable();
        for (_, v) in cands {
            if !self.ok {
                return;
            }
            if self.frozen[v] || self.eliminated[v] || self.assigns[v] != UNDEF {
                continue;
            }
            self.try_eliminate(v, occ, sig);
        }
    }

    /// Eliminates `v` if the pairwise resolvents of its occurrence clauses
    /// do not outnumber the clauses they replace.
    fn try_eliminate(
        &mut self,
        v: usize,
        occ: &mut [Vec<ClauseRef>],
        sig: &mut HashMap<ClauseRef, u64>,
    ) {
        let pvar = Var(v as u32);
        let plit = pvar.positive();
        let nlit = pvar.negative();
        // Live occurrences; originals feed the resolution, learnt clauses
        // mentioning the variable are dropped on elimination (they stay
        // implied by the remaining formula, but may not survive without v).
        let mut pos_orig: Vec<ClauseRef> = Vec::new();
        let mut neg_orig: Vec<ClauseRef> = Vec::new();
        let mut learnt_occ: Vec<ClauseRef> = Vec::new();
        for (lit, bucket) in [(plit, &mut pos_orig), (nlit, &mut neg_orig)] {
            for &c in &occ[lit.code()] {
                let header = self.arena[c as usize];
                if header & FLAG_DELETED != 0 {
                    continue;
                }
                if header & FLAG_LEARNT != 0 {
                    learnt_occ.push(c);
                    continue;
                }
                if (header & LEN_MASK) as usize > BVE_MAX_CLEN {
                    return;
                }
                bucket.push(c);
            }
        }
        if pos_orig.len() > BVE_MAX_OCC || neg_orig.len() > BVE_MAX_OCC {
            return;
        }
        if pos_orig.is_empty() && neg_orig.is_empty() {
            return;
        }
        // Count (and keep) the non-tautological resolvents; give up on any
        // growth over the clauses being replaced.
        let budget = pos_orig.len() + neg_orig.len();
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        for &p in &pos_orig {
            for &n in &neg_orig {
                if let Some(r) = self.resolve(p, n, pvar) {
                    if r.len() > BVE_MAX_RES_LEN {
                        return;
                    }
                    resolvents.push(r);
                    if resolvents.len() > budget {
                        return;
                    }
                }
            }
        }
        // Commit: save the original occurrence clauses for reconstruction,
        // delete every clause mentioning v, then add the resolvents.
        let saved: Vec<Vec<Lit>> = pos_orig
            .iter()
            .chain(neg_orig.iter())
            .map(|&c| self.clause_lits(c))
            .collect();
        for &c in pos_orig.iter().chain(neg_orig.iter()).chain(learnt_occ.iter()) {
            self.delete_clause(c);
        }
        self.eliminated[v] = true;
        self.stats.eliminated_vars += 1;
        self.elim_stack.push(ElimRecord {
            var: v as u32,
            clauses: saved,
            restored: false,
        });
        occ[plit.code()].clear();
        occ[nlit.code()].clear();
        // Fault injection (test-only): drop the last resolvent.
        let keep = if self.sabotage == Some(SolverSabotage::BveDropResolvent)
            && !resolvents.is_empty()
        {
            resolvents.len() - 1
        } else {
            resolvents.len()
        };
        for r in resolvents.into_iter().take(keep) {
            let lbd = r.len().max(2) as u32 - 1;
            if let Some(nref) = self.add_inprocess_clause(&r, false, lbd) {
                let mut s = 0u64;
                for l in self.clause_lits(nref) {
                    occ[l.code()].push(nref);
                    s |= 1u64 << (l.var().index() & 63);
                }
                sig.insert(nref, s);
            }
            if !self.ok {
                return;
            }
        }
    }

    /// Resolvent of two clauses on `pivot`; `None` for tautologies.
    fn resolve(&self, p: ClauseRef, n: ClauseRef, pivot: Var) -> Option<Vec<Lit>> {
        let mut out: Vec<Lit> = Vec::new();
        for l in self.clause_lits(p) {
            if l.var() != pivot {
                out.push(l);
            }
        }
        for l in self.clause_lits(n) {
            if l.var() != pivot {
                out.push(l);
            }
        }
        // Lit codes of x and !x are adjacent, so complementary pairs meet
        // after sorting (same trick as `add_clause`).
        out.sort_unstable_by_key(|l| l.code());
        out.dedup();
        for w in out.windows(2) {
            if w[1] == !w[0] {
                return None;
            }
        }
        Some(out)
    }

    /// Re-introduces an eliminated variable (and, transitively, any variable
    /// its saved clauses mention) by adding the saved occurrence clauses
    /// back. Afterwards the formula is again fully equivalent to the
    /// original with respect to these variables.
    pub(super) fn restore_var(&mut self, v: usize) {
        debug_assert!(self.trail_lim.is_empty());
        if !self.eliminated[v] {
            return;
        }
        let mut work = vec![v];
        let mut to_add: Vec<usize> = Vec::new();
        while let Some(w) = work.pop() {
            if !self.eliminated[w] {
                continue;
            }
            self.eliminated[w] = false;
            self.stats.restored_vars += 1;
            let idx = self
                .elim_stack
                .iter()
                .rposition(|r| r.var as usize == w && !r.restored)
                .expect("eliminated variable must have a live record");
            self.elim_stack[idx].restored = true;
            for clause in &self.elim_stack[idx].clauses {
                for l in clause {
                    if self.eliminated[l.var().index()] {
                        work.push(l.var().index());
                    }
                }
            }
            to_add.push(idx);
            self.heap.insert(w, &self.activity);
        }
        for idx in to_add {
            let clauses = self.elim_stack[idx].clauses.clone();
            for clause in clauses {
                if !self.add_clause(&clause) {
                    return;
                }
            }
        }
    }

    /// Values the eliminated variables of a model by walking the
    /// reconstruction stack in reverse. Each record's variable is set true
    /// exactly when some saved positive-occurrence clause is not satisfied
    /// by the other literals; the resolvents kept in the formula guarantee
    /// no negative-occurrence clause is left unsatisfied in that case.
    pub(super) fn extend_model(&self, model: &mut [i8]) {
        for rec in self.elim_stack.iter().rev() {
            if rec.restored {
                continue;
            }
            let v = rec.var as usize;
            let mut val = FALSE;
            'clauses: for clause in &rec.clauses {
                let mut pivot_positive = false;
                for &l in clause {
                    if l.var().index() == v {
                        pivot_positive = l.is_positive();
                        continue;
                    }
                    let a = model[l.var().index()];
                    if (a == TRUE && l.is_positive()) || (a == FALSE && !l.is_positive()) {
                        continue 'clauses; // satisfied without the pivot
                    }
                }
                if pivot_positive {
                    val = TRUE;
                    break;
                }
            }
            model[v] = val;
        }
    }
}
