use crate::types::{Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

type ClauseRef = u32;
const REASON_NONE: ClauseRef = u32::MAX;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    activity: f32,
    learnt: bool,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

/// A CDCL SAT solver. See the [crate documentation](crate) for an overview
/// and example.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>, // indexed by Lit::code of the *falsified* literal
    assigns: Vec<i8>,         // indexed by var
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: IndexedHeap,
    saved_phase: Vec<bool>,

    cla_inc: f32,
    learnt_count: usize,
    max_learnts: f64,

    ok: bool,
    conflicts_total: u64,
    budget: Option<u64>,

    // scratch for analyze
    seen: Vec<bool>,

    /// Model snapshot from the last successful solve (empty otherwise).
    assigns_model: Vec<i8>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: IndexedHeap::new(),
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            learnt_count: 0,
            max_learnts: 4000.0,
            ok: true,
            conflicts_total: 0,
            budget: None,
            seen: Vec::new(),
            assigns_model: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNDEF);
        self.level.push(0);
        self.reason.push(REASON_NONE);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        if !self.assigns_model.is_empty() {
            self.assigns_model.push(UNDEF);
        }
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of (non-deleted) clauses, including learnt ones.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Total conflicts encountered so far (monotone across calls).
    pub fn conflicts(&self) -> u64 {
        self.conflicts_total
    }

    /// Limits the *next* solve calls to `budget` additional conflicts each;
    /// `None` removes the limit. When the budget runs out, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assigns[l.var().index()];
        if l.is_positive() {
            a
        } else {
            -a
        }
    }

    /// The value of `v` in the model found by the last successful solve
    /// (valid until the next `solve` call), or its root-level assignment
    /// otherwise. `None` if unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        let a = if self.assigns_model.is_empty() {
            self.assigns[v.index()]
        } else {
            self.assigns_model[v.index()]
        };
        match a {
            TRUE => Some(true),
            FALSE => Some(false),
            _ => None,
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (including via this clause being empty after
    /// simplification); the solver stays unusable from then on.
    ///
    /// Must be called at decision level 0 (i.e. not from inside a solve —
    /// which is always the case for external callers; after a solve returns,
    /// the solver backtracks to level 0 automatically).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        if !self.ok {
            return false;
        }
        // Simplify: dedupe, drop falsified-at-root literals, detect
        // tautologies and satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable_by_key(|l| l.code());
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        let mut i = 0;
        while i < ls.len() {
            let l = ls[i];
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: x | !x
            }
            match self.lit_value(l) {
                TRUE => return true, // already satisfied at root
                FALSE => {}          // drop root-falsified literal
                _ => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], REASON_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        if learnt {
            self.learnt_count += 1;
        }
        self.watches[(!w0).code()].push(Watch { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watch { cref, blocker: w0 });
        cref
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        let v = l.var().index();
        self.assigns[v] = if l.is_positive() { TRUE } else { FALSE };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Take the watch list for the falsified literal !p... we watch
            // on (!w) so the list for p.code() holds clauses where `p`'s
            // negation is watched; following MiniSat convention: watches
            // indexed by the literal that just became TRUE's negation.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict: Option<ClauseRef> = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                // Quick skip via blocker.
                if self.lit_value(w.blocker) == TRUE {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses[cref as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the falsified watch is at position 1.
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != w.blocker && self.lit_value(first) == TRUE {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_value(lk) != FALSE {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i].blocker = first;
                if self.lit_value(first) == FALSE {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // keep remaining watches
                    i += 1;
                    while i < ws.len() {
                        i += 1;
                    }
                    break;
                } else {
                    self.unchecked_enqueue(first, cref);
                    i += 1;
                }
            }
            let slot = &mut self.watches[p.code()];
            if slot.is_empty() {
                *slot = ws;
            } else {
                // New watches were appended for p while we processed; merge.
                let mut merged = ws;
                merged.append(slot);
                *slot = merged;
            }
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(conflict);
            let start = usize::from(p.is_some());
            let clen = self.clauses[conflict as usize].lits.len();
            for k in start..clen {
                let q = self.clauses[conflict as usize].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var().index();
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("found above");
                break;
            }
            conflict = self.reason[pv];
            debug_assert_ne!(conflict, REASON_NONE, "UIP literal must have a reason");
        }

        // Clause minimization: drop literals implied by the rest (the `seen`
        // flags currently mark exactly the variables of `learnt[1..]`).
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.is_redundant(l))
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Clear seen flags.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level: second-highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt)
    }

    /// Local (non-recursive) redundancy test: a literal is redundant if its
    /// reason clause's other literals are all already in the learnt clause
    /// (marked `seen`) or assigned at level 0.
    fn is_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index()];
        if r == REASON_NONE {
            return false;
        }
        self.clauses[r as usize]
            .lits
            .iter()
            .skip(1)
            .all(|&q| self.level[q.var().index()] == 0 || self.seen[q.var().index()])
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.saved_phase[v] = l.is_positive();
            self.assigns[v] = UNDEF;
            self.reason[v] = REASON_NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v] == UNDEF {
                return Some(Var(v as u32).lit(self.saved_phase[v]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Collect learnt, non-reason clauses sorted by activity.
        let mut cands: Vec<(f32, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_reason(*i as ClauseRef)
            })
            .map(|(i, c)| (c.activity, i))
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let to_delete = cands.len() / 2;
        for &(_, i) in cands.iter().take(to_delete) {
            self.clauses[i].deleted = true;
            self.learnt_count -= 1;
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref as usize];
        if let Some(&first) = c.lits.first() {
            let v = first.var().index();
            self.assigns[v] != UNDEF && self.reason[v] == cref
        } else {
            false
        }
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. On [`SolveResult::Sat`] the model
    /// is available through [`value`](Solver::value) until the next
    /// mutation. On return the solver is back at decision level 0, keeping
    /// all learnt clauses (incremental use).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert!(self.trail_lim.is_empty());

        let budget_end = self.budget.map(|b| self.conflicts_total + b);
        let mut restart_idx = 0u32;
        let mut conflicts_until_restart = luby(restart_idx) * 100;
        let result;

        'main: loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts_total += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        result = SolveResult::Unsat;
                        break 'main;
                    }
                    // Conflict below/at the assumption prefix: under these
                    // assumptions the formula is UNSAT.
                    let (learnt, bt) = self.analyze(conflict);
                    if (self.decision_level() as usize) <= assumptions.len() {
                        // Learn the clause anyway if it is at root level.
                        self.backtrack_to(0);
                        if learnt.len() == 1 {
                            if self.lit_value(learnt[0]) == UNDEF {
                                self.unchecked_enqueue(learnt[0], REASON_NONE);
                            } else if self.lit_value(learnt[0]) == FALSE {
                                self.ok = false;
                            }
                        } else {
                            let cref = self.attach_clause(learnt, true);
                            self.bump_clause(cref);
                        }
                        result = SolveResult::Unsat;
                        break 'main;
                    }
                    self.backtrack_to(bt);
                    if learnt.len() == 1 {
                        // Unit clauses are asserted at the root; any
                        // assumptions above `bt` are re-applied by the main
                        // loop as it rebuilds the decision prefix.
                        debug_assert_eq!(bt, 0);
                        if self.lit_value(learnt[0]) == UNDEF {
                            self.unchecked_enqueue(learnt[0], REASON_NONE);
                        } else if self.lit_value(learnt[0]) == FALSE {
                            result = SolveResult::Unsat;
                            break 'main;
                        }
                    } else {
                        let cref = self.attach_clause(learnt.clone(), true);
                        self.bump_clause(cref);
                        if self.lit_value(learnt[0]) == UNDEF {
                            self.unchecked_enqueue(learnt[0], cref);
                        }
                    }
                    self.var_inc /= 0.95;
                    self.cla_inc /= 0.999;
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    if let Some(end) = budget_end {
                        if self.conflicts_total >= end {
                            result = SolveResult::Unknown;
                            break 'main;
                        }
                    }
                    if self.learnt_count as f64 > self.max_learnts {
                        self.reduce_db();
                        self.max_learnts *= 1.3;
                    }
                }
                None => {
                    if conflicts_until_restart == 0 && (self.decision_level() as usize) > assumptions.len() {
                        restart_idx += 1;
                        conflicts_until_restart = luby(restart_idx) * 100;
                        self.backtrack_to(assumptions.len() as u32);
                        continue;
                    }
                    // Apply pending assumptions as decisions.
                    let dl = self.decision_level() as usize;
                    if dl < assumptions.len() {
                        let a = assumptions[dl];
                        match self.lit_value(a) {
                            TRUE => {
                                // Already implied: introduce an empty decision
                                // level to keep the prefix aligned.
                                self.trail_lim.push(self.trail.len());
                            }
                            FALSE => {
                                result = SolveResult::Unsat;
                                break 'main;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.unchecked_enqueue(a, REASON_NONE);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch() {
                        None => {
                            result = SolveResult::Sat;
                            break 'main;
                        }
                        Some(l) => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(l, REASON_NONE);
                        }
                    }
                }
            }
        }

        if result == SolveResult::Sat {
            // Leave the model readable, then backtrack lazily on next use:
            // we must backtrack now but keep assigns for value(). MiniSat
            // copies the model; we do the same.
            // (assigns are reset by backtrack, so snapshot first)
            let model: Vec<i8> = self.assigns.clone();
            self.backtrack_to(0);
            self.assigns_model = model;
            // Restore: `value` reads from assigns_model when set.
        } else {
            self.backtrack_to(0);
            self.assigns_model.clear();
        }
        result
    }
}

/// Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, ...
fn luby(mut x: u32) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x as u64 + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) / 2;
        seq -= 1;
        x = (x as u64 % size) as u32;
    }
    1u64 << seq
}

/// Indexed max-heap over variable activities.
#[derive(Debug, Clone, Default)]
struct IndexedHeap {
    heap: Vec<usize>,      // heap of var indices
    pos: Vec<i32>,         // var -> heap position or -1
}

impl IndexedHeap {
    fn new() -> Self {
        IndexedHeap::default()
    }

    fn ensure(&mut self, v: usize) {
        if v >= self.pos.len() {
            self.pos.resize(v + 1, -1);
        }
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        self.ensure(v);
        if self.pos[v] >= 0 {
            return;
        }
        self.pos[v] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: usize, act: &[f64]) {
        self.ensure(v);
        if self.pos[v] >= 0 {
            self.sift_up(self.pos[v] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i]] > act[self.heap[parent]] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l]] > act[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r]] > act[self.heap[best]] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i as i32;
        self.pos[self.heap[j]] = j as i32;
    }
}
