use crate::types::{Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

// Inprocessing lives in child modules so it can reach the solver's private
// state without widening field visibility: `simplify.rs` holds root-level
// cleanup, subsumption/strengthening, bounded variable elimination and the
// elimination/restore machinery; `vivify.rs` holds clause vivification.
#[path = "simplify.rs"]
mod simplify;
#[path = "vivify.rs"]
mod vivify;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

/// The deadline is consulted only on conflicts where
/// `conflicts & DEADLINE_CHECK_MASK == 0`, keeping the `Instant::now()`
/// syscall off the per-conflict hot path (the interrupt *flag* is a plain
/// atomic load and is checked on every conflict).
pub const DEADLINE_CHECK_MASK: u64 = 63;

/// Arena offset of a clause's header word.
type ClauseRef = u32;
const REASON_NONE: ClauseRef = u32::MAX;

// Clauses live in one flat `Vec<u32>` arena so that propagation walks
// contiguous memory instead of chasing a `Vec<Lit>` heap pointer per
// clause. Layout per clause, starting at its `ClauseRef` offset:
//
//   [ header | lbd | activity (f32 bits) | lit 0 | lit 1 | ... ]
//
// The header packs the length with three flag bits. `lbd` is the
// literal-block distance: distinct decision levels in the clause at learn
// time, refreshed whenever the clause participates in conflict analysis;
// glue clauses (`lbd <= glue_lbd`) are never deleted.
const HDR: usize = 3;
const LEN_MASK: u32 = 0x0FFF_FFFF;
const FLAG_LEARNT: u32 = 1 << 28;
const FLAG_DELETED: u32 = 1 << 29;
/// Used in conflict analysis since the last DB reduction; such clauses
/// survive one extra reduction round (Glucose-style protection).
const FLAG_USED: u32 = 1 << 30;

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    /// For long clauses: a cached literal whose truth lets the visit skip
    /// the clause entirely. For binary clauses: the *other* literal, making
    /// the watch entry self-contained (no clause-memory access at all).
    blocker: Lit,
}

/// Learned-clause minimization mode (MiniSat's `ccmin-mode`).
///
/// `Deep` removes the most literals but walks the implication graph for
/// every candidate; on the incremental miter proofs of the SAT-attack
/// family the walk costs more than the shorter clauses save, so the
/// default is `Basic` (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcMin {
    /// Keep first-UIP clauses as derived.
    None,
    /// Local check: a literal is redundant if its reason clause is already
    /// absorbed by the learnt clause.
    Basic,
    /// Recursive check through the implication graph (MiniSat
    /// `ccmin-mode=2`).
    Deep,
}

/// Restart strategy (see [`SolverConfig::restart_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartMode {
    /// Static Luby sequence scaled by [`SolverConfig::restart_base`].
    Luby,
    /// Glucose-style dynamic restarts driven by exponential moving averages
    /// of conflict LBDs: a restart is *forced* when the fast LBD average
    /// exceeds the slow one (recent conflicts are unusually bad), and
    /// *blocked* when the trail is much deeper than its long-run average
    /// (the search may be closing in on a model).
    Ema,
}

/// Tunable search parameters, all with MiniSat/Glucose-class defaults.
///
/// The knobs are read at each [`Solver::solve_with`] call, so they can be
/// adjusted between incremental solves. See `EXPERIMENTS.md` ("Solver
/// knobs") for guidance on when to change them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Restart strategy. [`RestartMode::Ema`] (the default) adapts the
    /// restart rate to conflict quality; [`RestartMode::Luby`] is the
    /// classic static schedule.
    pub restart_mode: RestartMode,
    /// Minimum conflicts between EMA restart decisions (both forcing and
    /// blocking). Only read in [`RestartMode::Ema`].
    pub restart_min_interval: u64,
    /// Luby restart unit: the restart interval is `luby(i) * restart_base`
    /// conflicts. Smaller values restart more aggressively.
    pub restart_base: u64,
    /// Learnt clauses with LBD at or below this are *glue* clauses and are
    /// never deleted by DB reduction.
    pub glue_lbd: u32,
    /// Conflicts before the first learnt-clause DB reduction.
    pub reduce_base: u64,
    /// Increment added to the reduction interval after every reduction, so
    /// the DB is allowed to grow over time.
    pub reduce_increment: u64,
    /// VSIDS variable-activity decay factor (activity increment is divided
    /// by this after each conflict).
    pub var_decay: f64,
    /// Clause-activity decay factor.
    pub cla_decay: f64,
    /// Learned-clause minimization mode.
    pub ccmin: CcMin,
    /// Chronological backtracking threshold: when a conflict's backjump
    /// would undo more than this many decision levels, backtrack a single
    /// level instead and let the asserting literal propagate from there,
    /// preserving the (still consistent) intermediate assignments. `0`
    /// disables chronological backtracking.
    pub chrono_threshold: u32,
    /// Inprocessing trigger: a simplification round (subsumption +
    /// strengthening, bounded variable elimination, vivification) runs at
    /// the start of a solve once the clauses added since the last round
    /// reach `inprocess_trigger + live_clauses / 16`. The DB-proportional
    /// term amortizes each O(DB) round against real growth on large
    /// incremental instances. `0` disables inprocessing entirely.
    pub inprocess_trigger: usize,
    /// Minimum live-clause count before inprocessing is considered at all.
    /// A round costs a fixed occurrence-list rebuild plus per-clause
    /// vivification probes — milliseconds that dwarf the solve time of a
    /// formula with a few hundred clauses. The default skips formulas that
    /// any search strategy dispatches instantly; set to `0` to inprocess
    /// regardless of size (the conformance batteries do, so the passes are
    /// exercised on small crafted instances).
    pub inprocess_min_clauses: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart_mode: RestartMode::Ema,
            restart_min_interval: 50,
            restart_base: 100,
            glue_lbd: 2,
            reduce_base: 2000,
            reduce_increment: 300,
            var_decay: 0.95,
            cla_decay: 0.999,
            ccmin: CcMin::Basic,
            chrono_threshold: 64,
            inprocess_trigger: 64,
            inprocess_min_clauses: 2000,
        }
    }
}

/// Cumulative search statistics, monotone across incremental solves.
///
/// Read them with [`Solver::stats`]; experiment binaries export them through
/// `orap_bench::json`. `learned_literals_pre/post` measure how much
/// recursive clause minimization shrinks first-UIP clauses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// `solve`/`solve_with` calls completed.
    pub solves: u64,
    /// Branching decisions (assumption applications excluded).
    pub decisions: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses attached (units included).
    pub learned_clauses: u64,
    /// Total literals in learnt clauses before minimization.
    pub learned_literals_pre: u64,
    /// Total literals in learnt clauses after recursive minimization.
    pub learned_literals_post: u64,
    /// Learnt-clause database reductions.
    pub db_reductions: u64,
    /// Learnt clauses deleted by DB reductions.
    pub clauses_deleted: u64,
    /// Inprocessing rounds executed between solves.
    pub inprocessings: u64,
    /// Clauses deleted because another clause subsumed them.
    pub subsumed_clauses: u64,
    /// Clauses shortened by self-subsuming strengthening.
    pub strengthened_clauses: u64,
    /// Variables eliminated by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Eliminated variables re-introduced because a later clause or
    /// assumption mentioned them (restore-on-demand).
    pub restored_vars: u64,
    /// Literals removed from clauses by vivification.
    pub vivified_literals: u64,
    /// Chronological backtracks taken instead of full backjumps.
    pub chrono_backtracks: u64,
    /// EMA restarts blocked because the trail was unusually deep.
    pub restarts_blocked: u64,
    /// EMA restarts forced by the fast/slow LBD crossover.
    pub restarts_forced: u64,
}

impl SolverStats {
    /// Difference `self - earlier`, for per-phase deltas of cumulative
    /// counters.
    #[must_use]
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            solves: self.solves - earlier.solves,
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            conflicts: self.conflicts - earlier.conflicts,
            restarts: self.restarts - earlier.restarts,
            learned_clauses: self.learned_clauses - earlier.learned_clauses,
            learned_literals_pre: self.learned_literals_pre - earlier.learned_literals_pre,
            learned_literals_post: self.learned_literals_post - earlier.learned_literals_post,
            db_reductions: self.db_reductions - earlier.db_reductions,
            clauses_deleted: self.clauses_deleted - earlier.clauses_deleted,
            inprocessings: self.inprocessings - earlier.inprocessings,
            subsumed_clauses: self.subsumed_clauses - earlier.subsumed_clauses,
            strengthened_clauses: self.strengthened_clauses - earlier.strengthened_clauses,
            eliminated_vars: self.eliminated_vars - earlier.eliminated_vars,
            restored_vars: self.restored_vars - earlier.restored_vars,
            vivified_literals: self.vivified_literals - earlier.vivified_literals,
            chrono_backtracks: self.chrono_backtracks - earlier.chrono_backtracks,
            restarts_blocked: self.restarts_blocked - earlier.restarts_blocked,
            restarts_forced: self.restarts_forced - earlier.restarts_forced,
        }
    }
}

/// A CDCL SAT solver. See the [crate documentation](crate) for an overview
/// and example.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Flat clause storage (see the layout comment at [`HDR`]).
    arena: Vec<u32>,
    /// Arena words occupied by deleted clauses; triggers garbage collection.
    wasted: usize,
    /// Live (non-deleted) attached clauses.
    live_clauses: usize,
    watches: Vec<Vec<Watch>>, // indexed by Lit::code of the *falsified* literal
    watches_bin: Vec<Vec<Watch>>, // binary clauses, same indexing
    assigns: Vec<i8>,         // indexed by var
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    // VSIDS
    activity: Vec<f64>,
    var_inc: f64,
    heap: IndexedHeap,
    saved_phase: Vec<bool>,

    cla_inc: f32,
    learnt_count: usize,
    /// Conflicts since the last DB reduction.
    conflicts_since_reduce: u64,
    /// Conflict count that triggers the next DB reduction.
    next_reduce: u64,

    config: SolverConfig,
    ok: bool,
    stats: SolverStats,
    budget: Option<u64>,
    /// Cooperative interrupt flag, shared with the caller; checked once per
    /// conflict so even a single long solve observes an external cancel.
    interrupt: Option<Arc<AtomicBool>>,
    /// Wall-clock deadline, checked every [`DEADLINE_CHECK_MASK`]+1 conflicts.
    deadline: Option<Instant>,
    /// Whether the last solve stopped because of the interrupt flag or
    /// deadline (as opposed to the conflict budget).
    interrupted: bool,

    // scratch for analyze / minimization / LBD
    seen: Vec<bool>,
    analyze_stack: Vec<Lit>,
    analyze_toclear: Vec<Lit>,
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,

    /// Model snapshot from the last successful solve (empty otherwise).
    assigns_model: Vec<i8>,

    // Inprocessing state (see `simplify.rs` / `vivify.rs`).
    /// Per-variable "never eliminate" marks ([`Solver::set_frozen`]).
    frozen: Vec<bool>,
    /// Variables currently eliminated by bounded variable elimination.
    eliminated: Vec<bool>,
    /// Reconstruction stack, one record per eliminated variable in
    /// elimination order. Walked in reverse to extend models; consulted by
    /// restore-on-demand when an eliminated variable reappears.
    elim_stack: Vec<ElimRecord>,
    /// Clauses attached (externally or learnt) since the last inprocessing
    /// round; drives the [`SolverConfig::inprocess_trigger`] schedule.
    adds_since_inprocess: usize,
    /// Round-robin cursor so successive vivification rounds cover different
    /// parts of the clause DB.
    viv_cursor: usize,

    // EMA restart state (RestartMode::Ema), persistent across solves.
    ema_lbd_fast: f64,
    ema_lbd_slow: f64,
    ema_trail: f64,
    ema_seen_conflicts: bool,

    /// Test-only fault injection, always `None` in production use. See
    /// [`SolverSabotage`] and [`Solver::set_sabotage`].
    sabotage: Option<SolverSabotage>,
}

/// One bounded-variable-elimination record: the variable plus the original
/// clauses that mentioned it, saved when it was eliminated.
///
/// Invariant: at elimination time every *other* variable in the saved
/// clauses was active, so a reverse walk of the stack meets each saved
/// clause with all of its non-record variables already valued.
#[derive(Debug, Clone)]
struct ElimRecord {
    var: u32,
    clauses: Vec<Vec<Lit>>,
    /// Set when the variable was re-introduced (the saved clauses were added
    /// back to the DB); the record is then inert for model extension.
    restored: bool,
}

/// Test-only semantic faults for the conformance mutation-kill harness
/// (`crates/conformance`). Each variant plants one deliberate bug in the
/// solver so the harness can prove the test battery detects it. Production
/// code must never install one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverSabotage {
    /// Binary-clause watches are never visited during propagation, making
    /// two-literal clauses invisible to the search (models may violate
    /// them; unsatisfiable formulas may come back `Sat`).
    SkipBinaryWatch,
    /// Learnt clauses of three or more literals are attached with their
    /// last literal dropped — an unsound strengthening that can turn
    /// satisfiable formulas `Unsat`.
    ShrinkLearntClause,
    /// [`Solver::value`] reports the opposite polarity for variable 0.
    MisreportValue,
    /// Inprocessing subsumption compares variables while ignoring polarity,
    /// deleting clauses that are not actually subsumed (the formula weakens,
    /// so models may violate deleted constraints).
    UnsoundSubsumption,
    /// Bounded variable elimination drops the last resolvent of every
    /// elimination, losing a constraint the resolution closure requires.
    BveDropResolvent,
    /// Vivification removes the final literal of probed clauses even when
    /// the probe proved nothing — an unsound strengthening that can turn
    /// satisfiable formulas `Unsat`.
    VivifyDropLiteral,
    /// Chronological backtracking records the asserting literal at the
    /// analyzed backjump level instead of the level it is actually enqueued
    /// at, corrupting later conflict analysis.
    ChronoMislabelLevel,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with default [`SolverConfig`].
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with explicit search parameters.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            arena: Vec::new(),
            wasted: 0,
            live_clauses: 0,
            watches: Vec::new(),
            watches_bin: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: IndexedHeap::new(),
            saved_phase: Vec::new(),
            cla_inc: 1.0,
            learnt_count: 0,
            conflicts_since_reduce: 0,
            next_reduce: config.reduce_base,
            config,
            ok: true,
            stats: SolverStats::default(),
            budget: None,
            interrupt: None,
            deadline: None,
            interrupted: false,
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_toclear: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            assigns_model: Vec::new(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            adds_since_inprocess: 0,
            viv_cursor: 0,
            ema_lbd_fast: 0.0,
            ema_lbd_slow: 0.0,
            ema_trail: 0.0,
            ema_seen_conflicts: false,
            sabotage: None,
        }
    }

    /// Test-only mutation hook: installs (or clears) a [`SolverSabotage`]
    /// fault. Only the conformance mutation-kill harness calls this.
    pub fn set_sabotage(&mut self, sabotage: Option<SolverSabotage>) {
        self.sabotage = sabotage;
    }

    /// The current search parameters.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the search parameters (effective from the next conflict).
    /// The DB-reduction schedule restarts from the new `reduce_base`.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.next_reduce = config.reduce_base;
        self.config = config;
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNDEF);
        self.level.push(0);
        self.reason.push(REASON_NONE);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.watches_bin.push(Vec::new());
        self.watches_bin.push(Vec::new());
        if !self.assigns_model.is_empty() {
            self.assigns_model.push(UNDEF);
        }
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Marks `v` as frozen: inprocessing will never eliminate it.
    ///
    /// Freezing is a *performance* hint for incremental use — correctness
    /// never depends on it, because a clause or assumption that mentions an
    /// eliminated variable re-introduces it on demand — but freezing the
    /// variables that future clauses or assumptions will mention (activation
    /// literals, key variables) avoids eliminate/restore churn.
    pub fn set_frozen(&mut self, v: Var, frozen: bool) {
        self.frozen[v.index()] = frozen;
    }

    /// Whether `v` is currently eliminated by bounded variable elimination.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Number of (non-deleted) clauses, including learnt ones.
    pub fn num_clauses(&self) -> usize {
        self.live_clauses
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.learnt_count
    }

    /// Total conflicts encountered so far (monotone across calls).
    pub fn conflicts(&self) -> u64 {
        self.stats.conflicts
    }

    /// Limits the *next* solve calls to `budget` additional conflicts each;
    /// `None` removes the limit. When the budget runs out, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Installs (or clears) a cooperative interrupt flag. The flag is
    /// polled once per conflict during search; when it reads `true`,
    /// `solve` stops at the next conflict with [`SolveResult::Unknown`]
    /// and [`Solver::interrupted`] reports `true`. The flag is shared —
    /// the caller keeps a clone of the `Arc` and sets it from another
    /// thread (or from a signal handler) to cancel a long solve.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Installs (or clears) a wall-clock deadline. Checked every
    /// [`DEADLINE_CHECK_MASK`]`+1` conflicts during search; once passed,
    /// `solve` returns [`SolveResult::Unknown`] and
    /// [`Solver::interrupted`] reports `true`.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Whether the most recent solve stopped because of the interrupt flag
    /// or deadline (distinguishing an external cancel from an exhausted
    /// conflict budget, which also yields [`SolveResult::Unknown`]).
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assigns[l.var().index()];
        if l.is_positive() {
            a
        } else {
            -a
        }
    }

    /// The value of `v` in the model found by the last successful solve
    /// (valid until the next `solve` call), or its root-level assignment
    /// otherwise. `None` if unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        let a = if self.assigns_model.is_empty() {
            self.assigns[v.index()]
        } else {
            self.assigns_model[v.index()]
        };
        // Fault injection (test-only): misreport variable 0's polarity.
        let a = if v.index() == 0 && self.sabotage == Some(SolverSabotage::MisreportValue) {
            -a
        } else {
            a
        };
        match a {
            TRUE => Some(true),
            FALSE => Some(false),
            _ => None,
        }
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (including via this clause being empty after
    /// simplification); the solver stays unusable from then on.
    ///
    /// Must be called at decision level 0 (i.e. not from inside a solve —
    /// which is always the case for external callers; after a solve returns,
    /// the solver backtracks to level 0 automatically).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        if !self.ok {
            return false;
        }
        // Restore-on-demand: a new clause mentioning an eliminated variable
        // re-introduces it (and, transitively, anything its saved clauses
        // mention) before the clause is attached.
        for l in lits {
            if self.eliminated[l.var().index()] {
                self.restore_var(l.var().index());
                if !self.ok {
                    return false;
                }
            }
        }
        // Simplify: dedupe, drop falsified-at-root literals, detect
        // tautologies and satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable_by_key(|l| l.code());
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        let mut i = 0;
        while i < ls.len() {
            let l = ls[i];
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: x | !x
            }
            match self.lit_value(l) {
                TRUE => return true, // already satisfied at root
                FALSE => {}          // drop root-falsified literal
                _ => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.adds_since_inprocess += 1;
                self.unchecked_enqueue(simplified[0], REASON_NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(&simplified, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        // Fault injection (test-only): drop the last literal of long learnt
        // clauses, an unsound strengthening.
        let lits = if learnt
            && lits.len() >= 3
            && self.sabotage == Some(SolverSabotage::ShrinkLearntClause)
        {
            &lits[..lits.len() - 1]
        } else {
            lits
        };
        debug_assert!(lits.len() >= 2);
        debug_assert!(lits.len() as u32 <= LEN_MASK);
        let cref = self.arena.len() as ClauseRef;
        let mut header = lits.len() as u32;
        if learnt {
            header |= FLAG_LEARNT;
        }
        self.arena.push(header);
        self.arena.push(lbd);
        self.arena.push(0f32.to_bits());
        self.arena.extend(lits.iter().map(|l| l.0));
        self.live_clauses += 1;
        // Reset to zero at the end of each inprocessing round, so clauses
        // re-attached during a round do not count toward the next trigger.
        self.adds_since_inprocess += 1;
        if learnt {
            self.learnt_count += 1;
        }
        let w0 = lits[0];
        let w1 = lits[1];
        let lists = if lits.len() == 2 {
            &mut self.watches_bin
        } else {
            &mut self.watches
        };
        lists[(!w0).code()].push(Watch { cref, blocker: w1 });
        lists[(!w1).code()].push(Watch { cref, blocker: w0 });
        cref
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        let v = l.var().index();
        self.assigns[v] = if l.is_positive() { TRUE } else { FALSE };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Binary clauses first: the watch entry carries the other
            // literal, so a visit costs no clause-memory access and the
            // watch never moves.
            let bins = if self.sabotage == Some(SolverSabotage::SkipBinaryWatch) {
                Vec::new() // fault injection: binary clauses become invisible
            } else {
                std::mem::take(&mut self.watches_bin[p.code()])
            };
            let mut conflict: Option<ClauseRef> = None;
            for w in &bins {
                match self.lit_value(w.blocker) {
                    TRUE => {}
                    FALSE => {
                        conflict = Some(w.cref);
                        break;
                    }
                    _ => {
                        self.stats.propagations += 1;
                        self.unchecked_enqueue(w.blocker, w.cref);
                    }
                }
            }
            self.watches_bin[p.code()] = bins;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }

            // The list at p.code() holds clauses in which !p is watched;
            // !p just became false, so each needs a new watch or is
            // unit/conflicting (MiniSat convention).
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                // Quick skip via blocker.
                if self.lit_value(w.blocker) == TRUE {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                let base = cref as usize;
                let header = self.arena[base];
                if header & FLAG_DELETED != 0 {
                    ws.swap_remove(i);
                    continue;
                }
                // Make sure the falsified watch is at position 1.
                let false_lit = !p;
                if Lit(self.arena[base + HDR]) == false_lit {
                    self.arena.swap(base + HDR, base + HDR + 1);
                }
                debug_assert_eq!(Lit(self.arena[base + HDR + 1]), false_lit);
                let first = Lit(self.arena[base + HDR]);
                if first != w.blocker && self.lit_value(first) == TRUE {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = (header & LEN_MASK) as usize;
                for k in 2..len {
                    let lk = Lit(self.arena[base + HDR + k]);
                    if self.lit_value(lk) != FALSE {
                        self.arena.swap(base + HDR + 1, base + HDR + k);
                        self.watches[(!lk).code()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i].blocker = first;
                if self.lit_value(first) == FALSE {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.stats.propagations += 1;
                self.unchecked_enqueue(first, cref);
                i += 1;
            }
            let slot = &mut self.watches[p.code()];
            if slot.is_empty() {
                *slot = ws;
            } else {
                // New watches were appended for p while we processed; merge.
                let mut merged = ws;
                merged.append(slot);
                *slot = merged;
            }
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let slot = cref as usize + 2;
        let act = f32::from_bits(self.arena[slot]) + self.cla_inc;
        self.arena[slot] = act.to_bits();
        if act > 1e20 {
            let mut off = 0usize;
            while off < self.arena.len() {
                let a = f32::from_bits(self.arena[off + 2]) * 1e-20;
                self.arena[off + 2] = a.to_bits();
                off += HDR + (self.arena[off] & LEN_MASK) as usize;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance of a literal slice: the number of distinct
    /// non-root decision levels among its variables.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        if self.lbd_stamp.len() < self.trail_lim.len() + 2 {
            self.lbd_stamp.resize(self.trail_lim.len() + 2, 0);
        }
        let mut lbd = 0u32;
        for l in lits {
            let lv = self.level[l.var().index()] as usize;
            if lv > 0 && self.lbd_stamp[lv] != stamp {
                self.lbd_stamp[lv] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// [`compute_lbd`](Self::compute_lbd) over a clause stored in the arena.
    fn compute_lbd_clause(&mut self, cref: ClauseRef) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        if self.lbd_stamp.len() < self.trail_lim.len() + 2 {
            self.lbd_stamp.resize(self.trail_lim.len() + 2, 0);
        }
        let base = cref as usize;
        let len = (self.arena[base] & LEN_MASK) as usize;
        let mut lbd = 0u32;
        for k in 0..len {
            let lv = self.level[Lit(self.arena[base + HDR + k]).var().index()] as usize;
            if lv > 0 && self.lbd_stamp[lv] != stamp {
                self.lbd_stamp[lv] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis with recursive (MiniSat `ccmin-mode=2`)
    /// clause minimization. Returns the learnt clause (asserting literal
    /// first), its LBD, and the backtrack level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        self.analyze_toclear.clear();

        loop {
            self.bump_clause(conflict);
            let base = conflict as usize;
            if self.arena[base] & FLAG_LEARNT != 0 {
                self.arena[base] |= FLAG_USED;
                // Refresh the LBD of learnt clauses that keep causing
                // conflicts; a clause that has become glue gains permanent
                // protection.
                let fresh = self.compute_lbd_clause(conflict);
                if fresh < self.arena[base + 1] {
                    self.arena[base + 1] = fresh;
                }
            }
            // When expanding a reason clause, skip the implied literal
            // itself. Long clauses keep it at slot 0, but binary-clause
            // literals are never reordered, so match on the variable.
            let pv = p.map(Lit::var);
            let clen = (self.arena[base] & LEN_MASK) as usize;
            for k in 0..clen {
                let q = Lit(self.arena[base + HDR + k]);
                if Some(q.var()) == pv {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.analyze_toclear.push(q);
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var().index();
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("found above");
                break;
            }
            conflict = self.reason[pv];
            debug_assert_ne!(conflict, REASON_NONE, "UIP literal must have a reason");
        }

        self.stats.learned_literals_pre += learnt.len() as u64;

        // Clause minimization: a literal is redundant if its reason-side
        // cone is entirely absorbed by the remaining clause (the `seen`
        // flags mark exactly the variables of `learnt[1..]`).
        let mut minimized = vec![learnt[0]];
        match self.config.ccmin {
            CcMin::None => minimized.extend_from_slice(&learnt[1..]),
            CcMin::Basic => {
                minimized.extend(learnt[1..].iter().copied().filter(|&l| {
                    self.reason[l.var().index()] == REASON_NONE || !self.lit_redundant_basic(l)
                }));
            }
            CcMin::Deep => {
                let mut abstract_levels = 0u64;
                for l in &learnt[1..] {
                    abstract_levels |= 1u64 << (self.level[l.var().index()] & 63);
                }
                let keep: Vec<Lit> = learnt[1..]
                    .iter()
                    .copied()
                    .filter(|&l| {
                        self.reason[l.var().index()] == REASON_NONE
                            || !self.lit_redundant(l, abstract_levels)
                    })
                    .collect();
                minimized.extend(keep);
            }
        }
        self.stats.learned_literals_post += minimized.len() as u64;

        // Clear seen flags (learnt literals and everything marked during
        // redundancy checks).
        self.seen[learnt[0].var().index()] = false;
        for i in 0..self.analyze_toclear.len() {
            let v = self.analyze_toclear[i].var().index();
            self.seen[v] = false;
        }

        let lbd = self.compute_lbd(&minimized);

        // Backtrack level: second-highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, lbd, bt)
    }

    /// Local (non-recursive) redundancy test: `l` is redundant if every
    /// other literal of its reason clause is already in the learnt clause
    /// (`seen`) or fixed at level 0.
    fn lit_redundant_basic(&self, l: Lit) -> bool {
        let cref = self.reason[l.var().index()];
        debug_assert_ne!(cref, REASON_NONE);
        let base = cref as usize;
        let clen = (self.arena[base] & LEN_MASK) as usize;
        for k in 0..clen {
            let q = Lit(self.arena[base + HDR + k]);
            if q.var() == l.var() {
                continue;
            }
            let v = q.var().index();
            if !self.seen[v] && self.level[v] > 0 {
                return false;
            }
        }
        true
    }

    /// Recursive redundancy test (MiniSat's `litRedundant`): `l` is
    /// redundant if every path through its implication cone reaches either a
    /// literal already in the learnt clause (`seen`) or level 0 — checked
    /// iteratively with an explicit stack. Newly marked variables are
    /// recorded in `analyze_toclear`; on failure the marks added by this
    /// call are rolled back.
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u64) -> bool {
        debug_assert_ne!(self.reason[l.var().index()], REASON_NONE);
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let top = self.analyze_toclear.len();
        while let Some(p) = self.analyze_stack.pop() {
            let cref = self.reason[p.var().index()];
            debug_assert_ne!(cref, REASON_NONE);
            let base = cref as usize;
            let clen = (self.arena[base] & LEN_MASK) as usize;
            for k in 0..clen {
                let q = Lit(self.arena[base + HDR + k]);
                if q.var() == p.var() {
                    continue; // the implied literal (see `analyze`)
                }
                let v = q.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                // Not absorbed yet: the literal can only be redundant if its
                // own reason cone stays inside the clause's decision levels.
                if self.reason[v] != REASON_NONE
                    && (1u64 << (self.level[v] & 63)) & abstract_levels != 0
                {
                    self.seen[v] = true;
                    self.analyze_stack.push(q);
                    self.analyze_toclear.push(q);
                } else {
                    // Roll back the marks added during this check.
                    for j in top..self.analyze_toclear.len() {
                        self.seen[self.analyze_toclear[j].var().index()] = false;
                    }
                    self.analyze_toclear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.saved_phase[v] = l.is_positive();
            self.assigns[v] = UNDEF;
            self.reason[v] = REASON_NONE;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v] == UNDEF && !self.eliminated[v] {
                return Some(Var(v as u32).lit(self.saved_phase[v]));
            }
        }
        None
    }

    /// LBD-driven learnt-clause DB reduction: sort deletable learnt clauses
    /// worst-first (highest LBD, then lowest activity) and delete half.
    /// Glue clauses, reason clauses, binary clauses, and clauses used in a
    /// conflict since the last reduction are kept (the latter lose their
    /// protection mark for the next round).
    fn reduce_db(&mut self) {
        let glue = self.config.glue_lbd;
        let mut cands: Vec<(u32, f32, ClauseRef)> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off];
            let len = (header & LEN_MASK) as usize;
            let cref = off as ClauseRef;
            off += HDR + len;
            if header & FLAG_LEARNT == 0
                || header & (FLAG_DELETED | FLAG_USED) != 0
                || len <= 2
                || self.arena[cref as usize + 1] <= glue
                || self.is_reason(cref)
            {
                continue;
            }
            cands.push((
                self.arena[cref as usize + 1],
                f32::from_bits(self.arena[cref as usize + 2]),
                cref,
            ));
        }
        // Worst first: highest LBD, ties broken by lowest activity.
        cands.sort_by(|a, b| {
            b.0.cmp(&a.0).then(
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = cands.len() / 2;
        for &(_, _, cref) in cands.iter().take(to_delete) {
            let base = cref as usize;
            self.arena[base] |= FLAG_DELETED;
            self.wasted += HDR + (self.arena[base] & LEN_MASK) as usize;
            self.learnt_count -= 1;
            self.live_clauses -= 1;
        }
        // Protection is one-round: clear the marks so clauses must stay
        // useful to survive the next reduction too.
        let mut off = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off];
            if header & FLAG_LEARNT != 0 && header & FLAG_DELETED == 0 {
                self.arena[off] = header & !FLAG_USED;
            }
            off += HDR + (header & LEN_MASK) as usize;
        }
        self.stats.db_reductions += 1;
        self.stats.clauses_deleted += to_delete as u64;
        // Compact the arena once a third of it is dead weight.
        if self.wasted * 3 > self.arena.len() {
            self.collect_garbage();
        }
    }

    /// Rebuilds the arena without deleted clauses, remapping every watch
    /// list and reason reference. Reasons always point at live clauses
    /// (binary and glue clauses are never deleted, and `reduce_db` skips
    /// clauses currently acting as reasons).
    fn collect_garbage(&mut self) {
        let mut new_arena: Vec<u32> = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut remap: std::collections::HashMap<ClauseRef, ClauseRef> =
            std::collections::HashMap::with_capacity(self.live_clauses);
        for list in self.watches.iter_mut().chain(self.watches_bin.iter_mut()) {
            list.clear();
        }
        let mut off = 0usize;
        while off < self.arena.len() {
            let header = self.arena[off];
            let len = (header & LEN_MASK) as usize;
            if header & FLAG_DELETED == 0 {
                let cref = new_arena.len() as ClauseRef;
                remap.insert(off as ClauseRef, cref);
                new_arena.extend_from_slice(&self.arena[off..off + HDR + len]);
                let w0 = Lit(self.arena[off + HDR]);
                let w1 = Lit(self.arena[off + HDR + 1]);
                let lists = if len == 2 {
                    &mut self.watches_bin
                } else {
                    &mut self.watches
                };
                lists[(!w0).code()].push(Watch { cref, blocker: w1 });
                lists[(!w1).code()].push(Watch { cref, blocker: w0 });
            }
            off += HDR + len;
        }
        self.arena = new_arena;
        self.wasted = 0;
        for v in 0..self.reason.len() {
            if self.assigns[v] != UNDEF && self.reason[v] != REASON_NONE {
                self.reason[v] = remap[&self.reason[v]];
            }
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        // Propagation keeps the implied literal of a long clause at slot 0
        // for as long as the clause acts as a reason (binary clauses are
        // never deletion candidates, so they never reach this check).
        let first = Lit(self.arena[cref as usize + HDR]);
        let v = first.var().index();
        self.assigns[v] != UNDEF && self.reason[v] == cref
    }

    /// Checks the cooperative interrupt sources, latching
    /// [`Solver::interrupted`] when one has fired. The flag is always
    /// consulted; the deadline only when `check_deadline` is set (it costs
    /// a syscall).
    #[inline]
    fn poll_interrupt(&mut self, check_deadline: bool) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                self.interrupted = true;
                return true;
            }
        }
        if check_deadline {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.interrupted = true;
                    return true;
                }
            }
        }
        false
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions. On [`SolveResult::Sat`] the model
    /// is available through [`value`](Solver::value) until the next
    /// mutation. On return the solver is back at decision level 0, keeping
    /// all learnt clauses (incremental use).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert!(self.trail_lim.is_empty());
        self.interrupted = false;
        // A cancel raised before (or between) solves must still be honored:
        // check once up front so an already-fired flag or expired deadline
        // never starts a search.
        if self.poll_interrupt(true) {
            return SolveResult::Unknown;
        }

        // Re-introduce any eliminated variable the assumptions mention, then
        // run an inprocessing round if enough clauses arrived since the last
        // one. The round temporarily pins the assumption variables so it
        // cannot eliminate them right back.
        for a in assumptions {
            if self.eliminated[a.var().index()] {
                self.restore_var(a.var().index());
            }
        }
        if self.ok
            && self.config.inprocess_trigger > 0
            && self.live_clauses >= self.config.inprocess_min_clauses
            && self.adds_since_inprocess
                >= self.config.inprocess_trigger + self.live_clauses / 16
        {
            self.inprocess(assumptions);
        }
        if !self.ok {
            return SolveResult::Unsat;
        }

        let budget_end = self.budget.map(|b| self.stats.conflicts + b);
        let mut restart_idx = 0u32;
        let mut conflicts_until_restart = luby(restart_idx) * self.config.restart_base;
        let mut conflicts_since_restart = 0u64;
        let result;

        'main: loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    self.conflicts_since_reduce += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        result = SolveResult::Unsat;
                        break 'main;
                    }
                    // Conflict below/at the assumption prefix: under these
                    // assumptions the formula is UNSAT.
                    let (learnt, lbd, bt) = self.analyze(conflict);
                    // Glucose-style EMA state, fed on every conflict so a
                    // later switch to RestartMode::Ema starts warm.
                    conflicts_since_restart += 1;
                    let lbd_f = f64::from(lbd.max(1));
                    let trail_f = self.trail.len() as f64;
                    if self.ema_seen_conflicts {
                        self.ema_lbd_fast += (lbd_f - self.ema_lbd_fast) / EMA_FAST_WINDOW;
                        self.ema_lbd_slow += (lbd_f - self.ema_lbd_slow) / EMA_SLOW_WINDOW;
                        self.ema_trail += (trail_f - self.ema_trail) / EMA_SLOW_WINDOW;
                    } else {
                        self.ema_lbd_fast = lbd_f;
                        self.ema_lbd_slow = lbd_f;
                        self.ema_trail = trail_f;
                        self.ema_seen_conflicts = true;
                    }
                    if self.config.restart_mode == RestartMode::Ema
                        && conflicts_since_restart >= self.config.restart_min_interval
                        && trail_f > EMA_BLOCK_RATIO * self.ema_trail
                        && self.ema_lbd_fast > EMA_FORCE_RATIO * self.ema_lbd_slow
                    {
                        // The trail is unusually deep: the search may be
                        // close to a model, so cancel the pending force.
                        self.ema_lbd_fast = self.ema_lbd_slow;
                        self.stats.restarts_blocked += 1;
                    }
                    if (self.decision_level() as usize) <= assumptions.len() {
                        // Learn the clause anyway if it is at root level.
                        self.backtrack_to(0);
                        if learnt.len() == 1 {
                            if self.lit_value(learnt[0]) == UNDEF {
                                self.unchecked_enqueue(learnt[0], REASON_NONE);
                                self.stats.learned_clauses += 1;
                            } else if self.lit_value(learnt[0]) == FALSE {
                                self.ok = false;
                            }
                        } else {
                            let cref = self.attach_clause(&learnt, true, lbd);
                            self.stats.learned_clauses += 1;
                            self.bump_clause(cref);
                        }
                        result = SolveResult::Unsat;
                        break 'main;
                    }
                    // Chronological backtracking (weak variant): when the
                    // backjump would undo a long stretch of still-consistent
                    // assignments, step back a single level instead. The
                    // asserting literal is recorded at its *enqueue* level
                    // (dl - 1), which keeps the trail's per-level sections
                    // intact; the overestimated level is sound for analysis.
                    // Unit learnt clauses always go to the root.
                    let dl = self.decision_level();
                    let chrono = self.config.chrono_threshold > 0
                        && learnt.len() >= 2
                        && dl - bt > self.config.chrono_threshold;
                    if chrono {
                        self.stats.chrono_backtracks += 1;
                        self.backtrack_to(dl - 1);
                    } else {
                        self.backtrack_to(bt);
                    }
                    self.stats.learned_clauses += 1;
                    if learnt.len() == 1 {
                        // Unit clauses are asserted at the root; any
                        // assumptions above `bt` are re-applied by the main
                        // loop as it rebuilds the decision prefix.
                        debug_assert_eq!(bt, 0);
                        if self.lit_value(learnt[0]) == UNDEF {
                            self.unchecked_enqueue(learnt[0], REASON_NONE);
                        } else if self.lit_value(learnt[0]) == FALSE {
                            result = SolveResult::Unsat;
                            break 'main;
                        }
                    } else {
                        let cref = self.attach_clause(&learnt, true, lbd);
                        self.bump_clause(cref);
                        if self.lit_value(learnt[0]) == UNDEF {
                            self.unchecked_enqueue(learnt[0], cref);
                            if chrono
                                && self.sabotage == Some(SolverSabotage::ChronoMislabelLevel)
                            {
                                // Fault injection (test-only): record the
                                // asserting literal at the analyzed backjump
                                // level, as if the intermediate levels had
                                // been undone.
                                self.level[learnt[0].var().index()] = bt;
                            }
                        }
                    }
                    self.var_inc /= self.config.var_decay;
                    self.cla_inc /= self.config.cla_decay as f32;
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    // Cooperative interrupt: flag every conflict, deadline
                    // every DEADLINE_CHECK_MASK+1 conflicts. Sits next to the
                    // budget check so one long solve observes an external
                    // cancel with conflict granularity.
                    if self.poll_interrupt(self.stats.conflicts & DEADLINE_CHECK_MASK == 0) {
                        result = SolveResult::Unknown;
                        break 'main;
                    }
                    if let Some(end) = budget_end {
                        if self.stats.conflicts >= end {
                            result = SolveResult::Unknown;
                            break 'main;
                        }
                    }
                    if self.conflicts_since_reduce >= self.next_reduce {
                        self.reduce_db();
                        self.conflicts_since_reduce = 0;
                        self.next_reduce += self.config.reduce_increment;
                    }
                }
                None => {
                    let restart_due = match self.config.restart_mode {
                        RestartMode::Luby => conflicts_until_restart == 0,
                        RestartMode::Ema => {
                            conflicts_since_restart >= self.config.restart_min_interval
                                && self.ema_lbd_fast > EMA_FORCE_RATIO * self.ema_lbd_slow
                        }
                    };
                    if restart_due && (self.decision_level() as usize) > assumptions.len() {
                        restart_idx += 1;
                        conflicts_until_restart = luby(restart_idx) * self.config.restart_base;
                        conflicts_since_restart = 0;
                        if self.config.restart_mode == RestartMode::Ema {
                            // Demand fresh evidence before the next force.
                            self.ema_lbd_fast = self.ema_lbd_slow;
                            self.stats.restarts_forced += 1;
                        }
                        self.stats.restarts += 1;
                        self.backtrack_to(assumptions.len() as u32);
                        continue;
                    }
                    // Apply pending assumptions as decisions.
                    let dl = self.decision_level() as usize;
                    if dl < assumptions.len() {
                        let a = assumptions[dl];
                        match self.lit_value(a) {
                            TRUE => {
                                // Already implied: introduce an empty decision
                                // level to keep the prefix aligned.
                                self.trail_lim.push(self.trail.len());
                            }
                            FALSE => {
                                result = SolveResult::Unsat;
                                break 'main;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.unchecked_enqueue(a, REASON_NONE);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch() {
                        None => {
                            result = SolveResult::Sat;
                            break 'main;
                        }
                        Some(l) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(l, REASON_NONE);
                        }
                    }
                }
            }
        }

        self.stats.solves += 1;
        if result == SolveResult::Sat {
            // The model must stay readable through `value` after the
            // mandatory backtrack to level 0, so snapshot `assigns` first
            // (MiniSat copies the model the same way). Eliminated variables
            // are then valued by walking the reconstruction stack, so the
            // reported model satisfies the *original* pre-elimination CNF.
            let mut model: Vec<i8> = self.assigns.clone();
            self.backtrack_to(0);
            self.extend_model(&mut model);
            self.assigns_model = model;
        } else {
            self.backtrack_to(0);
            self.assigns_model.clear();
        }
        result
    }
}

// EMA restart tuning (Glucose-class values): the fast average tracks the
// last ~32 conflict LBDs, the slow one the last ~4096; a force fires when
// fast exceeds slow by 25%, and a deep trail (40% over its long-run
// average) blocks the pending force.
const EMA_FAST_WINDOW: f64 = 32.0;
const EMA_SLOW_WINDOW: f64 = 4096.0;
const EMA_FORCE_RATIO: f64 = 1.25;
const EMA_BLOCK_RATIO: f64 = 1.4;

/// Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, ...
fn luby(mut x: u32) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x as u64 + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) / 2;
        seq -= 1;
        x = (x as u64 % size) as u32;
    }
    1u64 << seq
}

/// Indexed max-heap over variable activities.
#[derive(Debug, Clone, Default)]
struct IndexedHeap {
    heap: Vec<usize>,      // heap of var indices
    pos: Vec<i32>,         // var -> heap position or -1
}

impl IndexedHeap {
    fn new() -> Self {
        IndexedHeap::default()
    }

    fn ensure(&mut self, v: usize) {
        if v >= self.pos.len() {
            self.pos.resize(v + 1, -1);
        }
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        self.ensure(v);
        if self.pos[v] >= 0 {
            return;
        }
        self.pos[v] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: usize, act: &[f64]) {
        self.ensure(v);
        if self.pos[v] >= 0 {
            self.sift_up(self.pos[v] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i]] > act[self.heap[parent]] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l]] > act[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r]] > act[self.heap[best]] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i as i32;
        self.pos[self.heap[j]] = j as i32;
    }
}
