//! DIMACS CNF reading and writing.
//!
//! The standard interchange format for SAT instances; useful for dumping the
//! attack's miter CNFs and debugging them with external tools.

use std::fmt::Write as _;

use crate::{Lit, SolveResult, Solver, Var};

/// Error from parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dimacs parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseDimacsError {}

/// A CNF formula as clause lists over dense variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh solver and returns it.
    pub fn into_solver(self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input (bad header, literal out
/// of range, clause not terminated by 0).
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    msg: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let nv: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseDimacsError {
                    line: lineno,
                    msg: "bad variable count".into(),
                })?;
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or_else(|| ParseDimacsError {
            line: lineno,
            msg: "clause before `p cnf` header".into(),
        })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                msg: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() as usize - 1;
                if var >= nv {
                    return Err(ParseDimacsError {
                        line: lineno,
                        msg: format!("literal {v} out of range (p cnf {nv})"),
                    });
                }
                current.push(Var::from_index(var).lit(v > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.unwrap_or(0),
        clauses,
    })
}

/// Serializes a CNF to DIMACS text.
pub fn write(cnf: &Cnf) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let v = l.var().index() as i64 + 1;
            let _ = write!(s, "{} ", if l.is_positive() { v } else { -v });
        }
        let _ = writeln!(s, "0");
    }
    s
}

/// Convenience: parse, solve, and report (`true` = satisfiable).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if the text is malformed.
pub fn solve_text(text: &str) -> Result<bool, ParseDimacsError> {
    let mut solver = parse(text)?.into_solver();
    Ok(solver.solve() == SolveResult::Sat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0][1], Var::from_index(1).negative());
    }

    #[test]
    fn roundtrip() {
        let cnf = parse("p cnf 4 3\n1 2 0\n-3 4 0\n-1 0\n").unwrap();
        let again = parse(&write(&cnf)).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn solve_sat_text() {
        assert!(solve_text("p cnf 2 2\n1 2 0\n-1 0\n").unwrap());
    }

    #[test]
    fn solve_unsat_text() {
        assert!(!solve_text("p cnf 1 2\n1 0\n-1 0\n").unwrap());
    }

    #[test]
    fn error_before_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn error_out_of_range() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn multiline_clause() {
        let cnf = parse("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 3);
    }
}
