//! Clause vivification (distillation) — child module of the solver, run as
//! the last pass of an inprocessing round (see `simplify.rs`).
//!
//! For each candidate clause `l1 ∨ l2 ∨ … ∨ ln`, assume `¬l1, ¬l2, …` one
//! literal at a time, propagating after each assumption with the clause
//! itself detached. Three outcomes shorten the clause:
//!
//! - propagation conflicts after assuming `¬l1…¬lk`: the prefix
//!   `l1 ∨ … ∨ lk` is implied, so the clause shrinks to it;
//! - some later literal `lk` propagates to true: `l1 ∨ … ∨ lk` is implied;
//! - some later literal `lk` propagates to false: `lk` is redundant and is
//!   dropped.
//!
//! Each round probes a budgeted slice of the DB behind a persistent
//! round-robin cursor, so successive rounds cover different clauses.

use super::*;

/// Only probe clauses of at least this many literals (binary clauses have
/// nothing to gain: shortening them is the unit-propagation fast path).
const VIV_MIN_LEN: usize = 3;
/// Skip very long clauses; probing them costs a propagation per literal.
const VIV_MAX_LEN: usize = 24;
/// Per-round clause budget: at least this many, at most an eighth of the
/// candidates, so the cost stays proportional to the DB.
const VIV_MIN_BUDGET: usize = 512;

impl Solver {
    /// One vivification pass over a budgeted slice of the clause DB.
    pub(super) fn vivify_round(&mut self) {
        debug_assert!(self.trail_lim.is_empty());
        let end = self.arena.len();
        let mut cands: Vec<ClauseRef> = Vec::new();
        let mut off = 0usize;
        while off < end {
            let header = self.arena[off];
            let len = (header & LEN_MASK) as usize;
            let cref = off as ClauseRef;
            off += HDR + len;
            if header & FLAG_DELETED == 0 && (VIV_MIN_LEN..=VIV_MAX_LEN).contains(&len) {
                cands.push(cref);
            }
        }
        if cands.is_empty() {
            return;
        }
        let n = cands.len();
        let take = n.min(VIV_MIN_BUDGET.max(n / 8));
        let start = self.viv_cursor % n;
        for i in 0..take {
            if !self.ok {
                return;
            }
            self.vivify_one(cands[(start + i) % n]);
        }
        self.viv_cursor = (start + take) % n;
    }

    fn vivify_one(&mut self, cref: ClauseRef) {
        let base = cref as usize;
        let header = self.arena[base];
        if header & FLAG_DELETED != 0 {
            return;
        }
        let lits = self.clause_lits(cref);
        // Units learned earlier in this round may have touched the clause;
        // re-simplify against the root assignment before probing.
        if lits.iter().any(|&l| self.lit_value(l) == TRUE) {
            self.delete_clause(cref);
            return;
        }
        let live: Vec<Lit> = lits
            .iter()
            .copied()
            .filter(|&l| self.lit_value(l) != FALSE)
            .collect();
        let learnt = header & FLAG_LEARNT != 0;
        let lbd = self.arena[base + 1];
        // Detach so the clause cannot propagate itself during the probe.
        self.detach_watches(cref);
        let mut shrunk = if live.len() < lits.len() {
            // Root-falsified literals already force a rebuild; still probe
            // the remainder for further shortening.
            Some(self.vivify_probe(&live).unwrap_or(live))
        } else {
            self.vivify_probe(&live)
        };
        // Fault injection (test-only): drop the last literal even though
        // the probe proved nothing.
        if shrunk.is_none()
            && lits.len() >= VIV_MIN_LEN
            && self.sabotage == Some(SolverSabotage::VivifyDropLiteral)
        {
            shrunk = Some(lits[..lits.len() - 1].to_vec());
        }
        match shrunk {
            None => self.attach_watches(cref),
            Some(new) => {
                self.delete_detached(cref);
                self.stats.vivified_literals += (lits.len() - new.len()) as u64;
                self.add_inprocess_clause(&new, learnt, lbd);
            }
        }
    }

    /// The probe itself: assume the negation of each literal in turn,
    /// propagating after each. Returns the shortened clause, or `None` when
    /// nothing shrank. Runs at the root and leaves the trail unchanged.
    fn vivify_probe(&mut self, lits: &[Lit]) -> Option<Vec<Lit>> {
        debug_assert!(self.trail_lim.is_empty());
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut dropped = false;
        let mut implied = false;
        for &l in lits {
            match self.lit_value(l) {
                TRUE => {
                    // ¬(kept) ⊨ l: the clause shortens to kept ∪ {l}.
                    kept.push(l);
                    implied = true;
                    break;
                }
                FALSE => {
                    // ¬(kept) ⊨ ¬l: the literal is redundant.
                    dropped = true;
                }
                _ => {
                    kept.push(l);
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(!l, REASON_NONE);
                    if self.propagate().is_some() {
                        // ¬(kept) is contradictory: the clause shortens to
                        // the assumed prefix.
                        implied = true;
                        break;
                    }
                }
            }
        }
        self.backtrack_to(0);
        if (implied && kept.len() < lits.len()) || (dropped && !implied) {
            Some(kept)
        } else {
            None
        }
    }
}
