//! A from-scratch CDCL SAT solver.
//!
//! The SAT attack on logic locking (Subramanyan et al., HOST 2015) is the
//! central adversary the OraP paper defends against; it needs an incremental
//! SAT solver at its core. This crate implements a MiniSat-class solver:
//!
//! - two-watched-literal unit propagation over a flat clause arena, with
//!   blocker literals and dedicated binary-clause watch lists (a binary
//!   visit touches no clause memory at all),
//! - first-UIP conflict-driven clause learning with configurable
//!   learnt-clause minimization ([`CcMin`]: none, local, or recursive
//!   MiniSat `ccmin-mode=2`-style),
//! - exponential VSIDS branching with phase saving,
//! - adaptive restarts: Glucose-style EMA blocking/forcing restarts by
//!   default, classic Luby as a fallback ([`RestartMode`]),
//! - chronological backtracking for conflicts whose backjump would undo a
//!   long stretch of still-consistent assignments,
//! - literal-block-distance (LBD) tracking with glue-clause protection and
//!   LBD-driven learnt-clause database reduction,
//! - an inprocessing layer scheduled between incremental solves:
//!   occurrence-list clause subsumption + self-subsuming strengthening,
//!   bounded variable elimination with model reconstruction (reported
//!   models always satisfy the *original* CNF), and clause vivification —
//!   with restore-on-demand (plus a [`Solver::set_frozen`] hint) so later
//!   clauses or assumptions may mention eliminated variables freely,
//! - incremental solving under assumptions, with clause addition between
//!   calls (exactly what the attack's query loop needs),
//! - optional conflict budgets (returning [`SolveResult::Unknown`]), used by
//!   the approximate attacks,
//! - cumulative search statistics ([`SolverStats`]) exported by the
//!   experiment harness,
//! - DIMACS CNF I/O ([`dimacs`]).
//!
//! # Example
//!
//! ```
//! use cdcl::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[a.negative()]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(a), Some(false));
//! assert_eq!(s.value(b), Some(true));
//! ```

#![warn(missing_docs)]

pub mod dimacs;
mod solver;
mod types;

pub use solver::{
    CcMin, RestartMode, SolveResult, Solver, SolverConfig, SolverSabotage, SolverStats,
    DEADLINE_CHECK_MASK,
};
pub use types::{Lit, Var};
