use std::fmt;

/// A boolean variable of the solver, allocated by [`Solver::new_var`].
///
/// [`Solver::new_var`]: crate::Solver::new_var
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from its dense index (as printed in DIMACS minus 1).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity (`true` =
    /// positive).
    #[inline]
    pub fn lit(self, polarity: bool) -> Lit {
        if polarity {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | negated`, the standard MiniSat packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (non-negated).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Integer code (`var * 2 + negated`), used to index watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from its integer code.
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!(!v.positive()), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn display_forms() {
        let v = Var(2);
        assert_eq!(v.to_string(), "x2");
        assert_eq!(v.positive().to_string(), "x2");
        assert_eq!(v.negative().to_string(), "!x2");
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..20 {
            assert_eq!(Lit::from_code(code).code(), code);
        }
        assert_eq!(Var::from_index(7).index(), 7);
    }
}
