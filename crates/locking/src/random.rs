//! Random logic locking (RLL / EPIC): one key input per XOR/XNOR key gate on
//! randomly chosen internal nets — the original combinational locking scheme
//! and the usual SAT-attack demonstration target.

use netlist::rng::SplitMix64;
use netlist::{Circuit, Error};

use crate::insert::{lockable_nets, splice_key_gate};
use crate::LockedCircuit;

/// Configuration for random locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RllConfig {
    /// Number of key bits (= key gates).
    pub key_bits: usize,
    /// PRNG seed for net selection and key generation.
    pub seed: u64,
}

/// Locks `original` with random XOR/XNOR key gates.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the circuit has fewer lockable nets than
/// requested key bits, or propagates netlist errors.
pub fn lock(original: &Circuit, config: &RllConfig) -> Result<LockedCircuit, Error> {
    let mut rng = SplitMix64::new(config.seed);
    let mut circuit = original.clone();
    circuit.set_name(format!("{}_rll{}", original.name(), config.key_bits));
    let nets = lockable_nets(&circuit);
    if nets.len() < config.key_bits {
        return Err(Error::BadProfile(format!(
            "{} lockable nets < {} key bits",
            nets.len(),
            config.key_bits
        )));
    }
    let chosen = rng.sample_indices(nets.len(), config.key_bits);
    let mut key_inputs = Vec::with_capacity(config.key_bits);
    let mut correct_key = Vec::with_capacity(config.key_bits);
    for (i, &net_idx) in chosen.iter().enumerate() {
        let k = circuit.add_input(format!("keyin{i}"));
        let bit = rng.bool();
        splice_key_gate(&mut circuit, nets[net_idx], k, bit, i)?;
        key_inputs.push(k);
        correct_key.push(bit);
    }
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "rll",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn correct_key_preserves_function() {
        let original = samples::ripple_adder(4);
        let locked = lock(&original, &RllConfig { key_bits: 8, seed: 2 }).unwrap();
        assert!(locked.verify_against(&original, 512).unwrap());
        assert_eq!(locked.scheme, "rll");
    }

    #[test]
    fn single_bit_flips_matter() {
        let original = samples::ripple_adder(4);
        let locked = lock(&original, &RllConfig { key_bits: 8, seed: 2 }).unwrap();
        // Every single-bit-wrong key must corrupt at least one pattern
        // (key gates sit on live nets).
        for flip in 0..8 {
            let mut key = locked.correct_key.clone();
            key[flip] = !key[flip];
            let rep = gatesim::hd::hamming_between_keys(
                &locked.circuit,
                &locked.key_inputs,
                &locked.correct_key,
                &key,
                1024,
                7,
            )
            .unwrap();
            assert!(rep.flipped > 0, "key bit {flip} is dead");
        }
    }

    #[test]
    fn too_many_key_bits_rejected() {
        let original = samples::c17();
        assert!(lock(&original, &RllConfig { key_bits: 100, seed: 0 }).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let original = samples::c17();
        let a = lock(&original, &RllConfig { key_bits: 4, seed: 5 }).unwrap();
        let b = lock(&original, &RllConfig { key_bits: 4, seed: 5 }).unwrap();
        assert_eq!(a.correct_key, b.correct_key);
        assert_eq!(
            netlist::bench::write(&a.circuit),
            netlist::bench::write(&b.circuit)
        );
    }
}
