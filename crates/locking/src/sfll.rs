//! Stripped-functionality logic locking, SFLL-HD (Yasin et al., CCS 2017) —
//! with `h = 0` this degenerates to TTLock. The last word in SAT-resistant
//! locking before the FALL attacks, and the reference point for the paper's
//! related-work discussion: provable SAT resistance, but corruptibility
//! limited to the `C(k, h)` protected cubes.
//!
//! Construction: the *stripped* circuit inverts the first output on every
//! input whose protected bits lie at Hamming distance exactly `h` from the
//! hard-coded secret key (the perturb unit); the *restore unit* re-inverts
//! the output whenever the protected bits lie at distance `h` from the
//! runtime key inputs. With the correct key both flips cancel everywhere;
//! a wrong key leaves a sparse double-error pattern.

use netlist::{Circuit, Error, Gate, GateKind, NetId};

use crate::LockedCircuit;

/// SFLL-HD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfllConfig {
    /// Protected input bits (= key bits).
    pub key_bits: usize,
    /// The Hamming distance of the protected cubes (`0` = TTLock).
    pub hamming_distance: usize,
    /// PRNG seed (selects the secret key).
    pub seed: u64,
}

/// Builds a popcount-equality comparator: output is 1 iff exactly `target`
/// of `bits` are 1. Constructed as a tree of full/half adders followed by a
/// constant compare.
fn popcount_equals(
    c: &mut Circuit,
    bits: &[NetId],
    target: usize,
    tag: &str,
) -> Result<NetId, Error> {
    assert!(!bits.is_empty(), "comparator needs inputs");
    // Ripple accumulation: maintain the sum as a little-endian vector of
    // nets, adding one bit at a time (sum width grows logarithmically).
    let mut sum: Vec<NetId> = vec![bits[0]];
    for (i, &b) in bits.iter().enumerate().skip(1) {
        let mut carry = b;
        for (j, s) in sum.iter_mut().enumerate() {
            let new_s = c.add_gate(GateKind::Xor, vec![*s, carry], format!("{tag}_s{i}_{j}"))?;
            let new_c = c.add_gate(GateKind::And, vec![*s, carry], format!("{tag}_c{i}_{j}"))?;
            *s = new_s;
            carry = new_c;
        }
        sum.push(carry);
    }
    // Compare against the constant `target`.
    let mut literals = Vec::with_capacity(sum.len());
    for (j, &s) in sum.iter().enumerate() {
        let want = (target >> j) & 1 == 1;
        literals.push(if want {
            s
        } else {
            c.add_gate(GateKind::Not, vec![s], format!("{tag}_n{j}"))?
        });
    }
    if literals.len() == 1 {
        Ok(literals[0])
    } else {
        c.add_gate(GateKind::And, literals, format!("{tag}_eq"))
    }
}

/// Distance-h detector against fixed constants: 1 iff `HD(xs, key) == h`.
fn hd_detector_const(
    c: &mut Circuit,
    xs: &[NetId],
    key: &[bool],
    h: usize,
    tag: &str,
) -> Result<NetId, Error> {
    let diffs: Vec<NetId> = xs
        .iter()
        .zip(key)
        .enumerate()
        .map(|(i, (&x, &k))| {
            if k {
                c.add_gate(GateKind::Not, vec![x], format!("{tag}_d{i}"))
            } else {
                c.add_gate(GateKind::Buf, vec![x], format!("{tag}_d{i}"))
            }
        })
        .collect::<Result<_, _>>()?;
    popcount_equals(c, &diffs, h, tag)
}

/// Distance-h detector against key *nets*: 1 iff `HD(xs, keys) == h`.
fn hd_detector_keyed(
    c: &mut Circuit,
    xs: &[NetId],
    keys: &[NetId],
    h: usize,
    tag: &str,
) -> Result<NetId, Error> {
    let diffs: Vec<NetId> = xs
        .iter()
        .zip(keys)
        .enumerate()
        .map(|(i, (&x, &k))| c.add_gate(GateKind::Xor, vec![x, k], format!("{tag}_d{i}")))
        .collect::<Result<_, _>>()?;
    popcount_equals(c, &diffs, h, tag)
}

/// Locks `original` with SFLL-HD on its first primary output.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the circuit has fewer combinational
/// inputs than key bits, no output, or `hamming_distance > key_bits`.
pub fn sfll_hd(original: &Circuit, config: &SfllConfig) -> Result<LockedCircuit, Error> {
    let inputs = original.comb_inputs();
    if inputs.len() < config.key_bits {
        return Err(Error::BadProfile(format!(
            "{} inputs < {} key bits",
            inputs.len(),
            config.key_bits
        )));
    }
    if config.hamming_distance > config.key_bits {
        return Err(Error::BadProfile(format!(
            "hamming distance {} > key width {}",
            config.hamming_distance, config.key_bits
        )));
    }
    let Some(&target) = original.comb_outputs().first() else {
        return Err(Error::BadProfile("circuit has no outputs".into()));
    };
    let mut rng = netlist::rng::SplitMix64::new(config.seed);
    let mut circuit = original.clone();
    circuit.set_name(format!(
        "{}_sfll{}h{}",
        original.name(),
        config.key_bits,
        config.hamming_distance
    ));
    let protected: Vec<NetId> = inputs[..config.key_bits].to_vec();
    let correct_key: Vec<bool> = (0..config.key_bits).map(|_| rng.bool()).collect();

    // Perturb unit (functionality stripping): hard-coded detector.
    let perturb = hd_detector_const(
        &mut circuit,
        &protected,
        &correct_key,
        config.hamming_distance,
        "sfll_p",
    )?;
    // Restore unit: keyed detector.
    let key_inputs: Vec<NetId> = (0..config.key_bits)
        .map(|i| circuit.add_input(format!("keyin{i}")))
        .collect();
    let restore = hd_detector_keyed(
        &mut circuit,
        &protected,
        &key_inputs,
        config.hamming_distance,
        "sfll_r",
    )?;
    let flip = circuit.add_gate(GateKind::Xor, vec![perturb, restore], "sfll_flip")?;
    let moved = circuit.split_net(target, "sfll_pre")?;
    circuit.set_driver(target, Gate::new(GateKind::Xor, vec![moved, flip])?)?;
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "sfll-hd",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn popcount_comparator_truth() {
        for n in 1..=5usize {
            for target in 0..=n {
                let mut c = Circuit::new("pc");
                let bits: Vec<NetId> = (0..n).map(|i| c.add_input(format!("b{i}"))).collect();
                let y = popcount_equals(&mut c, &bits, target, "t").unwrap();
                c.mark_output(y);
                let sim = gatesim::CombSim::new(&c).unwrap();
                for m in 0..(1u32 << n) {
                    let input: Vec<bool> = (0..n).map(|k| (m >> k) & 1 == 1).collect();
                    let ones = input.iter().filter(|&&b| b).count();
                    assert_eq!(
                        sim.eval_bools(&input)[0],
                        ones == target,
                        "n={n} target={target} m={m:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn correct_key_preserves_function() {
        for h in [0usize, 1, 2] {
            let original = samples::ripple_adder(4);
            let locked = sfll_hd(
                &original,
                &SfllConfig {
                    key_bits: 6,
                    hamming_distance: h,
                    seed: 3,
                },
            )
            .unwrap();
            assert!(
                locked.verify_against(&original, 4096).unwrap(),
                "h = {h}"
            );
        }
    }

    #[test]
    fn wrong_key_corrupts_exactly_the_protected_cubes() {
        // SFLL-HD with h=0 (TTLock): a wrong key corrupts at most two input
        // cubes per output pattern over the protected bits (the stripped
        // cube and the wrongly restored one).
        let original = samples::ripple_adder(3); // 6 inputs
        let locked = sfll_hd(
            &original,
            &SfllConfig {
                key_bits: 6,
                hamming_distance: 0,
                seed: 5,
            },
        )
        .unwrap();
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let orig = gatesim::CombSim::new(&original).unwrap();
        let mut corrupted = 0;
        for m in 0..64u32 {
            let data: Vec<bool> = (0..6).map(|k| (m >> k) & 1 == 1).collect();
            let mut input = data.clone();
            input.extend(wrong.iter().copied());
            if sim.eval_bools(&input) != orig.eval_bools(&data) {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 2, "TTLock corrupts exactly 2 patterns");
    }

    #[test]
    fn corruptibility_is_tiny() {
        let original = samples::ripple_adder(4);
        let locked = sfll_hd(
            &original,
            &SfllConfig {
                key_bits: 8,
                hamming_distance: 2,
                seed: 1,
            },
        )
        .unwrap();
        let hd = gatesim::hd::average_hd_random_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            10,
            8192,
            2,
        )
        .unwrap();
        // h=2 over 8 protected bits corrupts 2*C(8,2)/2^8 ≈ 22% of the
        // protected patterns on one output — a few percent of total output
        // bits, still far from WLL's tens of percent.
        assert!(hd < 8.0, "SFLL HD should be small, got {hd:.3}%");
    }

    #[test]
    fn bad_configs_rejected() {
        let c = samples::c17();
        assert!(sfll_hd(&c, &SfllConfig { key_bits: 9, hamming_distance: 0, seed: 0 }).is_err());
        assert!(sfll_hd(&c, &SfllConfig { key_bits: 4, hamming_distance: 5, seed: 0 }).is_err());
    }
}
