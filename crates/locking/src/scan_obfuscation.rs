//! Dynamic scan-chain obfuscation (after DynUnlock's target scheme,
//! arXiv:2001.06724).
//!
//! Static scan locking XORs a fixed key into fixed chain hops, so one leaked
//! chain image reveals the key. *Dynamic* obfuscation re-keys the chain on
//! **every shift cycle**: an on-chip LFSR is seeded from a secret key at
//! reset, steps once per shift clock, and its state drives a set of keyed
//! *stages* spliced into the chains — XOR inverters on hops and conditional
//! swaps of adjacent cells. The bit pattern a tester shifts in therefore
//! lands in the flip-flops permuted and inverted by a keystream, and what
//! shifts out is scrambled the same way; without the seed the scan interface
//! is useless as an oracle.
//!
//! The scheme is the workload for the DynUnlock attack
//! (`attacks::dyn_unlock`), which unrolls a bounded load→capture→unload
//! session of this model into a combinational circuit whose key inputs are
//! the LFSR seed, then runs the standard oracle-guided SAT loop on it. The
//! [`unroll`](ScanObfLocked::unroll) method here produces exactly that
//! circuit, so scheme and attack share one definition of the key schedule.
//!
//! Key-schedule model:
//!
//! ```text
//! S_0     = key (LFSR seeded at session reset)
//! S_{t+1} = LFSR_step(S_t)        // once per SHIFT cycle; capture does not step
//! stage s active in cycle t  <=>  S_t[cell(s)] = 1
//! ```
//!
//! Stages apply *after* the plain shift of [`ScanChains::shift_image`], in
//! catalog order: an `Invert` at position `p < len` flips the cell at hop
//! `p`; an `Invert` at `p == len` flips the outgoing scan-out bit; a `Swap`
//! at `p` exchanges the cells at hops `p` and `p+1` when its keystream bit
//! is set.

use std::collections::HashMap;

use gatesim::scan::ScanChains;
use gatesim::SeqSim;
use lfsr::{Lfsr, LfsrConfig};
use netlist::rng::SplitMix64;
use netlist::{Circuit, Error, GateKind, NetId};

use crate::LockedCircuit;

/// Parameters of the dynamic scan obfuscation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanObfConfig {
    /// LFSR width = secret key width (the seed).
    pub key_bits: usize,
    /// Number of scan chains to thread the flip-flops onto (clamped to the
    /// flip-flop count).
    pub num_chains: usize,
    /// Place an inverter stage every this many hop positions per chain
    /// (`0` = no inverter stages). Position `len` is the scan-out hop.
    pub invert_spacing: usize,
    /// Place a swap stage every this many hop positions per chain
    /// (`0` = no swap stages).
    pub swap_spacing: usize,
    /// PRNG seed for stage→LFSR-cell wiring and the secret key.
    pub seed: u64,
}

impl ScanObfConfig {
    /// A balanced default: two chains, a keyed stage every other hop.
    pub fn balanced(key_bits: usize, seed: u64) -> Self {
        ScanObfConfig {
            key_bits,
            num_chains: 2,
            invert_spacing: 2,
            swap_spacing: 2,
            seed,
        }
    }
}

/// What a keyed stage does when its keystream bit is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// XOR the keystream bit into the cell at `pos` (or into the scan-out
    /// bit when `pos == chain_len`).
    Invert,
    /// Exchange the cells at `pos` and `pos + 1`.
    Swap,
}

/// One keyed stage spliced into a scan chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObfStage {
    /// Which chain the stage sits on.
    pub chain: usize,
    /// Hop position along the chain (see [`StageKind`]).
    pub pos: usize,
    /// LFSR cell whose state bit drives the stage.
    pub cell: usize,
    /// Stage function.
    pub kind: StageKind,
}

/// A circuit whose scan access is dynamically obfuscated.
///
/// Unlike combinational schemes there is no key input in the netlist: the
/// key lives in the scan path. [`ObfScanSim`] is the behavioural model (the
/// "chip"), [`unroll`](ScanObfLocked::unroll) the attack-facing
/// combinational view.
#[derive(Debug, Clone)]
pub struct ScanObfLocked {
    /// The functional netlist (unchanged by the scheme).
    pub circuit: Circuit,
    /// Scan-chain assignment.
    pub chains: ScanChains,
    /// The keystream LFSR (no reseeding points; the seed is the key).
    pub lfsr: LfsrConfig,
    /// The secret LFSR seed.
    pub correct_key: Vec<bool>,
    /// Keyed stages, in application order.
    pub stages: Vec<ObfStage>,
}

/// Applies dynamic scan obfuscation to a sequential circuit.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if `key_bits` is 0, the circuit has no
/// flip-flops, or the spacings produce no stages at all.
pub fn lock(original: &Circuit, config: &ScanObfConfig) -> Result<ScanObfLocked, Error> {
    if config.key_bits == 0 {
        return Err(Error::BadProfile("scan_obf key_bits must be positive".into()));
    }
    let ndffs = original.dffs().len();
    if ndffs == 0 {
        return Err(Error::BadProfile(
            "scan obfuscation needs a sequential circuit (no flip-flops found)".into(),
        ));
    }
    let num_chains = config.num_chains.clamp(1, ndffs);
    let chains = ScanChains::balanced(ndffs, num_chains);

    let mut rng = SplitMix64::new(config.seed ^ 0x5ca9_0bf5_eed5_2020);
    let mut stages = Vec::new();
    for c in 0..chains.num_chains() {
        let len = chains.chain(c).len();
        if len == 0 {
            continue;
        }
        if config.invert_spacing > 0 {
            for pos in (0..=len).step_by(config.invert_spacing) {
                stages.push(ObfStage {
                    chain: c,
                    pos,
                    cell: rng.below_usize(config.key_bits),
                    kind: StageKind::Invert,
                });
            }
        }
        if config.swap_spacing > 0 && len >= 2 {
            for pos in (0..len - 1).step_by(config.swap_spacing) {
                stages.push(ObfStage {
                    chain: c,
                    pos,
                    cell: rng.below_usize(config.key_bits),
                    kind: StageKind::Swap,
                });
            }
        }
    }
    if stages.is_empty() {
        return Err(Error::BadProfile(
            "scan_obf spacings produce no keyed stages".into(),
        ));
    }

    let mut correct_key: Vec<bool> = (0..config.key_bits).map(|_| rng.bool()).collect();
    if correct_key.iter().all(|&b| !b) {
        // An all-zero seed leaves the LFSR stuck at zero and every stage
        // permanently inactive; force a live keystream.
        correct_key[0] = true;
    }
    let taps = LfsrConfig::with_tap_spacing(config.key_bits, 8).taps;
    let lfsr = LfsrConfig::new(config.key_bits, taps, Vec::new());

    Ok(ScanObfLocked {
        circuit: original.clone(),
        chains,
        lfsr,
        correct_key,
        stages,
    })
}

/// Applies the keyed stages for one shift cycle to a concrete state image.
/// `ks` is the LFSR state for this cycle; `outs` the per-chain scan-out bits
/// produced by the plain shift.
fn apply_stages(
    stages: &[ObfStage],
    chains: &ScanChains,
    ks: &[bool],
    state: &mut [bool],
    outs: &mut [bool],
) {
    for st in stages {
        let chain = chains.chain(st.chain);
        let bit = ks[st.cell];
        match st.kind {
            StageKind::Invert => {
                if st.pos == chain.len() {
                    outs[st.chain] ^= bit;
                } else {
                    state[chain[st.pos]] ^= bit;
                }
            }
            StageKind::Swap => {
                if bit {
                    state.swap(chain[st.pos], chain[st.pos + 1]);
                }
            }
        }
    }
}

/// Behavioural model of the obfuscated chip: the thing an attacker's tester
/// talks to. Holds the real key; the attack only ever calls
/// [`session`](ObfScanSim::session).
#[derive(Debug, Clone)]
pub struct ObfScanSim {
    seq: SeqSim,
    chains: ScanChains,
    stages: Vec<ObfStage>,
    lfsr: Lfsr,
    key: Vec<bool>,
}

impl ObfScanSim {
    /// Builds the chip model with the given LFSR seed loaded (the chip is in
    /// its post-reset state).
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the combinational part is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not match the LFSR width.
    pub fn new(locked: &ScanObfLocked, key: &[bool]) -> Result<Self, Error> {
        assert_eq!(key.len(), locked.lfsr.width, "key width mismatch");
        let mut sim = ObfScanSim {
            seq: SeqSim::new(&locked.circuit)?,
            chains: locked.chains.clone(),
            stages: locked.stages.clone(),
            lfsr: Lfsr::new(locked.lfsr.clone()),
            key: key.to_vec(),
        };
        sim.reset();
        Ok(sim)
    }

    /// Chip reset: clears the flip-flops and reseeds the LFSR from the key.
    pub fn reset(&mut self) {
        self.seq.reset();
        self.lfsr.load(&self.key);
    }

    /// Current flip-flop state (white-box, for tests).
    pub fn state(&self) -> &[bool] {
        self.seq.state()
    }

    /// Current LFSR state (white-box, for tests).
    pub fn keystream(&self) -> Vec<bool> {
        self.lfsr.state()
    }

    /// The scan-chain configuration.
    pub fn chains(&self) -> &ScanChains {
        &self.chains
    }

    /// One shift clock: plain shift, then the keyed stages under the current
    /// LFSR state, then the LFSR steps. Returns the per-chain scan-out bits.
    ///
    /// # Panics
    ///
    /// Panics if `scan_in` does not hold one bit per chain.
    pub fn shift_clock(&mut self, scan_in: &[bool]) -> Vec<bool> {
        let mut state = self.seq.state().to_vec();
        let mut outs = self.chains.shift_image(&mut state, scan_in);
        let ks = self.lfsr.state();
        apply_stages(&self.stages, &self.chains, &ks, &mut state, &mut outs);
        self.seq.set_state(&state);
        self.lfsr.step(&[]);
        outs
    }

    /// One functional (capture) clock: evaluates the circuit with `pis`,
    /// latches the next state, returns the primary outputs. The LFSR does
    /// not step on capture cycles.
    pub fn capture(&mut self, pis: &[bool]) -> Vec<bool> {
        self.seq.step(pis)
    }

    /// One full tester session from reset: `load_cycles` shifts of
    /// `scan_stream` (cycle-major, one bit per chain per cycle), one capture
    /// with `pis`, then `unload_cycles` shifts with zero scan-in.
    ///
    /// Returns everything the tester observes, concatenated:
    /// load-phase scan-outs (`load_cycles * num_chains` bits), capture
    /// primary outputs, unload-phase scan-outs.
    ///
    /// # Panics
    ///
    /// Panics if `scan_stream` is not `load_cycles * num_chains` bits.
    pub fn session(
        &mut self,
        load_cycles: usize,
        unload_cycles: usize,
        scan_stream: &[bool],
        pis: &[bool],
    ) -> Vec<bool> {
        let nc = self.chains.num_chains();
        assert_eq!(
            scan_stream.len(),
            load_cycles * nc,
            "scan stream must hold one bit per chain per load cycle"
        );
        self.reset();
        let mut observed = Vec::new();
        for t in 0..load_cycles {
            observed.extend(self.shift_clock(&scan_stream[t * nc..(t + 1) * nc]));
        }
        observed.extend(self.capture(pis));
        let zeros = vec![false; nc];
        for _ in 0..unload_cycles {
            observed.extend(self.shift_clock(&zeros));
        }
        observed
    }
}

/// Test-only mutation hook for the conformance kill matrix, planted in the
/// *unroller* only — the chip model stays correct, so a sabotaged unroll
/// disagrees with the real session behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrollSabotage {
    /// Model each swap stage one hop too early (`pos - 1` instead of `pos`),
    /// the classic off-by-one in chain-hop bookkeeping.
    WrongHopPermutation,
}

/// Bounds for [`ScanObfLocked::unroll`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrollOptions {
    /// Load-phase shift cycles (`0` = the longest chain's length).
    pub load_cycles: usize,
    /// Unload-phase shift cycles (`0` = the longest chain's length).
    pub unload_cycles: usize,
    /// Optional planted fault (kill-matrix only).
    pub sabotage: Option<UnrollSabotage>,
}

/// A bounded scan session unrolled into a combinational [`LockedCircuit`]
/// whose key inputs are the LFSR seed.
///
/// Input order of `locked.circuit`: the `key_bits` seed inputs
/// (`scan_key_i`), then the load-phase scan-in bits cycle-major
/// (`sin_{t}_{c}`), then the original primary inputs. Output order: load
/// scan-outs cycle-major, capture primary outputs, unload scan-outs — the
/// exact layout [`ObfScanSim::session`] returns.
#[derive(Debug, Clone)]
pub struct UnrolledSession {
    /// The combinational session model as a locked circuit (scheme
    /// `"scan_obf"`), ready for the SAT pipeline.
    pub locked: LockedCircuit,
    /// Chains in the underlying model (= scan-in/-out bits per cycle).
    pub num_chains: usize,
    /// Load-phase cycles unrolled.
    pub load_cycles: usize,
    /// Unload-phase cycles unrolled.
    pub unload_cycles: usize,
    /// Primary outputs observed at the capture cycle.
    pub capture_outputs: usize,
}

impl UnrolledSession {
    /// Total clocked cycles modelled: load + capture + unload.
    pub fn unroll_depth(&self) -> usize {
        self.load_cycles + 1 + self.unload_cycles
    }

    /// Observed bits per shift frame (one per chain).
    pub fn frame_bits(&self) -> usize {
        self.num_chains
    }

    /// Non-key (data) input bits of the session circuit.
    pub fn data_bits(&self) -> usize {
        self.locked.circuit.comb_inputs().len() - self.locked.key_inputs.len()
    }
}

impl ScanObfLocked {
    /// Key (LFSR seed) width.
    pub fn key_bits(&self) -> usize {
        self.correct_key.len()
    }

    /// Unrolls one bounded load→capture→unload session into a combinational
    /// circuit. See [`UnrolledSession`] for the I/O layout.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if gate construction fails (it cannot for a
    /// validated circuit).
    pub fn unroll(&self, opts: &UnrollOptions) -> Result<UnrolledSession, Error> {
        let max_len = self.chains.max_len().max(1);
        let load = if opts.load_cycles == 0 { max_len } else { opts.load_cycles };
        let unload = if opts.unload_cycles == 0 { max_len } else { opts.unload_cycles };
        let nc = self.chains.num_chains();
        let w = self.key_bits();

        let mut c = Circuit::new(format!("{}_scan_unroll", self.circuit.name()));
        let key_nets: Vec<NetId> = (0..w).map(|i| c.add_input(format!("scan_key_{i}"))).collect();
        let sin: Vec<Vec<NetId>> = (0..load)
            .map(|t| (0..nc).map(|ch| c.add_input(format!("sin_{t}_{ch}"))).collect())
            .collect();
        let pi_nets: Vec<NetId> = self
            .circuit
            .primary_inputs()
            .iter()
            .map(|&p| c.add_input(self.circuit.net(p).name()))
            .collect();
        let zero = c.add_gate(GateKind::Const0, Vec::new(), "scan_zero")?;

        // Symbolic LFSR schedule: S_0 is the seed, one step per shift cycle.
        let total_shifts = load + unload;
        let mut lstates: Vec<Vec<NetId>> = Vec::with_capacity(total_shifts);
        lstates.push(key_nets.clone());
        for t in 1..total_shifts {
            let prev = &lstates[t - 1];
            let fb = if self.lfsr.taps.len() == 1 {
                prev[self.lfsr.taps[0]]
            } else {
                let fanin: Vec<NetId> = self.lfsr.taps.iter().map(|&tp| prev[tp]).collect();
                c.add_gate(GateKind::Xor, fanin, format!("lfsr_fb_{t}"))?
            };
            let mut next = Vec::with_capacity(w);
            next.push(fb);
            next.extend_from_slice(&prev[..w - 1]);
            lstates.push(next);
        }

        // Session state starts from chip reset: every cell at constant 0.
        let mut cells: Vec<NetId> = vec![zero; self.chains.num_dffs()];
        let mut observed: Vec<NetId> = Vec::new();

        for (t, sins) in sin.iter().enumerate() {
            let outs = self.sym_shift(&mut c, &lstates[t], &mut cells, sins, zero, opts.sabotage, t)?;
            observed.extend(outs);
        }

        // Capture: instantiate the combinational core once over the loaded
        // symbolic state.
        let mut map: HashMap<NetId, NetId> = HashMap::new();
        for (i, &p) in self.circuit.primary_inputs().iter().enumerate() {
            map.insert(p, pi_nets[i]);
        }
        for (ff, dff) in self.circuit.dffs().iter().enumerate() {
            map.insert(dff.q, cells[ff]);
        }
        let mapped = instantiate_comb(&mut c, &self.circuit, &mut map)?;
        let npo = self.circuit.primary_outputs().len();
        observed.extend_from_slice(&mapped[..npo]);
        for (ff, cell) in cells.iter_mut().enumerate() {
            *cell = mapped[npo + ff];
        }

        let zeros_in = vec![zero; nc];
        for u in 0..unload {
            let outs =
                self.sym_shift(&mut c, &lstates[load + u], &mut cells, &zeros_in, zero, opts.sabotage, load + u)?;
            observed.extend(outs);
        }

        // Buffer every observed bit onto a fresh net before marking: outputs
        // may alias (mark_output dedups), and the oracle layout needs one
        // output per observed bit in order.
        for (i, &net) in observed.iter().enumerate() {
            let buf = c.add_gate(GateKind::Buf, vec![net], format!("obs_{i}"))?;
            c.mark_output(buf);
        }

        Ok(UnrolledSession {
            locked: LockedCircuit {
                circuit: c,
                key_inputs: key_nets,
                correct_key: self.correct_key.clone(),
                scheme: "scan_obf",
            },
            num_chains: nc,
            load_cycles: load,
            unload_cycles: unload,
            capture_outputs: npo,
        })
    }

    /// Symbolic mirror of one [`ObfScanSim::shift_clock`]: plain shift of
    /// the `cells` nets, then stage logic under the cycle's LFSR state nets.
    #[allow(clippy::too_many_arguments)]
    fn sym_shift(
        &self,
        c: &mut Circuit,
        ks: &[NetId],
        cells: &mut [NetId],
        sin: &[NetId],
        zero: NetId,
        sabotage: Option<UnrollSabotage>,
        t: usize,
    ) -> Result<Vec<NetId>, Error> {
        let mut outs = Vec::with_capacity(self.chains.num_chains());
        for (ci, &sin_net) in sin.iter().enumerate().take(self.chains.num_chains()) {
            let chain = self.chains.chain(ci);
            outs.push(chain.last().map(|&ff| cells[ff]).unwrap_or(zero));
            for i in (1..chain.len()).rev() {
                cells[chain[i]] = cells[chain[i - 1]];
            }
            if let Some(&first) = chain.first() {
                cells[first] = sin_net;
            }
        }
        for (si, st) in self.stages.iter().enumerate() {
            let chain = self.chains.chain(st.chain);
            let s = ks[st.cell];
            match st.kind {
                StageKind::Invert => {
                    if st.pos == chain.len() {
                        outs[st.chain] = c.add_gate(
                            GateKind::Xor,
                            vec![outs[st.chain], s],
                            format!("inv_{t}_{si}"),
                        )?;
                    } else {
                        let ff = chain[st.pos];
                        cells[ff] = c.add_gate(
                            GateKind::Xor,
                            vec![cells[ff], s],
                            format!("inv_{t}_{si}"),
                        )?;
                    }
                }
                StageKind::Swap => {
                    let pos = if sabotage == Some(UnrollSabotage::WrongHopPermutation) {
                        st.pos.saturating_sub(1)
                    } else {
                        st.pos
                    };
                    let (a_ff, b_ff) = (chain[pos], chain[pos + 1]);
                    let (a, b) = (cells[a_ff], cells[b_ff]);
                    let ns = c.add_gate(GateKind::Not, vec![s], format!("swn_{t}_{si}"))?;
                    let sa = c.add_gate(GateKind::And, vec![s, b], format!("swa_{t}_{si}"))?;
                    let ka = c.add_gate(GateKind::And, vec![ns, a], format!("swb_{t}_{si}"))?;
                    cells[a_ff] =
                        c.add_gate(GateKind::Or, vec![sa, ka], format!("swl_{t}_{si}"))?;
                    let sb = c.add_gate(GateKind::And, vec![s, a], format!("swc_{t}_{si}"))?;
                    let kb = c.add_gate(GateKind::And, vec![ns, b], format!("swd_{t}_{si}"))?;
                    cells[b_ff] =
                        c.add_gate(GateKind::Or, vec![sb, kb], format!("swh_{t}_{si}"))?;
                }
            }
        }
        Ok(outs)
    }
}

/// Copies the combinational cone of `src` into `dst`, with `map` pre-seeded
/// for every comb input (primary inputs and flip-flop outputs). Returns the
/// mapped comb outputs (`src` primary outputs, then flip-flop `d` nets).
fn instantiate_comb(
    dst: &mut Circuit,
    src: &Circuit,
    map: &mut HashMap<NetId, NetId>,
) -> Result<Vec<NetId>, Error> {
    let outputs = src.comb_outputs();
    let mut stack: Vec<(NetId, bool)> = outputs.iter().map(|&n| (n, false)).collect();
    while let Some((net, expanded)) = stack.pop() {
        if map.contains_key(&net) {
            continue;
        }
        let gate = src
            .gate(net)
            .expect("every unmapped net in a validated circuit is gate-driven");
        if expanded {
            let fanin: Vec<NetId> = gate.fanin.iter().map(|f| map[f]).collect();
            let id = dst.add_gate(gate.kind, fanin, src.net(net).name())?;
            map.insert(net, id);
        } else {
            stack.push((net, true));
            for &f in &gate.fanin {
                if !map.contains_key(&f) {
                    stack.push((f, false));
                }
            }
        }
    }
    Ok(outputs.iter().map(|n| map[n]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::CombSim;
    use netlist::samples;

    fn cfg() -> ScanObfConfig {
        ScanObfConfig {
            key_bits: 8,
            num_chains: 2,
            invert_spacing: 2,
            swap_spacing: 2,
            seed: 3,
        }
    }

    #[test]
    fn unrolled_matches_session_under_correct_key() {
        let orig = samples::counter(8);
        let locked = lock(&orig, &cfg()).unwrap();
        let unrolled = locked.unroll(&UnrollOptions::default()).unwrap();
        unrolled.locked.circuit.validate().unwrap();
        let sim = CombSim::new(&unrolled.locked.circuit).unwrap();
        let mut chip = ObfScanSim::new(&locked, &locked.correct_key).unwrap();
        let mut rng = SplitMix64::new(9);
        for _ in 0..32 {
            let stream: Vec<bool> = (0..unrolled.load_cycles * unrolled.num_chains)
                .map(|_| rng.bool())
                .collect();
            let pis: Vec<bool> = (0..orig.primary_inputs().len()).map(|_| rng.bool()).collect();
            let want = chip.session(unrolled.load_cycles, unrolled.unload_cycles, &stream, &pis);
            let mut x = locked.correct_key.clone();
            x.extend(&stream);
            x.extend(&pis);
            assert_eq!(sim.eval_bools(&x), want);
        }
    }

    #[test]
    fn wrong_key_scrambles_the_session() {
        let orig = samples::counter(8);
        let locked = lock(&orig, &cfg()).unwrap();
        let mut wrong = locked.correct_key.clone();
        for b in wrong.iter_mut() {
            *b = !*b;
        }
        let mut good = ObfScanSim::new(&locked, &locked.correct_key).unwrap();
        let mut bad = ObfScanSim::new(&locked, &wrong).unwrap();
        let depth = locked.chains.max_len();
        let mut rng = SplitMix64::new(17);
        let mut differed = false;
        for _ in 0..16 {
            let stream: Vec<bool> =
                (0..depth * locked.chains.num_chains()).map(|_| rng.bool()).collect();
            let a = good.session(depth, depth, &stream, &[false]);
            let b = bad.session(depth, depth, &stream, &[false]);
            differed |= a != b;
        }
        assert!(differed, "a flipped seed must disturb the observed session");
    }

    #[test]
    fn deterministic_by_seed() {
        let orig = samples::counter(6);
        let a = lock(&orig, &cfg()).unwrap();
        let b = lock(&orig, &cfg()).unwrap();
        assert_eq!(a.correct_key, b.correct_key);
        assert_eq!(a.stages, b.stages);
    }

    #[test]
    fn rejects_bad_profiles() {
        assert!(lock(&samples::c17(), &ScanObfConfig::balanced(8, 0)).is_err());
        let orig = samples::counter(4);
        assert!(lock(&orig, &ScanObfConfig { key_bits: 0, ..ScanObfConfig::balanced(8, 0) }).is_err());
        assert!(lock(
            &orig,
            &ScanObfConfig { invert_spacing: 0, swap_spacing: 0, ..ScanObfConfig::balanced(8, 0) }
        )
        .is_err());
    }

    #[test]
    fn wrong_hop_sabotage_changes_the_unrolled_function() {
        let orig = samples::counter(8);
        let locked = lock(&orig, &cfg()).unwrap();
        let clean = locked.unroll(&UnrollOptions::default()).unwrap();
        let bad = locked
            .unroll(&UnrollOptions {
                sabotage: Some(UnrollSabotage::WrongHopPermutation),
                ..UnrollOptions::default()
            })
            .unwrap();
        let sim_c = CombSim::new(&clean.locked.circuit).unwrap();
        let sim_b = CombSim::new(&bad.locked.circuit).unwrap();
        let mut rng = SplitMix64::new(23);
        let n = clean.locked.circuit.comb_inputs().len() - clean.locked.key_inputs.len();
        let mut differed = false;
        for _ in 0..64 {
            let mut x = locked.correct_key.clone();
            x.extend((0..n).map(|_| rng.bool()));
            differed |= sim_c.eval_bools(&x) != sim_b.eval_bools(&x);
        }
        assert!(differed, "the planted wrong-hop fault must be semantic");
    }

    #[test]
    fn session_layout_matches_unroll_metadata() {
        let orig = samples::counter(8);
        let locked = lock(&orig, &cfg()).unwrap();
        let unrolled = locked.unroll(&UnrollOptions::default()).unwrap();
        assert_eq!(unrolled.unroll_depth(), 4 + 1 + 4);
        assert_eq!(unrolled.frame_bits(), 2);
        assert_eq!(unrolled.capture_outputs, 8);
        let n_out = unrolled.locked.circuit.primary_outputs().len();
        assert_eq!(
            n_out,
            unrolled.load_cycles * unrolled.num_chains
                + unrolled.capture_outputs
                + unrolled.unload_cycles * unrolled.num_chains
        );
        assert_eq!(
            unrolled.data_bits(),
            unrolled.load_cycles * unrolled.num_chains + orig.primary_inputs().len()
        );
    }
}
