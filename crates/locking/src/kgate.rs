//! K-Gate-style multi-key input encoding (after arXiv:2501.02118).
//!
//! Where conventional key gates corrupt the circuit uniformly under a wrong
//! key, K-Gate Lock *partitions the input space into classes* and decodes
//! each class with its **own key word**: a small group of data inputs (the
//! *selector*) picks which word of the key is active, and the active word
//! XOR-masks a set of *target* inputs against a secret per-class decode
//! table. Under the correct key every mask term cancels and the circuit is
//! transparent; under a wrong word only the inputs of that word's class are
//! corrupted.
//!
//! The multi-key property is what raises the bar for oracle-guided attacks:
//! an oracle query constrains *only the class its selector bits land in*,
//! so a SAT attack must distinguish keys class by class — the number of
//! distinguishing inputs scales with the class count, not just the key
//! width. (The scheme is still SAT-breakable, which the attack-resistance
//! matrix reports honestly; its value is query-cost amplification, the same
//! axis SARLock exploits, without SARLock's one-input corruptibility.)
//!
//! Construction per target input `x_j`:
//!
//! ```text
//! mask_j = OR over classes s of  minterm_s(selectors) AND (key[s][j] XOR t[s][j])
//! x'_j   = x_j XOR mask_j
//! ```
//!
//! where `t[s][j]` is the secret decode table. The correct key word for
//! class `s` is exactly the table row `t[s]`, so each AND term is 0 and
//! `mask_j` vanishes. The `key XOR t` factor is realized structurally as
//! the key input either directly (`t = 0`) or through an inverter
//! (`t = 1`), so the table is embedded in the netlist the same way XOR vs
//! XNOR key gates embed key bits in classic RLL.

use netlist::rng::SplitMix64;
use netlist::{Circuit, Error, GateKind, NetId};

use crate::LockedCircuit;

/// K-Gate Lock parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KGateConfig {
    /// Number of input classes; must be a power of two ≥ 2. Uses
    /// `log2(classes)` data inputs as the class selector.
    pub classes: usize,
    /// Encoded (target) data inputs per class word; the total key width is
    /// `classes * word_bits`.
    pub word_bits: usize,
    /// PRNG seed for the decode table and the selector/target choice.
    pub seed: u64,
}

/// Test-only mutation hook for the conformance kill matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KGateSabotage {
    /// Record the decode-table rows of classes 0 and 1 swapped in the
    /// `correct_key`, while the netlist keeps the unswapped table — the
    /// recorded key no longer decodes its classes.
    DecodeTableSwap,
}

/// Applies K-Gate Lock to `original`.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if `classes` is not a power of two ≥ 2,
/// `word_bits` is 0, or the circuit has fewer than
/// `log2(classes) + word_bits` combinational inputs (selector and target
/// inputs are disjoint).
pub fn lock(original: &Circuit, config: &KGateConfig) -> Result<LockedCircuit, Error> {
    lock_with_sabotage(original, config, None)
}

/// [`lock`] with an optional planted fault (test-only; the conformance
/// kill matrix drives this).
///
/// # Errors
///
/// Same conditions as [`lock`].
pub fn lock_with_sabotage(
    original: &Circuit,
    config: &KGateConfig,
    sabotage: Option<KGateSabotage>,
) -> Result<LockedCircuit, Error> {
    if config.classes < 2 || !config.classes.is_power_of_two() {
        return Err(Error::BadProfile(format!(
            "kgate classes must be a power of two >= 2, got {}",
            config.classes
        )));
    }
    if config.word_bits == 0 {
        return Err(Error::BadProfile("kgate word_bits must be positive".into()));
    }
    let sel_bits = config.classes.trailing_zeros() as usize;
    let inputs = original.comb_inputs();
    if inputs.len() < sel_bits + config.word_bits {
        return Err(Error::BadProfile(format!(
            "kgate needs {} disjoint selector+target inputs, circuit has {}",
            sel_bits + config.word_bits,
            inputs.len()
        )));
    }

    let mut rng = SplitMix64::new(config.seed ^ 0x4b67_a7e5_10c4_ed00);
    let picks = rng.sample_indices(inputs.len(), sel_bits + config.word_bits);
    let selectors: Vec<NetId> = picks[..sel_bits].iter().map(|&i| inputs[i]).collect();
    let targets: Vec<NetId> = picks[sel_bits..].iter().map(|&i| inputs[i]).collect();

    // The secret decode table: one row (word) per class.
    let table: Vec<Vec<bool>> = (0..config.classes)
        .map(|_| (0..config.word_bits).map(|_| rng.bool()).collect())
        .collect();

    let mut c = original.clone();

    // Key inputs, class-major: key bit s*word_bits + j decodes target j in
    // class s.
    let mut key_inputs = Vec::with_capacity(config.classes * config.word_bits);
    for s in 0..config.classes {
        for j in 0..config.word_bits {
            key_inputs.push(c.add_input(format!("kg_key_{s}_{j}")));
        }
    }

    // Selector complements, shared by every minterm.
    let mut sel_neg = Vec::with_capacity(sel_bits);
    for (b, &sel) in selectors.iter().enumerate() {
        sel_neg.push(c.add_gate(GateKind::Not, vec![sel], format!("kg_seln_{b}"))?);
    }

    // One minterm per class: AND over selector literals.
    let mut minterms = Vec::with_capacity(config.classes);
    for s in 0..config.classes {
        let lits: Vec<NetId> = (0..sel_bits)
            .map(|b| if (s >> b) & 1 == 1 { selectors[b] } else { sel_neg[b] })
            .collect();
        let m = if lits.len() == 1 {
            lits[0]
        } else {
            c.add_gate(GateKind::And, lits, format!("kg_min_{s}"))?
        };
        minterms.push(m);
    }

    for (j, &target) in targets.iter().enumerate() {
        // Per-class term: minterm AND (key XOR table-bit). The table bit is
        // folded into the polarity of the key literal.
        let mut terms = Vec::with_capacity(config.classes);
        for (s, minterm) in minterms.iter().enumerate() {
            let key = key_inputs[s * config.word_bits + j];
            let key_lit = if table[s][j] {
                c.add_gate(GateKind::Not, vec![key], format!("kg_keyn_{s}_{j}"))?
            } else {
                key
            };
            terms.push(c.add_gate(
                GateKind::And,
                vec![*minterm, key_lit],
                format!("kg_term_{s}_{j}"),
            )?);
        }
        let mask = if terms.len() == 1 {
            terms[0]
        } else {
            c.add_gate(GateKind::Or, terms, format!("kg_mask_{j}"))?
        };
        let encoded = c.add_gate(GateKind::Xor, vec![target, mask], format!("kg_enc_{j}"))?;
        // Rewire every pre-existing reader of the target input onto the
        // encoded net. The decode logic itself never reads targets (the
        // selector and target sets are disjoint), and the encoder gate is
        // excluded explicitly, so only the original core logic moves.
        let ids: Vec<NetId> = c.net_ids().collect();
        for id in ids {
            if id == encoded {
                continue;
            }
            if let Some(g) = c.gate(id) {
                if g.fanin.contains(&target) {
                    let mut g2 = g.clone();
                    for f in g2.fanin.iter_mut() {
                        if *f == target {
                            *f = encoded;
                        }
                    }
                    c.set_driver(id, g2)?;
                }
            }
        }
    }

    let mut correct_key: Vec<bool> = table.iter().flatten().copied().collect();
    if sabotage == Some(KGateSabotage::DecodeTableSwap) {
        // The netlist keeps table rows 0 and 1 in place; only the recorded
        // key swaps them — a decode-table bookkeeping fault.
        for j in 0..config.word_bits {
            correct_key.swap(j, config.word_bits + j);
        }
    }

    Ok(LockedCircuit {
        circuit: c,
        key_inputs,
        correct_key,
        scheme: "kgate",
    })
}

/// The class (selector value) an input pattern belongs to, given the locked
/// circuit's config. Exposed so tests and the conformance battery can
/// reason about which key word a query constrains.
///
/// `data` is indexed like the *original* circuit's combinational inputs.
pub fn input_class(original: &Circuit, config: &KGateConfig, data: &[bool]) -> usize {
    let sel_bits = config.classes.trailing_zeros() as usize;
    let inputs = original.comb_inputs();
    let mut rng = SplitMix64::new(config.seed ^ 0x4b67_a7e5_10c4_ed00);
    let picks = rng.sample_indices(inputs.len(), sel_bits + config.word_bits);
    let mut class = 0usize;
    for (b, &i) in picks[..sel_bits].iter().enumerate() {
        if data[i] {
            class |= 1 << b;
        }
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn correct_key_preserves_function() {
        let original = samples::ripple_adder(4);
        let config = KGateConfig { classes: 4, word_bits: 3, seed: 7 };
        let locked = lock(&original, &config).unwrap();
        assert_eq!(locked.key_bits(), 12);
        assert!(locked.verify_against(&original, 512).unwrap());
    }

    #[test]
    fn wrong_word_corrupts_only_its_class() {
        let original = samples::ripple_adder(4);
        let config = KGateConfig { classes: 4, word_bits: 3, seed: 7 };
        let locked = lock(&original, &config).unwrap();
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let orig = gatesim::CombSim::new(&original).unwrap();
        // Flip all of word 2; inputs whose selector lands elsewhere must be
        // untouched, and at least one class-2 input must corrupt.
        let mut wrong = locked.correct_key.clone();
        for j in 0..config.word_bits {
            wrong[2 * config.word_bits + j] = !wrong[2 * config.word_bits + j];
        }
        let n_data = original.comb_inputs().len();
        let mut rng = SplitMix64::new(0xC1A5);
        let mut corrupted_in_class = false;
        for _ in 0..256 {
            let data: Vec<bool> = (0..n_data).map(|_| rng.bool()).collect();
            let mut lock_in = data.clone();
            lock_in.extend(&wrong);
            let got = sim.eval_bools(&lock_in);
            let want = orig.eval_bools(&data);
            if input_class(&original, &config, &data) == 2 {
                corrupted_in_class |= got != want;
            } else {
                assert_eq!(got, want, "wrong word leaked outside its class");
            }
        }
        assert!(corrupted_in_class, "wrong word must corrupt its own class");
    }

    #[test]
    fn deterministic_by_seed() {
        let original = samples::ripple_adder(3);
        let config = KGateConfig { classes: 2, word_bits: 2, seed: 11 };
        let a = lock(&original, &config).unwrap();
        let b = lock(&original, &config).unwrap();
        assert_eq!(a.correct_key, b.correct_key);
        assert_eq!(a.circuit.num_gates(), b.circuit.num_gates());
    }

    #[test]
    fn rejects_bad_profiles() {
        let original = samples::c17();
        assert!(lock(&original, &KGateConfig { classes: 3, word_bits: 2, seed: 0 }).is_err());
        assert!(lock(&original, &KGateConfig { classes: 2, word_bits: 0, seed: 0 }).is_err());
        // c17 has 5 inputs; 8 classes (3 selector bits) + 4 targets > 5.
        assert!(lock(&original, &KGateConfig { classes: 8, word_bits: 4, seed: 0 }).is_err());
    }

    #[test]
    fn decode_table_swap_breaks_the_recorded_key() {
        let original = samples::ripple_adder(4);
        let config = KGateConfig { classes: 4, word_bits: 3, seed: 7 };
        let clean = lock(&original, &config).unwrap();
        let bad =
            lock_with_sabotage(&original, &config, Some(KGateSabotage::DecodeTableSwap)).unwrap();
        // The planted fault must be semantic for this config: rows differ.
        assert_ne!(clean.correct_key, bad.correct_key);
        assert!(!bad.verify_against(&original, 512).unwrap());
    }
}
