//! Combinational logic-locking schemes.
//!
//! OraP is an *oracle-protection* layer: it does not itself corrupt the
//! circuit function, so it is combined with a conventional locking scheme.
//! The paper pairs it with **weighted logic locking** (WLL, ref.\ [26\] of the paper) because —
//! with the oracle gone and SAT attacks off the table — a designer is free
//! to choose a scheme with *high output corruptibility* instead of a
//! SAT-resistant point-function scheme. This crate implements:
//!
//! - [`random`]: random XOR/XNOR key-gate insertion (RLL / EPIC-style), the
//!   classic baseline,
//! - [`fault_based`]: fault-impact-guided insertion (FLL-style),
//! - [`weighted`]: weighted logic locking — an AND/NAND control gate over
//!   `w` key inputs drives each XOR/XNOR key gate, raising the key gate's
//!   actuation probability under a random wrong key to `1 − 2^−w`,
//! - [`point_function`]: SARLock and Anti-SAT, the SAT-resistant baselines
//!   whose low corruptibility the paper contrasts against,
//! - [`sfll`]: stripped-functionality locking (SFLL-HD / TTLock), the
//!   state-of-the-art point-function scheme in the paper's related work,
//! - [`kgate`]: K-Gate-style multi-key input encoding — distinct key words
//!   decode distinct input classes, amplifying oracle query cost,
//! - [`scan_obfuscation`]: LFSR-keyed *dynamic* scan-chain obfuscation (the
//!   DynUnlock workload) — the key lives in the scan path, not the
//!   combinational netlist.
//!
//! All schemes produce a [`LockedCircuit`]: the locked netlist, the key
//! input nets, and the correct key.
//!
//! # Example
//!
//! ```
//! use locking::weighted::{self, WllConfig};
//! use netlist::samples;
//!
//! let original = samples::c17();
//! let locked = weighted::lock(&original, &WllConfig { key_bits: 6, control_width: 3, seed: 1 })
//!     .expect("c17 has enough nets");
//! assert_eq!(locked.key_inputs.len(), 6);
//! assert!(locked.verify_against(&original, 256).expect("simulable"));
//! ```

#![warn(missing_docs)]

pub mod fault_based;
pub mod kgate;
pub mod point_function;
pub mod random;
pub mod scan_obfuscation;
pub mod sfll;
pub mod weighted;

mod insert;

use netlist::{Circuit, Error, GateKind, NetId};

/// A locked netlist together with its key metadata.
#[derive(Debug, Clone)]
pub struct LockedCircuit {
    /// The locked netlist; key inputs are ordinary primary inputs of the
    /// combinational part.
    pub circuit: Circuit,
    /// The key input nets, in key-bit order.
    pub key_inputs: Vec<NetId>,
    /// The correct key.
    pub correct_key: Vec<bool>,
    /// Human-readable scheme name.
    pub scheme: &'static str,
}

impl LockedCircuit {
    /// Key width in bits.
    pub fn key_bits(&self) -> usize {
        self.key_inputs.len()
    }

    /// Builds a copy of the locked circuit with the key inputs replaced by
    /// constants carrying `key` — the *activated* chip as a plain netlist
    /// (used to build oracles).
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (none expected for a well-formed lock).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn with_key_constants(&self, key: &[bool]) -> Result<Circuit, Error> {
        assert_eq!(key.len(), self.key_bits(), "key width mismatch");
        let mut c = self.circuit.clone();
        // Key inputs must stop being primary inputs: rebuild as a fresh
        // circuit where key nets are constant gates. We achieve this by
        // creating const drivers and rewiring every reader.
        let mut const_net = Vec::with_capacity(key.len());
        for (i, &bit) in key.iter().enumerate() {
            let kind = if bit { GateKind::Const1 } else { GateKind::Const0 };
            let n = c.add_gate(kind, vec![], format!("key_const{i}"))?;
            const_net.push(n);
        }
        let remap: std::collections::HashMap<NetId, NetId> = self
            .key_inputs
            .iter()
            .copied()
            .zip(const_net.iter().copied())
            .collect();
        let ids: Vec<NetId> = c.net_ids().collect();
        for id in ids {
            if let Some(g) = c.gate(id) {
                if g.fanin.iter().any(|f| remap.contains_key(f)) {
                    let mut g2 = g.clone();
                    for f in g2.fanin.iter_mut() {
                        if let Some(&r) = remap.get(f) {
                            *f = r;
                        }
                    }
                    c.set_driver(id, g2)?;
                }
            }
        }
        Ok(c)
    }

    /// Randomized check that the locked circuit under the correct key
    /// matches `original` on `patterns` pseudorandom inputs.
    ///
    /// Inputs are matched positionally: the locked circuit's non-key
    /// combinational inputs must appear in the same order as the original's.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if either circuit is cyclic.
    pub fn verify_against(&self, original: &Circuit, patterns: usize) -> Result<bool, Error> {
        let report = gatesim::hd::hamming_between_keys(
            &self.circuit,
            &self.key_inputs,
            &self.correct_key,
            &self.correct_key,
            1,
            0,
        )?;
        debug_assert_eq!(report.flipped, 0);
        // Compare against the original via keyed evaluation.
        let sim_lock = gatesim::CombSim::new(&self.circuit)?;
        let sim_orig = gatesim::CombSim::new(original)?;
        let key_set: std::collections::HashSet<NetId> =
            self.key_inputs.iter().copied().collect();
        let data_pos: Vec<usize> = sim_lock
            .inputs()
            .iter()
            .enumerate()
            .filter(|(_, n)| !key_set.contains(n))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            data_pos.len(),
            sim_orig.inputs().len(),
            "data interface mismatch"
        );
        let mut rng = netlist::rng::SplitMix64::new(0x10c0_fee1);
        let words = patterns.div_ceil(64).max(1);
        let mut lock_in = vec![0u64; sim_lock.inputs().len()];
        for (k, &pos) in self.key_inputs.iter().enumerate() {
            let i = sim_lock
                .inputs()
                .iter()
                .position(|n| *n == pos)
                .expect("key input present");
            lock_in[i] = if self.correct_key[k] { !0 } else { 0 };
        }
        for _ in 0..words {
            let mut orig_in = Vec::with_capacity(data_pos.len());
            for &d in &data_pos {
                let w = rng.next_u64();
                lock_in[d] = w;
                orig_in.push(w);
            }
            if sim_lock.eval_words(&lock_in) != sim_orig.eval_words(&orig_in) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn with_key_constants_freezes_key() {
        let original = samples::c17();
        let locked = random::lock(
            &original,
            &random::RllConfig {
                key_bits: 4,
                seed: 3,
            },
        )
        .unwrap();
        let activated = locked.with_key_constants(&locked.correct_key).unwrap();
        // The activated circuit has the same data interface as the original.
        assert_eq!(
            activated.comb_inputs().len(),
            original.comb_inputs().len() + locked.key_bits()
        );
        // Key inputs remain as (now unread) primary inputs; function matches
        // the original regardless of their values.
        let sim_a = gatesim::CombSim::new(&activated).unwrap();
        let sim_o = gatesim::CombSim::new(&original).unwrap();
        let mut rng = netlist::rng::SplitMix64::new(9);
        for _ in 0..32 {
            let data: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
            let mut input = data.clone();
            input.extend((0..4).map(|_| rng.next_u64())); // junk key values
            assert_eq!(sim_a.eval_words(&input), sim_o.eval_words(&data));
        }
    }

    #[test]
    fn wrong_key_changes_function() {
        let original = samples::c17();
        let locked = random::lock(
            &original,
            &random::RllConfig {
                key_bits: 4,
                seed: 3,
            },
        )
        .unwrap();
        let mut wrong = locked.correct_key.clone();
        for b in wrong.iter_mut() {
            *b = !*b;
        }
        let rep = gatesim::hd::hamming_between_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            &wrong,
            512,
            1,
        )
        .unwrap();
        assert!(rep.flipped > 0, "all-flipped key must corrupt outputs");
    }
}
