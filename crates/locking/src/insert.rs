//! Shared key-gate insertion machinery.

use netlist::{Circuit, Error, Gate, GateKind, NetId};

/// Splices a key gate onto `net`: the net's old driver moves to a fresh
/// internal net, and `net` is re-driven by `XOR(old, control)` (when the
/// correct value of `control` is 0) or `XNOR(old, control)` (correct value
/// 1), so the function is preserved exactly when `control` carries its
/// correct value.
///
/// # Errors
///
/// Returns a netlist error if `net` has no driver (inputs cannot carry key
/// gates).
pub(crate) fn splice_key_gate(
    circuit: &mut Circuit,
    net: NetId,
    control: NetId,
    correct_control_value: bool,
    tag: usize,
) -> Result<(), Error> {
    let moved = circuit.split_net(net, format!("pre_kg{tag}"))?;
    let kind = if correct_control_value {
        GateKind::Xnor
    } else {
        GateKind::Xor
    };
    circuit.set_driver(net, Gate::new(kind, vec![moved, control])?)
}

/// Nets eligible for key-gate insertion: gate-driven nets (splicing onto a
/// primary input or flip-flop output is impossible — they have no driver).
pub(crate) fn lockable_nets(circuit: &Circuit) -> Vec<NetId> {
    circuit
        .net_ids()
        .filter(|&id| circuit.gate(id).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn splice_preserves_function_under_correct_control() {
        for correct in [false, true] {
            let original = samples::full_adder();
            let mut locked = original.clone();
            let target = locked.find("axb").unwrap();
            let k = locked.add_input("k0");
            splice_key_gate(&mut locked, target, k, correct, 0).unwrap();
            locked.validate().unwrap();
            let sim_o = gatesim::CombSim::new(&original).unwrap();
            let sim_l = gatesim::CombSim::new(&locked).unwrap();
            for m in 0..8u32 {
                let data: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
                let mut input = data.clone();
                input.push(correct);
                assert_eq!(sim_l.eval_bools(&input), sim_o.eval_bools(&data));
                // And the wrong control value must flip the spliced net's
                // contribution for at least some pattern (checked globally in
                // scheme tests).
            }
        }
    }

    #[test]
    fn lockable_excludes_inputs() {
        let c = samples::c17();
        let nets = lockable_nets(&c);
        assert_eq!(nets.len(), 6);
        for n in nets {
            assert!(c.gate(n).is_some());
        }
    }
}
