//! Fault-analysis-based logic locking (FLL-style): key gates are placed on
//! the nets whose corruption disturbs the most output bits, estimated by
//! toggle-impact simulation. This is the selection philosophy behind
//! fault-analysis locking [Rajendran et al.] and the basis on which weighted
//! logic locking picks its insertion points.

use netlist::rng::SplitMix64;
use netlist::{Circuit, CompiledCircuit, Error, EvalScratch, NetId};

use crate::insert::{lockable_nets, splice_key_gate};
use crate::LockedCircuit;

/// Configuration for fault-impact locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FllConfig {
    /// Number of key bits (= key gates).
    pub key_bits: usize,
    /// Patterns used for the impact estimate (rounded up to 64).
    pub impact_patterns: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for FllConfig {
    fn default() -> Self {
        FllConfig {
            key_bits: 32,
            impact_patterns: 512,
            seed: 0xF11,
        }
    }
}

/// Estimates, for every net, how many output bits flip when the net is
/// inverted, over `patterns` pseudorandom input patterns. Returns one score
/// per net id.
///
/// Cost is `O(nets × candidates × patterns/64)`; for large circuits score
/// only a sample of candidates via [`toggle_impact_of`].
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn toggle_impact(circuit: &Circuit, patterns: usize, seed: u64) -> Result<Vec<u64>, Error> {
    let candidates: Vec<NetId> = circuit
        .net_ids()
        .filter(|&id| circuit.gate(id).is_some())
        .collect();
    let per_candidate = toggle_impact_of(circuit, &candidates, patterns, seed)?;
    let mut scores = vec![0u64; circuit.num_nets()];
    for (c, s) in candidates.iter().zip(per_candidate) {
        scores[c.index()] = s;
    }
    Ok(scores)
}

/// Like [`toggle_impact`] but scores only the given candidate nets,
/// returning scores aligned with `candidates`.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn toggle_impact_of(
    circuit: &Circuit,
    candidates: &[NetId],
    patterns: usize,
    seed: u64,
) -> Result<Vec<u64>, Error> {
    let cc = CompiledCircuit::compile(circuit)?;
    let mut rng = SplitMix64::new(seed);
    let words = patterns.div_ceil(64).max(1);
    let mut scores = vec![0u64; candidates.len()];
    let outputs = cc.outputs().to_vec();
    let mut scratch = EvalScratch::new(&cc);
    let mut base_out = vec![0u64; outputs.len()];
    for _ in 0..words {
        let input: Vec<u64> = (0..cc.inputs().len()).map(|_| rng.next_u64()).collect();
        scratch.eval_full(&cc, &input);
        for (b, &o) in base_out.iter_mut().zip(&outputs) {
            *b = scratch.value(o.index() as u32);
        }
        // For each candidate: force the inverted value onto the net, let the
        // incremental kernel re-evaluate just its cone, count flipped output
        // bits, then revert to the base state.
        for (ci, &id) in candidates.iter().enumerate() {
            let net = id.index() as u32;
            let inverted = !scratch.value(net);
            scratch.propagate(&cc, net, inverted);
            let mut flips = 0u64;
            for (&o, &b) in outputs.iter().zip(&base_out) {
                flips += (scratch.value(o.index() as u32) ^ b).count_ones() as u64;
            }
            scores[ci] += flips;
            scratch.revert();
        }
    }
    Ok(scores)
}

/// Per-candidate *output coverage*: which combinational outputs flip (on any
/// pattern) when the candidate net is inverted. Returned as one bitmask word
/// vector per candidate (bit `o` of word `o / 64` = output `o` disturbed).
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn output_coverage(
    circuit: &Circuit,
    candidates: &[NetId],
    patterns: usize,
    seed: u64,
) -> Result<Vec<Vec<u64>>, Error> {
    let cc = CompiledCircuit::compile(circuit)?;
    let mut rng = SplitMix64::new(seed);
    let words = patterns.div_ceil(64).max(1);
    let outputs = cc.outputs().to_vec();
    let mask_words = outputs.len().div_ceil(64);
    let mut coverage = vec![vec![0u64; mask_words]; candidates.len()];
    let mut scratch = EvalScratch::new(&cc);
    let mut base_out = vec![0u64; outputs.len()];
    for _ in 0..words {
        let input: Vec<u64> = (0..cc.inputs().len()).map(|_| rng.next_u64()).collect();
        scratch.eval_full(&cc, &input);
        for (b, &o) in base_out.iter_mut().zip(&outputs) {
            *b = scratch.value(o.index() as u32);
        }
        for (ci, &id) in candidates.iter().enumerate() {
            let net = id.index() as u32;
            let inverted = !scratch.value(net);
            scratch.propagate(&cc, net, inverted);
            for (oi, (&o, &b)) in outputs.iter().zip(&base_out).enumerate() {
                if scratch.value(o.index() as u32) != b {
                    coverage[ci][oi / 64] |= 1u64 << (oi % 64);
                }
            }
            scratch.revert();
        }
    }
    Ok(coverage)
}

/// Greedily selects `count` nets maximising the *union* of disturbed
/// outputs (ties broken by toggle impact, then net id) — the selection that
/// actually pushes the average Hamming distance towards 50%: key gates with
/// overlapping cones corrupt the same outputs and waste budget.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn coverage_ranked_nets(
    circuit: &Circuit,
    candidates: &[NetId],
    count: usize,
    patterns: usize,
    seed: u64,
) -> Result<Vec<NetId>, Error> {
    let coverage = output_coverage(circuit, candidates, patterns, seed)?;
    let impact = toggle_impact_of(circuit, candidates, patterns, seed ^ 0x9A)?;
    let mask_words = coverage.first().map(Vec::len).unwrap_or(0);
    let mut covered = vec![0u64; mask_words];
    let mut picked = Vec::with_capacity(count);
    let mut used = vec![false; candidates.len()];
    for _ in 0..count.min(candidates.len()) {
        let mut best: Option<(usize, u64, usize)> = None; // (new_outputs, impact, idx)
        for (ci, cov) in coverage.iter().enumerate() {
            if used[ci] {
                continue;
            }
            let new_outputs: usize = cov
                .iter()
                .zip(&covered)
                .map(|(c, k)| (c & !k).count_ones() as usize)
                .sum();
            let better = match best {
                None => true,
                Some((bn, bi, _)) => (new_outputs, impact[ci]) > (bn, bi),
            };
            if better {
                best = Some((new_outputs, impact[ci], ci));
            }
        }
        let (_, _, ci) = best.expect("candidates remain");
        used[ci] = true;
        for (k, c) in covered.iter_mut().zip(&coverage[ci]) {
            *k |= c;
        }
        picked.push(candidates[ci]);
    }
    Ok(picked)
}

/// Selects the `count` highest-impact lockable nets (ties broken by id).
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn top_impact_nets(
    circuit: &Circuit,
    count: usize,
    patterns: usize,
    seed: u64,
) -> Result<Vec<NetId>, Error> {
    let scores = toggle_impact(circuit, patterns, seed)?;
    let mut nets = lockable_nets(circuit);
    nets.sort_by_key(|n| (std::cmp::Reverse(scores[n.index()]), n.index()));
    nets.truncate(count);
    Ok(nets)
}

/// Locks `original` with key gates on its highest-impact nets.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if there are fewer lockable nets than key
/// bits, or propagates netlist errors.
pub fn lock(original: &Circuit, config: &FllConfig) -> Result<LockedCircuit, Error> {
    let nets = lockable_nets(original);
    if nets.len() < config.key_bits {
        return Err(Error::BadProfile(format!(
            "{} lockable nets < {} key bits",
            nets.len(),
            config.key_bits
        )));
    }
    let targets = top_impact_nets(original, config.key_bits, config.impact_patterns, config.seed)?;
    let mut rng = SplitMix64::new(config.seed ^ 0xF417);
    let mut circuit = original.clone();
    circuit.set_name(format!("{}_fll{}", original.name(), config.key_bits));
    let mut key_inputs = Vec::with_capacity(config.key_bits);
    let mut correct_key = Vec::with_capacity(config.key_bits);
    for (i, &net) in targets.iter().enumerate() {
        let k = circuit.add_input(format!("keyin{i}"));
        let bit = rng.bool();
        splice_key_gate(&mut circuit, net, k, bit, i)?;
        key_inputs.push(k);
        correct_key.push(bit);
    }
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "fll",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn impact_ranks_wide_cones_higher() {
        // In c17, net 11 feeds both outputs (via 16/19); inverting it should
        // disturb more output bits than inverting output-adjacent nets'
        // siblings with a single cone.
        let c = samples::c17();
        let scores = toggle_impact(&c, 512, 1).unwrap();
        let n11 = c.find("11").unwrap();
        let n10 = c.find("10").unwrap();
        assert!(
            scores[n11.index()] > scores[n10.index()],
            "11: {} vs 10: {}",
            scores[n11.index()],
            scores[n10.index()]
        );
    }

    #[test]
    fn lock_preserves_function() {
        let original = samples::ripple_adder(4);
        let locked = lock(
            &original,
            &FllConfig {
                key_bits: 6,
                impact_patterns: 128,
                seed: 1,
            },
        )
        .unwrap();
        assert!(locked.verify_against(&original, 512).unwrap());
    }

    #[test]
    fn fll_corrupts_more_than_rll_on_average() {
        // The point of fault-analysis insertion: higher HD than random
        // placement for the same key budget.
        let original = netlist::generate::random_comb(21, 10, 8, 200).unwrap();
        let fll = lock(
            &original,
            &FllConfig {
                key_bits: 8,
                impact_patterns: 256,
                seed: 4,
            },
        )
        .unwrap();
        let rll = crate::random::lock(
            &original,
            &crate::random::RllConfig {
                key_bits: 8,
                seed: 4,
            },
        )
        .unwrap();
        let hd_f = gatesim::hd::average_hd_random_keys(
            &fll.circuit,
            &fll.key_inputs,
            &fll.correct_key,
            8,
            512,
            9,
        )
        .unwrap();
        let hd_r = gatesim::hd::average_hd_random_keys(
            &rll.circuit,
            &rll.key_inputs,
            &rll.correct_key,
            8,
            512,
            9,
        )
        .unwrap();
        assert!(
            hd_f >= hd_r * 0.8,
            "fault-based HD {hd_f:.2}% unexpectedly far below random {hd_r:.2}%"
        );
    }

    #[test]
    fn top_impact_net_count() {
        let c = samples::c17();
        let nets = top_impact_nets(&c, 3, 128, 0).unwrap();
        assert_eq!(nets.len(), 3);
    }
}
