//! Weighted logic locking (WLL) — Karousos et al., IOLTS 2017, the paper's ref. \[26\] — the
//! high-output-corruptibility scheme the paper combines with OraP.
//!
//! Each XOR/XNOR key gate is preceded by a *control gate*: an AND (or NAND)
//! over `w` key inputs, with inverters so that only the correct sub-key
//! produces the pass-through value. Under a random wrong key the control
//! gate therefore *actuates* (flips the locked signal) with probability
//! `1 − 2^{−w}` instead of the plain key gate's `1/2`, which is what pushes
//! the output Hamming distance towards the optimal 50% in Table I.
//!
//! Insertion points are chosen fault-analysis style: the highest
//! toggle-impact nets (sampled for large circuits).

use netlist::rng::SplitMix64;
use netlist::{Circuit, Error, GateKind, NetId};


use crate::insert::{lockable_nets, splice_key_gate};
use crate::LockedCircuit;

/// Configuration of weighted logic locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WllConfig {
    /// Total key bits; the paper uses up to 256.
    pub key_bits: usize,
    /// Key inputs per control gate (the paper: 3, or 5 for b18/b19).
    pub control_width: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl WllConfig {
    /// Number of key gates this configuration inserts.
    pub fn num_key_gates(&self) -> usize {
        self.key_bits.div_ceil(self.control_width)
    }
}

/// Locks `original` with WLL, choosing insertion points by sampled
/// toggle-impact analysis.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the circuit has fewer lockable nets than
/// key gates, or if `control_width == 0` / `key_bits == 0`.
pub fn lock(original: &Circuit, config: &WllConfig) -> Result<LockedCircuit, Error> {
    let nets = lockable_nets(original);
    let gates_needed = config.num_key_gates();
    if nets.len() < gates_needed {
        return Err(Error::BadProfile(format!(
            "{} lockable nets < {} key gates",
            nets.len(),
            gates_needed
        )));
    }
    // Sample candidates to keep impact analysis tractable on large
    // circuits, then pick insertion points that maximise the union of
    // disturbed outputs (fault-analysis selection).
    let mut rng = SplitMix64::new(config.seed ^ 0x311);
    let sample = (gates_needed * 4).clamp(gates_needed, 1024).min(nets.len());
    let idxs = rng.sample_indices(nets.len(), sample);
    let candidates: Vec<NetId> = idxs.into_iter().map(|i| nets[i]).collect();
    let targets = crate::fault_based::coverage_ranked_nets(
        original,
        &candidates,
        gates_needed,
        128,
        config.seed ^ 0x1337,
    )?;
    lock_on_nets(original, config, &targets)
}

/// Locks `original` with WLL on explicit target nets (one key gate per
/// target).
///
/// # Errors
///
/// Returns [`Error::BadProfile`] on a zero-width configuration or a target
/// count mismatch, and propagates netlist errors.
pub fn lock_on_nets(
    original: &Circuit,
    config: &WllConfig,
    targets: &[NetId],
) -> Result<LockedCircuit, Error> {
    if config.key_bits == 0 || config.control_width == 0 {
        return Err(Error::BadProfile(
            "key_bits and control_width must be positive".into(),
        ));
    }
    if targets.len() != config.num_key_gates() {
        return Err(Error::BadProfile(format!(
            "{} targets != {} key gates",
            targets.len(),
            config.num_key_gates()
        )));
    }
    let mut rng = SplitMix64::new(config.seed);
    let mut circuit = original.clone();
    circuit.set_name(format!("{}_wll{}", original.name(), config.key_bits));
    let mut key_inputs = Vec::with_capacity(config.key_bits);
    let mut correct_key = Vec::with_capacity(config.key_bits);
    let mut remaining = config.key_bits;
    for (gi, &target) in targets.iter().enumerate() {
        let w = remaining.min(config.control_width);
        remaining -= w;
        // Fresh key inputs + their correct values.
        let mut literal_nets = Vec::with_capacity(w);
        for b in 0..w {
            let k = circuit.add_input(format!("keyin{}_{}", gi, b));
            let bit = rng.bool();
            key_inputs.push(k);
            correct_key.push(bit);
            // Literal is k when the correct bit is 1, !k when it is 0, so the
            // conjunction is 1 exactly under the correct sub-key.
            let lit = if bit {
                k
            } else {
                circuit.add_gate(GateKind::Not, vec![k], format!("kinv{}_{}", gi, b))?
            };
            literal_nets.push(lit);
        }
        // Control gate: AND → XNOR key gate, or NAND → XOR key gate.
        let use_nand = rng.bool();
        if w == 1 {
            // Degenerate control gate: the literal itself drives the key
            // gate (correct control value is 1).
            splice_key_gate(&mut circuit, target, literal_nets[0], true, gi)?;
        } else {
            let kind = if use_nand { GateKind::Nand } else { GateKind::And };
            let ctrl = circuit.add_gate(kind, literal_nets, format!("ctrl{gi}"))?;
            // AND control is 1 under the correct key (XNOR passes); NAND
            // control is 0 (XOR passes).
            splice_key_gate(&mut circuit, target, ctrl, !use_nand, gi)?;
        }
    }
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "wll",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn correct_key_preserves_function() {
        let original = samples::ripple_adder(6);
        let locked = lock(
            &original,
            &WllConfig {
                key_bits: 12,
                control_width: 3,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(locked.key_bits(), 12);
        assert!(locked.verify_against(&original, 1024).unwrap());
    }

    #[test]
    fn actuation_probability_beats_plain_xor() {
        // With w=3, a random wrong key actuates each key gate w.p. 7/8 vs
        // 1/2 for RLL, so WLL's average HD should be at least RLL's on the
        // same circuit with the same key budget.
        let original = netlist::generate::random_comb(31, 12, 10, 250).unwrap();
        let wll = lock(
            &original,
            &WllConfig {
                key_bits: 12,
                control_width: 3,
                seed: 5,
            },
        )
        .unwrap();
        let rll = crate::random::lock(
            &original,
            &crate::random::RllConfig {
                key_bits: 12,
                seed: 5,
            },
        )
        .unwrap();
        let hd_w = gatesim::hd::average_hd_random_keys(
            &wll.circuit,
            &wll.key_inputs,
            &wll.correct_key,
            12,
            1024,
            3,
        )
        .unwrap();
        let hd_r = gatesim::hd::average_hd_random_keys(
            &rll.circuit,
            &rll.key_inputs,
            &rll.correct_key,
            12,
            1024,
            3,
        )
        .unwrap();
        assert!(
            hd_w > hd_r,
            "weighted HD {hd_w:.2}% should exceed random HD {hd_r:.2}%"
        );
    }

    #[test]
    fn control_width_one_degenerates_to_rll_style() {
        let original = samples::ripple_adder(4);
        let locked = lock(
            &original,
            &WllConfig {
                key_bits: 4,
                control_width: 1,
                seed: 7,
            },
        )
        .unwrap();
        assert!(locked.verify_against(&original, 512).unwrap());
        assert_eq!(locked.key_bits(), 4);
    }

    #[test]
    fn uneven_key_bits_handled() {
        let original = samples::ripple_adder(6);
        let locked = lock(
            &original,
            &WllConfig {
                key_bits: 7,
                control_width: 3,
                seed: 9,
            },
        )
        .unwrap();
        // 3 + 3 + 1 bits over 3 key gates.
        assert_eq!(locked.key_bits(), 7);
        assert!(locked.verify_against(&original, 512).unwrap());
    }

    #[test]
    fn zero_config_rejected() {
        let original = samples::c17();
        assert!(lock(
            &original,
            &WllConfig {
                key_bits: 0,
                control_width: 3,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn every_subkey_bit_matters() {
        let original = samples::ripple_adder(8);
        let locked = lock(
            &original,
            &WllConfig {
                key_bits: 9,
                control_width: 3,
                seed: 11,
            },
        )
        .unwrap();
        for flip in 0..9 {
            let mut key = locked.correct_key.clone();
            key[flip] = !key[flip];
            let rep = gatesim::hd::hamming_between_keys(
                &locked.circuit,
                &locked.key_inputs,
                &locked.correct_key,
                &key,
                2048,
                13,
            )
            .unwrap();
            assert!(rep.flipped > 0, "key bit {flip} is dead");
        }
    }
}
