//! Point-function (SAT-resistant) locking baselines: SARLock and Anti-SAT.
//!
//! These schemes corrupt the output on (at most) one input pattern per wrong
//! key, forcing the SAT attack through exponentially many iterations — at
//! the price of near-zero output corruptibility. The paper cites exactly
//! this trade-off as the reason OraP + a high-corruption scheme is
//! preferable once the oracle is protected; these implementations provide
//! the comparison points for the attack-resistance experiment (E3).

use netlist::{Circuit, Error, Gate, GateKind, NetId};

use crate::LockedCircuit;

/// Builds an AND tree over `nets` (returns the single net if one).
fn and_tree(c: &mut Circuit, nets: &[NetId], tag: &str) -> Result<NetId, Error> {
    assert!(!nets.is_empty(), "AND tree needs at least one input");
    if nets.len() == 1 {
        return Ok(nets[0]);
    }
    c.add_gate(GateKind::And, nets.to_vec(), tag)
}

/// Builds an OR tree over `nets`.
fn or_tree(c: &mut Circuit, nets: &[NetId], tag: &str) -> Result<NetId, Error> {
    assert!(!nets.is_empty(), "OR tree needs at least one input");
    if nets.len() == 1 {
        return Ok(nets[0]);
    }
    c.add_gate(GateKind::Or, nets.to_vec(), tag)
}

/// SARLock configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SarLockConfig {
    /// Key bits; equals the number of protected input bits.
    pub key_bits: usize,
    /// PRNG seed (selects the correct key).
    pub seed: u64,
}

/// Locks `original` with a SARLock comparator on its first primary output.
///
/// The flip signal is `AND_i(x_i XNOR k_i) AND (k != k*)`: a wrong key `k`
/// corrupts the output only on the single input pattern `x == k`, so each
/// SAT-attack iteration eliminates exactly one key — the scheme's defining
/// property (and the source of its ~2^-n corruptibility).
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the circuit has fewer data inputs than
/// `key_bits` or no primary output.
pub fn sarlock(original: &Circuit, config: &SarLockConfig) -> Result<LockedCircuit, Error> {
    let data_inputs = original.comb_inputs();
    if data_inputs.len() < config.key_bits {
        return Err(Error::BadProfile(format!(
            "{} inputs < {} key bits",
            data_inputs.len(),
            config.key_bits
        )));
    }
    let Some(&target) = original.comb_outputs().first() else {
        return Err(Error::BadProfile("circuit has no outputs".into()));
    };
    let mut rng = netlist::rng::SplitMix64::new(config.seed);
    let mut circuit = original.clone();
    circuit.set_name(format!("{}_sarlock{}", original.name(), config.key_bits));
    let correct_key: Vec<bool> = (0..config.key_bits).map(|_| rng.bool()).collect();

    let mut key_inputs = Vec::with_capacity(config.key_bits);
    let mut cmp_bits = Vec::with_capacity(config.key_bits);
    let mut wrong_bits = Vec::with_capacity(config.key_bits);
    for i in 0..config.key_bits {
        let k = circuit.add_input(format!("keyin{i}"));
        key_inputs.push(k);
        // x_i XNOR k_i
        let x = data_inputs[i];
        let eq = circuit.add_gate(GateKind::Xnor, vec![x, k], format!("sareq{i}"))?;
        cmp_bits.push(eq);
        // k_i differs from the correct bit?
        let diff = if correct_key[i] {
            circuit.add_gate(GateKind::Not, vec![k], format!("sardiff{i}"))?
        } else {
            circuit.add_gate(GateKind::Buf, vec![k], format!("sardiff{i}"))?
        };
        wrong_bits.push(diff);
    }
    let x_eq_k = and_tree(&mut circuit, &cmp_bits, "sar_xeqk")?;
    let k_wrong = or_tree(&mut circuit, &wrong_bits, "sar_kwrong")?;
    let flip = circuit.add_gate(GateKind::And, vec![x_eq_k, k_wrong], "sar_flip")?;
    // Splice the flip into the target output.
    let moved = circuit.split_net(target, "sar_pre")?;
    circuit.set_driver(target, Gate::new(GateKind::Xor, vec![moved, flip])?)?;
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "sarlock",
    })
}

/// Anti-SAT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntiSatConfig {
    /// Input width `n` of the Anti-SAT block; total key bits = `2n`.
    pub block_width: usize,
    /// PRNG seed.
    pub seed: u64,
}

/// Locks `original` with an Anti-SAT block on its first primary output.
///
/// The block computes `g(X ⊕ KA) AND !g(X ⊕ KB)` with `g = AND`: for the
/// correct key (`KA = KB = K*`) the two halves cancel and the output is
/// untouched; a wrong key raises the flip signal on a tiny input subspace,
/// again yielding SAT resistance at negligible corruptibility.
///
/// # Errors
///
/// Returns [`Error::BadProfile`] if the circuit has fewer data inputs than
/// `block_width` or no primary output.
pub fn anti_sat(original: &Circuit, config: &AntiSatConfig) -> Result<LockedCircuit, Error> {
    let n = config.block_width;
    let data_inputs = original.comb_inputs();
    if data_inputs.len() < n {
        return Err(Error::BadProfile(format!(
            "{} inputs < {} block width",
            data_inputs.len(),
            n
        )));
    }
    let Some(&target) = original.comb_outputs().first() else {
        return Err(Error::BadProfile("circuit has no outputs".into()));
    };
    let mut rng = netlist::rng::SplitMix64::new(config.seed);
    let mut circuit = original.clone();
    circuit.set_name(format!("{}_antisat{}", original.name(), 2 * n));
    // Correct key: KA = KB = random value (any shared value unlocks).
    let shared: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
    let mut correct_key = shared.clone();
    correct_key.extend(shared.iter().copied());

    let mut key_inputs = Vec::with_capacity(2 * n);
    let mut ga_bits = Vec::with_capacity(n);
    let mut gb_bits = Vec::with_capacity(n);
    for half in 0..2 {
        for (i, &x) in data_inputs.iter().enumerate().take(n) {
            let k = circuit.add_input(format!("keyin{}_{i}", ["a", "b"][half]));
            key_inputs.push(k);
            let xo = circuit.add_gate(
                GateKind::Xor,
                vec![x, k],
                format!("as_x{}_{i}", ["a", "b"][half]),
            )?;
            if half == 0 {
                ga_bits.push(xo);
            } else {
                gb_bits.push(xo);
            }
        }
    }
    let g_a = and_tree(&mut circuit, &ga_bits, "as_ga")?;
    let g_b = and_tree(&mut circuit, &gb_bits, "as_gb")?;
    let not_gb = circuit.add_gate(GateKind::Not, vec![g_b], "as_ngb")?;
    let flip = circuit.add_gate(GateKind::And, vec![g_a, not_gb], "as_flip")?;
    let moved = circuit.split_net(target, "as_pre")?;
    circuit.set_driver(target, Gate::new(GateKind::Xor, vec![moved, flip])?)?;
    circuit.validate()?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "antisat",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn sarlock_correct_key_preserves_function() {
        let original = samples::ripple_adder(4);
        let locked = sarlock(&original, &SarLockConfig { key_bits: 6, seed: 2 }).unwrap();
        assert!(locked.verify_against(&original, 2048).unwrap());
    }

    #[test]
    fn sarlock_wrong_key_flips_exactly_one_pattern() {
        let original = samples::ripple_adder(3); // 6 data inputs
        let locked = sarlock(&original, &SarLockConfig { key_bits: 6, seed: 4 }).unwrap();
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        // Exhaustively count corrupted input patterns.
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let orig = gatesim::CombSim::new(&original).unwrap();
        let mut corrupted = 0;
        for m in 0..64u32 {
            let data: Vec<bool> = (0..6).map(|k| (m >> k) & 1 == 1).collect();
            let mut input = data.clone();
            input.extend(wrong.iter().copied());
            if sim.eval_bools(&input) != orig.eval_bools(&data) {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 1, "SARLock corrupts exactly one pattern");
    }

    #[test]
    fn sarlock_corruptibility_is_tiny() {
        let original = samples::ripple_adder(4);
        let locked = sarlock(&original, &SarLockConfig { key_bits: 8, seed: 3 }).unwrap();
        let hd = gatesim::hd::average_hd_random_keys(
            &locked.circuit,
            &locked.key_inputs,
            &locked.correct_key,
            10,
            4096,
            5,
        )
        .unwrap();
        assert!(hd < 1.0, "SARLock HD should be near zero, got {hd:.3}%");
    }

    #[test]
    fn antisat_correct_key_preserves_function() {
        let original = samples::ripple_adder(4);
        let locked = anti_sat(&original, &AntiSatConfig { block_width: 5, seed: 2 }).unwrap();
        assert_eq!(locked.key_bits(), 10);
        assert!(locked.verify_against(&original, 2048).unwrap());
    }

    #[test]
    fn antisat_any_shared_key_unlocks() {
        // The Anti-SAT property: KA == KB (any value) makes the flip signal
        // identically zero.
        let original = samples::ripple_adder(3);
        let locked = anti_sat(&original, &AntiSatConfig { block_width: 4, seed: 7 }).unwrap();
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let orig = gatesim::CombSim::new(&original).unwrap();
        let mut rng = netlist::rng::SplitMix64::new(1);
        for _ in 0..8 {
            let alt: Vec<bool> = (0..4).map(|_| rng.bool()).collect();
            let mut key = alt.clone();
            key.extend(alt.iter().copied());
            for m in 0..64u32 {
                let data: Vec<bool> = (0..6).map(|k| (m >> k) & 1 == 1).collect();
                let mut input = data.clone();
                input.extend(key.iter().copied());
                assert_eq!(sim.eval_bools(&input), orig.eval_bools(&data));
            }
        }
    }

    #[test]
    fn antisat_wrong_key_corrupts_somewhere() {
        let original = samples::ripple_adder(3);
        let locked = anti_sat(&original, &AntiSatConfig { block_width: 4, seed: 7 }).unwrap();
        // KA != KB: flip signal fires on some input.
        let mut key = locked.correct_key.clone();
        key[0] = !key[0]; // KA changes, KB stays
        let sim = gatesim::CombSim::new(&locked.circuit).unwrap();
        let orig = gatesim::CombSim::new(&original).unwrap();
        let mut corrupted = 0;
        for m in 0..64u32 {
            let data: Vec<bool> = (0..6).map(|k| (m >> k) & 1 == 1).collect();
            let mut input = data.clone();
            input.extend(key.iter().copied());
            if sim.eval_bools(&input) != orig.eval_bools(&data) {
                corrupted += 1;
            }
        }
        assert!(corrupted >= 1);
        assert!(corrupted <= 4, "Anti-SAT corrupts a tiny subspace");
    }

    #[test]
    fn bad_configs_rejected() {
        let c = samples::c17(); // 5 inputs
        assert!(sarlock(&c, &SarLockConfig { key_bits: 9, seed: 0 }).is_err());
        assert!(anti_sat(&c, &AntiSatConfig { block_width: 9, seed: 0 }).is_err());
    }
}
