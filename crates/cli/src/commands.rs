//! Command implementations.

use locking::LockedCircuit;
use netlist::NetId;

use crate::keyfmt;
use crate::netio::{
    flag_bool, flag_num, flag_value, input_path, read_netlist, write_netlist, CliError,
};

pub fn stats(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    print!("{}", netlist::CircuitStats::of(&circuit));
    Ok(())
}

pub fn optimize(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let before = aigsynth::Aig::from_circuit(&circuit)?;
    let report = aigsynth::optimize(&circuit)?;
    println!(
        "area : {} AND nodes -> {} after strash/balance/rewrite",
        before.num_ands(),
        report.area
    );
    println!("depth: {} levels -> {}", before.depth(), report.depth);
    Ok(())
}

pub fn atpg(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let cfg = atpg::AtpgConfig {
        random_patterns: flag_num(args, "--patterns", 2048)?,
        backtrack_limit: flag_num(args, "--backtrack", 1000)?,
        seed: flag_num(args, "--seed", 0xA7)? as u64,
    };
    let rep = atpg::run_atpg(&circuit, &cfg)?;
    println!(
        "fault coverage : {:.2}% ({} / {} faults)",
        rep.coverage_percent(),
        rep.detected,
        rep.total_faults
    );
    println!("redundant      : {}", rep.redundant);
    println!("aborted        : {}", rep.aborted);
    println!("tests generated: {}", rep.tests.len());
    Ok(())
}

pub fn convert(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let out = flag_value(args, "-o").ok_or("convert needs -o <out>")?;
    write_netlist(out, &circuit)?;
    println!("wrote {out}");
    Ok(())
}

pub fn lock(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let out = flag_value(args, "-o").ok_or("lock needs -o <out>")?;
    let key_bits = flag_num(args, "--key-bits", 32)?;
    let seed = flag_num(args, "--seed", 1)? as u64;
    let scheme = flag_value(args, "--scheme").unwrap_or("wll");
    let locked: LockedCircuit = match scheme {
        "rll" => locking::random::lock(&circuit, &locking::random::RllConfig { key_bits, seed })?,
        "fll" => locking::fault_based::lock(
            &circuit,
            &locking::fault_based::FllConfig {
                key_bits,
                impact_patterns: 256,
                seed,
            },
        )?,
        "wll" => locking::weighted::lock(
            &circuit,
            &locking::weighted::WllConfig {
                key_bits,
                control_width: flag_num(args, "--control-width", 3)?,
                seed,
            },
        )?,
        "sarlock" => locking::point_function::sarlock(
            &circuit,
            &locking::point_function::SarLockConfig { key_bits, seed },
        )?,
        "antisat" => locking::point_function::anti_sat(
            &circuit,
            &locking::point_function::AntiSatConfig {
                block_width: key_bits / 2,
                seed,
            },
        )?,
        "sfll" => locking::sfll::sfll_hd(
            &circuit,
            &locking::sfll::SfllConfig {
                key_bits,
                hamming_distance: flag_num(args, "--hd", 1)?,
                seed,
            },
        )?,
        "kgate" => {
            let classes = flag_num(args, "--classes", 4)?;
            if classes == 0 || key_bits % classes != 0 {
                return Err(format!(
                    "kgate needs --key-bits divisible by --classes (got {key_bits}/{classes})"
                )
                .into());
            }
            locking::kgate::lock(
                &circuit,
                &locking::kgate::KGateConfig {
                    classes,
                    word_bits: key_bits / classes,
                    seed,
                },
            )?
        }
        "scan-obf" => {
            // Dynamic scan obfuscation is sequential; the file artifact is
            // the unrolled bounded session (key inputs = the LFSR seed), so
            // the `attack` subcommand can drive it like any other lock.
            let sol = locking::scan_obfuscation::lock(
                &circuit,
                &locking::scan_obfuscation::ScanObfConfig::balanced(key_bits, seed),
            )?;
            let unrolled = sol.unroll(&locking::scan_obfuscation::UnrollOptions::default())?;
            println!(
                "session : {} frames ({} load + capture + {} unload)",
                unrolled.unroll_depth(),
                unrolled.load_cycles,
                unrolled.unload_cycles
            );
            unrolled.locked
        }
        other => return Err(format!("unknown scheme `{other}`").into()),
    };
    write_netlist(out, &locked.circuit)?;
    println!("scheme  : {}", locked.scheme);
    println!("key bits: {}", locked.key_bits());
    println!("key     : {}", keyfmt::to_hex(&locked.correct_key));
    println!("wrote {out}");
    Ok(())
}

pub fn protect(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let out = flag_value(args, "-o").ok_or("protect needs -o <out>")?;
    let wll = locking::weighted::WllConfig {
        key_bits: flag_num(args, "--key-bits", 32)?,
        control_width: flag_num(args, "--control-width", 3)?,
        seed: flag_num(args, "--seed", 1)? as u64,
    };
    let cfg = orap::OrapConfig {
        variant: if flag_bool(args, "--modified") {
            orap::OrapVariant::Modified
        } else {
            orap::OrapVariant::Basic
        },
        ..orap::OrapConfig::default()
    };
    let protected = orap::protect(&circuit, &wll, &cfg)?;
    write_netlist(out, &protected.locked.circuit)?;
    println!("variant        : {:?}", protected.variant);
    println!("key bits (LFSR): {}", protected.key_bits());
    println!("correct key    : {}", keyfmt::to_hex(&protected.locked.correct_key));
    println!("unlock cycles  : {}", protected.unlock_cycles());
    println!("OraP gates     : {}", protected.hardware.gates());
    println!("key sequence (memory words, hex per cycle):");
    for (i, word) in protected.key_sequence.iter().enumerate() {
        println!("  cycle {i:3}: {}", keyfmt::to_hex(word));
    }
    println!("wrote {out}");
    Ok(())
}

/// Rebuilds a LockedCircuit view from a locked netlist file: key inputs are
/// recognised by their name prefix — `keyin*` (the convention of the
/// combinational schemes), `kg_key*` (K-Gate key words) or `scan_key*`
/// (the LFSR seed of an unrolled scan-obfuscation session).
fn reconstruct_locked(circuit: netlist::Circuit, key_hex: &str) -> Result<LockedCircuit, CliError> {
    const KEY_PREFIXES: [&str; 3] = ["keyin", "kg_key", "scan_key"];
    let key_inputs: Vec<NetId> = circuit
        .primary_inputs()
        .iter()
        .copied()
        .filter(|&n| {
            let name = circuit.net(n).name();
            KEY_PREFIXES.iter().any(|p| name.starts_with(p))
        })
        .collect();
    if key_inputs.is_empty() {
        return Err(
            "no `keyin*`/`kg_key*`/`scan_key*` inputs found — is this a locked netlist?".into(),
        );
    }
    let correct_key = keyfmt::from_hex(key_hex, key_inputs.len())?;
    Ok(LockedCircuit {
        circuit,
        key_inputs,
        correct_key,
        scheme: "file",
    })
}

pub fn attack(args: &[String]) -> Result<(), CliError> {
    let circuit = read_netlist(input_path(args)?)?;
    let key_hex = flag_value(args, "--key").ok_or(
        "attack needs --key <hex> (builds the oracle from the activated chip)",
    )?;
    let locked = reconstruct_locked(circuit, key_hex)?;
    let which = flag_value(args, "--attack").unwrap_or("sat");
    let outcome = match which {
        "sps" => {
            let out = attacks::sps::attack(&locked, &attacks::sps::SpsConfig::default())?;
            match out.recovered {
                Some(rec) => {
                    let ok = attacks::sps::recovery_is_correct(&locked, &rec, 4096)?;
                    println!(
                        "SPS: removed net with skew {:.3}; recovery correct: {ok}",
                        out.skew
                    );
                }
                None => println!("SPS: no sufficiently skewed candidate — attack failed"),
            }
            return Ok(());
        }
        name => {
            let mut oracle = attacks::CombOracle::from_locked(&locked)?;
            match name {
                "sat" => attacks::sat::attack(
                    &locked,
                    &mut oracle,
                    &attacks::sat::SatAttackConfig::default(),
                ),
                "appsat" => attacks::appsat::attack(
                    &locked,
                    &mut oracle,
                    &attacks::appsat::AppSatConfig::default(),
                ),
                "double-dip" => attacks::double_dip::attack(
                    &locked,
                    &mut oracle,
                    &attacks::double_dip::DoubleDipConfig::default(),
                ),
                "hill-climb" => attacks::hill_climbing::attack(
                    &locked,
                    &mut oracle,
                    &attacks::hill_climbing::HillClimbConfig::default(),
                ),
                "sensitize" => {
                    attacks::sensitization::attack(
                        &locked,
                        &mut oracle,
                        &attacks::sensitization::SensitizationConfig::default(),
                    )
                    .outcome
                }
                // Against a netlist file the unrolled session is just a
                // combinational lock, so the activated-chip oracle stands in
                // for the scan interface.
                "dyn-unlock" => attacks::dyn_unlock::attack(
                    &locked,
                    &mut oracle,
                    &attacks::dyn_unlock::DynUnlockConfig::default(),
                ),
                other => return Err(format!("unknown attack `{other}`").into()),
            }
        }
    };
    match &outcome.key {
        Some(key) => {
            let ok = attacks::key_is_functionally_correct(&locked, key, 4096)?;
            println!(
                "key recovered in {} iterations ({} oracle queries): {}",
                outcome.iterations,
                outcome.oracle_queries,
                keyfmt::to_hex(key)
            );
            println!("functionally correct: {ok}");
        }
        None => println!(
            "attack failed after {} iterations: {}",
            outcome.iterations,
            outcome
                .failure
                .map(|f| f.to_string())
                .unwrap_or_else(|| "unknown".into())
        ),
    }
    Ok(())
}
