//! Netlist file I/O with format detection by extension.

use std::path::Path;

use netlist::Circuit;

pub type CliError = Box<dyn std::error::Error>;

/// Reads a netlist, picking the parser from the file extension
/// (`.bench` or `.v`).
pub fn read_netlist(path: &str) -> Result<Circuit, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    let circuit = match ext {
        "bench" => netlist::bench::parse_named(&text, name)?,
        "v" | "verilog" => netlist::verilog::parse(&text)?,
        other => return Err(format!("unsupported netlist extension `.{other}`").into()),
    };
    Ok(circuit)
}

/// Writes a netlist in the format implied by the output extension.
pub fn write_netlist(path: &str, circuit: &Circuit) -> Result<(), CliError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let text = match ext {
        "bench" => netlist::bench::write(circuit),
        "v" | "verilog" => netlist::verilog::write(circuit),
        other => return Err(format!("unsupported output extension `.{other}`").into()),
    };
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    Ok(())
}

/// Fetches the value following a `--flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a numeric `--flag N` with a default.
pub fn flag_num(args: &[String], flag: &str, default: usize) -> Result<usize, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{v}`").into()),
    }
}

/// Whether a bare `--flag` is present.
pub fn flag_bool(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The first non-flag argument (the input path).
pub fn input_path(args: &[String]) -> Result<&str, CliError> {
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            // All our value flags take exactly one operand.
            skip_next = !matches!(a.as_str(), "--modified");
            let _ = i;
            continue;
        }
        return Ok(a);
    }
    Err("missing input netlist path".into())
}
