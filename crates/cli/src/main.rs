//! `orap` — command-line front end to the OraP workspace.
//!
//! ```text
//! orap stats    <netlist>                      circuit statistics
//! orap optimize <netlist>                      area/delay before and after synthesis
//! orap atpg     <netlist>                      stuck-at ATPG report
//! orap lock     <netlist> -o <out> [options]   lock with a chosen scheme
//! orap protect  <netlist> -o <out> [options]   OraP-protect (WLL + key register)
//! orap attack   <locked> --key <hex> [options] run an oracle-guided attack
//! orap convert  <netlist> -o <out>             convert between .bench and .v
//! ```
//!
//! Netlist format is chosen by extension: `.bench` (ISCAS-89) or `.v`
//! (structural Verilog). Keys print and parse as hex, bit 0 first.

#![warn(missing_docs)]

use std::process::ExitCode;

mod commands;
mod keyfmt;
mod netio;

fn usage() -> &'static str {
    "orap — oracle-protection logic locking toolkit

USAGE:
    orap <command> [args]

COMMANDS:
    stats    <netlist>                        print circuit statistics
    optimize <netlist>                        area/delay before vs after synthesis
    atpg     <netlist> [--patterns N] [--backtrack N]
                                              stuck-at fault coverage report
    lock     <netlist> -o <out> [--scheme rll|fll|wll|sarlock|antisat|sfll|kgate|scan-obf]
             [--key-bits N] [--control-width N] [--classes N] [--seed N]
                                              lock a netlist; prints the key (hex)
                                              (scan-obf writes the unrolled session)
    protect  <netlist> -o <out> [--key-bits N] [--control-width N]
             [--modified] [--seed N]          OraP-protect; prints the key sequence
    attack   <locked> --key <hex> [--attack sat|appsat|double-dip|hill-climb|sensitize|dyn-unlock|sps]
             [--key-bits N]                   attack a locked netlist (oracle = correct key)
    convert  <netlist> -o <out>               convert .bench <-> .v

Formats by extension: .bench, .v
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "stats" => commands::stats(rest),
        "optimize" => commands::optimize(rest),
        "atpg" => commands::atpg(rest),
        "lock" => commands::lock(rest),
        "protect" => commands::protect(rest),
        "attack" => commands::attack(rest),
        "convert" => commands::convert(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `orap help`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
