//! Key parsing/printing: hex strings, bit 0 = least-significant bit of the
//! first hex digit pair.

/// Formats a key as hex (bit 0 first).
pub fn to_hex(bits: &[bool]) -> String {
    let mut s = String::with_capacity(bits.len().div_ceil(4));
    for chunk in bits.chunks(4) {
        let mut v = 0u8;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                v |= 1 << i;
            }
        }
        s.push(char::from_digit(v as u32, 16).expect("nibble"));
    }
    s
}

/// Parses a hex key into `width` bits.
pub fn from_hex(hex: &str, width: usize) -> Result<Vec<bool>, String> {
    let mut bits = Vec::with_capacity(width);
    for c in hex.trim().chars() {
        let v = c
            .to_digit(16)
            .ok_or_else(|| format!("invalid hex digit `{c}`"))? as u8;
        for i in 0..4 {
            bits.push((v >> i) & 1 == 1);
        }
    }
    if bits.len() < width {
        return Err(format!(
            "key `{hex}` has {} bits, need {width}",
            bits.len()
        ));
    }
    bits.truncate(width);
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bits = vec![true, false, true, true, false, false, true, false, true];
        let hex = to_hex(&bits);
        let back = from_hex(&hex, bits.len()).unwrap();
        assert_eq!(back, bits);
    }

    #[test]
    fn known_encoding() {
        // bits 1,0,1,1 -> nibble 0b1101 = 0xd
        assert_eq!(to_hex(&[true, false, true, true]), "d");
        assert_eq!(from_hex("d", 4).unwrap(), vec![true, false, true, true]);
    }

    #[test]
    fn rejects_garbage_and_short_keys() {
        assert!(from_hex("xyz", 4).is_err());
        assert!(from_hex("f", 8).is_err());
    }
}
