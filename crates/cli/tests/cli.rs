//! End-to-end CLI tests driving the real `orap` binary.

use std::path::PathBuf;
use std::process::Command;

fn orap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orap"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("orap_cli_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn write_c17() -> PathBuf {
    let path = tmp("c17.bench");
    std::fs::write(&path, netlist::bench::write(&netlist::samples::c17()))
        .expect("write sample");
    path
}

#[test]
fn stats_prints_counts() {
    let input = write_c17();
    let out = orap().arg("stats").arg(&input).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5 PI"), "{text}");
    assert!(text.contains("6 gates"), "{text}");
}

#[test]
fn lock_then_attack_recovers_key() {
    let input = write_c17();
    let locked = tmp("c17_locked.bench");
    let out = orap()
        .args(["lock"])
        .arg(&input)
        .args(["-o"])
        .arg(&locked)
        .args(["--scheme", "rll", "--key-bits", "4", "--seed", "9"])
        .output()
        .expect("run lock");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let key = text
        .lines()
        .find_map(|l| l.strip_prefix("key     : "))
        .expect("key line")
        .trim()
        .to_owned();

    let out = orap()
        .arg("attack")
        .arg(&locked)
        .args(["--key", &key, "--attack", "sat"])
        .output()
        .expect("run attack");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("functionally correct: true"),
        "attack output: {text}"
    );
}

#[test]
fn convert_bench_to_verilog_and_back() {
    let input = write_c17();
    let v = tmp("c17.v");
    let back = tmp("c17_back.bench");
    assert!(orap().arg("convert").arg(&input).arg("-o").arg(&v).status().expect("run").success());
    assert!(orap().arg("convert").arg(&v).arg("-o").arg(&back).status().expect("run").success());
    let text = std::fs::read_to_string(&back).expect("read");
    let c = netlist::bench::parse(&text).expect("parse");
    assert_eq!(c.num_gates(), 6);
}

#[test]
fn protect_reports_key_sequence() {
    let input = write_c17();
    let out_path = tmp("c17_orap.bench");
    let out = orap()
        .arg("protect")
        .arg(&input)
        .arg("-o")
        .arg(&out_path)
        .args(["--key-bits", "6"])
        .output()
        .expect("run protect");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("unlock cycles"), "{text}");
    assert!(text.contains("cycle   0:"), "{text}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = orap().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
