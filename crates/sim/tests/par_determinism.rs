//! Thread-count determinism: the pattern-parallel hot paths must produce
//! byte-identical results on 1, 2 and 8 threads (the `exec` determinism
//! contract, exercised through real workloads).

use gatesim::{hd, CombSim};
use netlist::rng::SplitMix64;
use netlist::{Circuit, NetId};

/// A random circuit with its last `key_bits` inputs designated as key nets
/// (any comb-input subset works for the HD measurement — no locking-crate
/// dependency needed, which would be a dev-dep cycle).
fn keyed_circuit(key_bits: usize) -> (Circuit, Vec<NetId>, Vec<bool>) {
    let c = netlist::generate::random_comb(42, 16, 6, 250).unwrap();
    let inputs = c.comb_inputs();
    let key_nets: Vec<NetId> = inputs[inputs.len() - key_bits..].to_vec();
    let mut rng = SplitMix64::new(1234);
    let correct: Vec<bool> = (0..key_bits).map(|_| rng.bool()).collect();
    (c, key_nets, correct)
}

#[test]
fn average_hd_random_keys_identical_for_1_2_8_threads() {
    let (c, key_nets, correct) = keyed_circuit(6);
    let reference =
        hd::average_hd_random_keys_on(&exec::Pool::with_threads(1), &c, &key_nets, &correct, 12, 512, 77)
            .unwrap();
    assert!(reference > 0.0, "random logic must show some corruption");
    for threads in [2, 8] {
        let pool = exec::Pool::with_threads(threads);
        let avg =
            hd::average_hd_random_keys_on(&pool, &c, &key_nets, &correct, 12, 512, 77).unwrap();
        assert_eq!(
            avg.to_bits(),
            reference.to_bits(),
            "HD average diverged on {threads} threads"
        );
    }
}

#[test]
fn pool_entry_point_matches_global_entry_point() {
    let (c, key_nets, correct) = keyed_circuit(6);
    let via_global = hd::average_hd_random_keys(&c, &key_nets, &correct, 5, 256, 3).unwrap();
    let via_pool = hd::average_hd_random_keys_on(
        &exec::Pool::with_threads(3),
        &c,
        &key_nets,
        &correct,
        5,
        256,
        3,
    )
    .unwrap();
    assert_eq!(via_global.to_bits(), via_pool.to_bits());
}

#[test]
fn eval_words_many_identical_for_1_2_8_threads() {
    let c = netlist::generate::random_comb(5, 12, 8, 300).unwrap();
    let sim = CombSim::new(&c).unwrap();
    let mut rng = SplitMix64::new(11);
    let batches: Vec<Vec<u64>> = (0..37)
        .map(|_| (0..sim.inputs().len()).map(|_| rng.next_u64()).collect())
        .collect();
    let sequential: Vec<Vec<u64>> = batches.iter().map(|b| sim.eval_words(b)).collect();
    for threads in [1, 2, 8] {
        let pool = exec::Pool::with_threads(threads);
        let par = sim.eval_words_many(&pool, &batches);
        assert_eq!(par, sequential, "{threads} threads");
    }
}
