//! Property tests for the compiled-netlist engine: both evaluation kernels
//! (the 64-lane full sweep and the event-driven incremental kernel) must
//! agree with a naive per-gate [`netlist::GateKind::eval`] interpreter on
//! random circuits, and the pool-parallel batch entry point must be
//! thread-count invariant.

use gatesim::CombSim;
use netlist::rng::SplitMix64;
use netlist::{Circuit, CompiledCircuit, EvalScratch, Levelization};

/// Reference model: evaluates every net one gate at a time with the public
/// scalar `GateKind::eval`, lane by lane, in topological order. Deliberately
/// shares no code with the engine's word-parallel kernels.
fn naive_eval(c: &Circuit, input_words: &[u64]) -> Vec<u64> {
    let lv = Levelization::build(c).expect("generated circuits are acyclic");
    let inputs = c.comb_inputs();
    let mut values = vec![0u64; c.num_nets()];
    for (&n, &w) in inputs.iter().zip(input_words) {
        values[n.index()] = w;
    }
    for &id in lv.order() {
        let Some(g) = c.gate(id) else { continue };
        let mut word = 0u64;
        for lane in 0..64 {
            let fan: Vec<bool> = g
                .fanin
                .iter()
                .map(|f| (values[f.index()] >> lane) & 1 == 1)
                .collect();
            if g.kind.eval(fan) {
                word |= 1u64 << lane;
            }
        }
        values[id.index()] = word;
    }
    values
}

qcheck::props! {
    config = qcheck::Config::with_cases(24);

    /// Full-sweep and incremental kernels both match the naive interpreter
    /// on every net after every input change, and `eval_words_many` returns
    /// identical batches on 1 and 8 worker threads.
    fn engine_kernels_agree_with_naive_interpreter(
        seed in 0u64..(1 << 48),
        n_in in 2usize..11,
        n_out in 1usize..5,
        n_gates in 10usize..120,
        flips in qcheck::vec_of((qcheck::any_u64(), qcheck::any_u64()), 1..20),
    ) {
        let c = netlist::generate::random_comb(seed, n_in, n_out, n_gates)
            .expect("generator profile is valid");
        let cc = CompiledCircuit::compile(&c).expect("generated circuits are acyclic");
        let mut rng = SplitMix64::new(seed ^ 0xD1CE);
        let mut words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();

        // Full sweep vs naive, on every net (not just outputs).
        let mut scratch = EvalScratch::new(&cc);
        scratch.eval_full(&cc, &words);
        let mut expect = naive_eval(&c, &words);
        for (net, &want) in expect.iter().enumerate() {
            qcheck::prop_assert_eq!(scratch.value(net as u32), want);
        }

        // Incremental kernel: force one input word at a time and compare
        // the propagated state against a from-scratch naive evaluation.
        for &(pick, w) in &flips {
            let i = (pick % n_in as u64) as usize;
            words[i] = w;
            scratch.propagate(&cc, cc.inputs()[i].index() as u32, w);
            scratch.commit();
            expect = naive_eval(&c, &words);
            for (net, &want) in expect.iter().enumerate() {
                qcheck::prop_assert!(
                    scratch.value(net as u32) == want,
                    "net {} after forcing input {}",
                    net,
                    i
                );
            }
        }

        // Pool-parallel batch evaluation: identical across worker counts
        // and equal to the naive outputs.
        let sim = CombSim::from_compiled(std::sync::Arc::new(cc));
        let batches = vec![words.clone()];
        let want: Vec<u64> = c.comb_outputs().iter().map(|o| expect[o.index()]).collect();
        for threads in [1usize, 8] {
            let pool = exec::Pool::with_threads(threads);
            let got = sim.eval_words_many(&pool, &batches);
            qcheck::prop_assert!(got[0] == want, "diverged on {} threads", threads);
        }
    }
}

qcheck::props! {
    config = qcheck::Config::with_cases(2);

    /// The large-circuit tier (≥50k gates): the streaming compile path must
    /// produce an artifact semantically identical to compiling the
    /// [`netlist::Circuit`] path at scale — same interface, same depth,
    /// same full-sweep values on every net — and the incremental kernel
    /// must track fresh full sweeps through a walk of input changes.
    fn large_streamed_engine_matches_circuit_path(
        seed in 0u64..(1 << 32),
        gates in 50_000usize..60_000,
    ) {
        use netlist::generate::{profile, synthesize, synthesize_compiled, BenchmarkId};
        let mut p = profile(BenchmarkId::B18).scaled_to_gates(gates);
        p.seed ^= seed;
        let via_circuit = CompiledCircuit::compile(&synthesize(&p).expect("synthesizable"))
            .expect("acyclic");
        let via_stream = synthesize_compiled(&p).expect("synthesizable");

        qcheck::prop_assert_eq!(via_stream.num_nets(), via_circuit.num_nets());
        qcheck::prop_assert_eq!(via_stream.depth(), via_circuit.depth());
        qcheck::prop_assert_eq!(via_stream.inputs(), via_circuit.inputs());
        qcheck::prop_assert_eq!(via_stream.outputs(), via_circuit.outputs());

        let n_in = via_stream.inputs().len();
        let mut rng = SplitMix64::new(seed ^ 0xB16C);
        let mut words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        via_stream.eval_full_into(&words, &mut a);
        via_circuit.eval_full_into(&words, &mut b);
        qcheck::prop_assert!(
            a == b,
            "streamed and compiled artifacts diverge over {} nets",
            a.len()
        );

        // Incremental walk on the streamed artifact against fresh sweeps.
        let mut scratch = EvalScratch::new(&via_stream);
        scratch.eval_full(&via_stream, &words);
        for step in 0..6 {
            let i = (rng.next_u64() % n_in as u64) as usize;
            let w = rng.next_u64();
            words[i] = w;
            scratch.propagate(&via_stream, via_stream.inputs()[i].index() as u32, w);
            scratch.commit();
            via_stream.eval_full_into(&words, &mut a);
            qcheck::prop_assert!(
                scratch.values() == &a[..],
                "incremental kernel diverged from full sweep at step {}",
                step
            );
        }
    }
}
