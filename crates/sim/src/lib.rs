//! Logic simulation for the OraP reproduction.
//!
//! Provides the simulation machinery every experiment in the paper needs:
//!
//! - [`CombSim`]: levelized, 64-way bit-parallel simulation of a circuit's
//!   combinational part (the workhorse for Hamming-distance measurement and
//!   the oracle implementations used by the attacks).
//! - [`SeqSim`]: cycle-accurate sequential simulation over the flip-flop
//!   boundary.
//! - [`scan`]: a scan-chain model with `scan_enable` semantics (scan-in /
//!   capture / scan-out), the access mechanism all oracle-based attacks rely
//!   on and the one OraP guards.
//! - [`hd`]: output-corruption (Hamming distance) measurement as used for
//!   Table I of the paper.
//! - [`equiv`]: randomized equivalence checking between two circuits, used to
//!   validate synthesis passes and locking correctness.
//!
//! # Example
//!
//! ```
//! use gatesim::CombSim;
//! use netlist::samples;
//!
//! let adder = samples::full_adder();
//! let sim = CombSim::new(&adder).expect("acyclic");
//! // 1 + 1 + carry 0 = sum 0, carry 1
//! let out = sim.eval_bools(&[true, true, false]);
//! assert_eq!(out, vec![false, true]);
//! ```

#![warn(missing_docs)]

pub mod equiv;
pub mod hd;
pub mod scan;

mod comb;
mod seq;

pub use comb::CombSim;
pub use seq::SeqSim;
