//! Scan-chain modelling.
//!
//! Scan design threads every flip-flop onto shift registers ("chains") so a
//! tester can set (`scan-in`) and observe (`scan-out`) the full circuit state
//! through a handful of pins. The scan in → capture → scan out loop is
//! exactly how oracle-based logic-locking attacks apply chosen inputs to the
//! combinational part of a fabricated chip and read back its responses — the
//! access path OraP disables.
//!
//! [`ScanSim`] models a conventional (unprotected) scan-equipped chip; the
//! `orap` crate builds the protected chip on the same primitives.

use netlist::{Circuit, Error};

use crate::SeqSim;

/// Assignment of flip-flops to scan chains.
///
/// `chains[c]` lists flip-flop indices (into [`Circuit::dffs`]) in shift
/// order: the first element is closest to the scan-in pin, the last drives
/// the scan-out pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChains {
    chains: Vec<Vec<usize>>,
    num_dffs: usize,
}

impl ScanChains {
    /// Distributes `num_dffs` flip-flops round-robin over `num_chains`
    /// balanced chains.
    ///
    /// # Panics
    ///
    /// Panics if `num_chains == 0`.
    pub fn balanced(num_dffs: usize, num_chains: usize) -> Self {
        assert!(num_chains > 0, "need at least one chain");
        let mut chains = vec![Vec::new(); num_chains];
        for ff in 0..num_dffs {
            chains[ff % num_chains].push(ff);
        }
        ScanChains { chains, num_dffs }
    }

    /// Builds chains from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not a permutation of `0..num_dffs`.
    pub fn from_assignment(chains: Vec<Vec<usize>>, num_dffs: usize) -> Self {
        let mut seen = vec![false; num_dffs];
        for c in &chains {
            for &ff in c {
                assert!(ff < num_dffs, "flip-flop index {ff} out of range");
                assert!(!seen[ff], "flip-flop {ff} appears twice");
                seen[ff] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every flip-flop must be on a chain");
        ScanChains { chains, num_dffs }
    }

    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Number of flip-flops covered.
    pub fn num_dffs(&self) -> usize {
        self.num_dffs
    }

    /// The flip-flop indices of chain `c`, in shift order.
    pub fn chain(&self, c: usize) -> &[usize] {
        &self.chains[c]
    }

    /// Length of the longest chain (number of shift cycles for a full load).
    pub fn max_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Applies one shift cycle to a per-flip-flop state image in place:
    /// `scan_in[c]` enters chain `c`'s front cell, every other cell takes
    /// its predecessor's value, and the bit falling off each chain's end is
    /// returned (one per chain, in chain order; `false` for empty chains).
    ///
    /// This is the single shift primitive shared by [`ScanSim::clock`] and
    /// the keyed scan-obfuscation models built on top of it, so an
    /// obfuscated chain provably shifts data exactly like the plain one
    /// before its key stages apply.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches of `state` or `scan_in`.
    pub fn shift_image(&self, state: &mut [bool], scan_in: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.num_dffs, "state width mismatch");
        assert_eq!(
            scan_in.len(),
            self.chains.len(),
            "one scan-in bit per chain"
        );
        let mut out = Vec::with_capacity(self.chains.len());
        for (c, chain) in self.chains.iter().enumerate() {
            out.push(chain.last().map(|&ff| state[ff]).unwrap_or(false));
            for i in (1..chain.len()).rev() {
                state[chain[i]] = state[chain[i - 1]];
            }
            if let Some(&first) = chain.first() {
                state[first] = scan_in[c];
            }
        }
        out
    }
}

/// A conventional scan-equipped chip: a sequential circuit whose state is
/// fully controllable and observable through its scan chains.
///
/// This is the *unprotected* oracle every attack paper assumes. Mode is
/// governed by `scan_enable`: while asserted, clocking shifts the chains;
/// while deasserted, clocking runs the functional logic ("capture").
#[derive(Debug, Clone)]
pub struct ScanSim {
    seq: SeqSim,
    chains: ScanChains,
    scan_enable: bool,
}

impl ScanSim {
    /// Builds a scan model of `circuit` with the given chain assignment.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the combinational part is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if the chain assignment does not cover the circuit's
    /// flip-flops.
    pub fn new(circuit: &Circuit, chains: ScanChains) -> Result<Self, Error> {
        assert_eq!(
            chains.num_dffs(),
            circuit.dffs().len(),
            "chain assignment must cover all flip-flops"
        );
        Ok(ScanSim {
            seq: SeqSim::new(circuit)?,
            chains,
            scan_enable: false,
        })
    }

    /// Current `scan_enable` value.
    pub fn scan_enable(&self) -> bool {
        self.scan_enable
    }

    /// Drives the `scan_enable` pin. Mode changes take effect on the next
    /// clock.
    pub fn set_scan_enable(&mut self, value: bool) {
        self.scan_enable = value;
    }

    /// The scan-chain configuration.
    pub fn chains(&self) -> &ScanChains {
        &self.chains
    }

    /// Direct access to the underlying sequential state (for tests and
    /// white-box experiments; an attacker does not get this).
    pub fn seq(&self) -> &SeqSim {
        &self.seq
    }

    /// Mutable white-box access to the sequential state.
    pub fn seq_mut(&mut self) -> &mut SeqSim {
        &mut self.seq
    }

    /// Applies one clock cycle.
    ///
    /// - If `scan_enable` is high, each chain shifts by one position:
    ///   `scan_in[c]` enters chain `c` and the bit falling off the end is
    ///   returned per chain. Primary outputs are not meaningful during shift.
    /// - If `scan_enable` is low, the chip performs a functional (capture)
    ///   cycle with `pis` applied; the scan-out vector returned holds the
    ///   *pre-clock* last-cell values (what a tester would latch).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches of `pis` or `scan_in`.
    pub fn clock(&mut self, pis: &[bool], scan_in: &[bool]) -> Vec<bool> {
        if self.scan_enable {
            let mut state = self.seq.state().to_vec();
            let out = self.chains.shift_image(&mut state, scan_in);
            self.seq.set_state(&state);
            out
        } else {
            let outs: Vec<bool> = self
                .chains
                .chains
                .iter()
                .map(|chain| chain.last().map(|&ff| self.seq.state()[ff]).unwrap_or(false))
                .collect();
            self.seq.step(pis);
            outs
        }
    }

    /// Convenience: shifts a full state image in (`per-flip-flop` values,
    /// indexed like [`Circuit::dffs`]). Asserts `scan_enable` for the
    /// duration and leaves it asserted.
    ///
    /// # Panics
    ///
    /// Panics if `image.len()` differs from the flip-flop count.
    pub fn scan_in_image(&mut self, image: &[bool]) {
        assert_eq!(image.len(), self.chains.num_dffs(), "image width mismatch");
        self.set_scan_enable(true);
        let depth = self.chains.max_len();
        // Shift `depth` times; for cell at position p (0 = nearest scan-in),
        // its final value enters on cycle depth-1-p.
        for cycle in 0..depth {
            let bits: Vec<bool> = (0..self.chains.num_chains())
                .map(|c| {
                    let chain = self.chains.chain(c);
                    let p = depth - 1 - cycle;
                    if p < chain.len() {
                        image[chain[p]]
                    } else {
                        false
                    }
                })
                .collect();
            self.clock(&[], &bits);
        }
    }

    /// Convenience: shifts the full state image out (destructively),
    /// returning per-flip-flop values indexed like [`Circuit::dffs`].
    /// Asserts `scan_enable` for the duration and leaves it asserted.
    pub fn scan_out_image(&mut self) -> Vec<bool> {
        self.set_scan_enable(true);
        let mut image = vec![false; self.chains.num_dffs()];
        let depth = self.chains.max_len();
        let zeros = vec![false; self.chains.num_chains()];
        for cycle in 0..depth {
            let outs = self.clock(&[], &zeros);
            for (c, &bit) in outs.iter().enumerate() {
                let chain = self.chains.chain(c);
                // Cycle k emits the cell at distance k from the scan-out end.
                let p = chain.len().checked_sub(1 + cycle);
                if let Some(p) = p {
                    image[chain[p]] = bit;
                }
            }
        }
        image
    }

    /// The canonical tester operation oracle attacks use: load `state`,
    /// apply `pis`, run one functional cycle, and scan the captured response
    /// out. Returns `(primary_outputs, captured_state)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn scan_test(&mut self, state: &[bool], pis: &[bool]) -> (Vec<bool>, Vec<bool>) {
        self.scan_in_image(state);
        self.set_scan_enable(false);
        // Capture cycle: primary outputs are observed combinationally, the
        // clock edge then latches the response into the flip-flops.
        let pos = self.seq.step(pis);
        let captured = self.scan_out_image();
        (pos, captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn balanced_assignment() {
        let ch = ScanChains::balanced(10, 3);
        assert_eq!(ch.num_chains(), 3);
        assert_eq!(ch.chain(0), &[0, 3, 6, 9]);
        assert_eq!(ch.chain(1), &[1, 4, 7]);
        assert_eq!(ch.max_len(), 4);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_assignment_rejected() {
        ScanChains::from_assignment(vec![vec![0, 1], vec![1]], 2);
    }

    #[test]
    #[should_panic(expected = "every flip-flop")]
    fn missing_assignment_rejected() {
        ScanChains::from_assignment(vec![vec![0]], 2);
    }

    #[test]
    fn scan_in_then_out_roundtrip() {
        let c = samples::counter(5);
        let chains = ScanChains::balanced(5, 2);
        let mut sim = ScanSim::new(&c, chains).unwrap();
        let image = vec![true, false, true, true, false];
        sim.scan_in_image(&image);
        assert_eq!(sim.seq().state(), &image[..]);
        let out = sim.scan_out_image();
        assert_eq!(out, image);
    }

    #[test]
    fn scan_test_matches_functional_step() {
        let c = samples::counter(4);
        let mut scan = ScanSim::new(&c, ScanChains::balanced(4, 1)).unwrap();
        // Load 0b0101, enable counting, capture.
        let state = vec![true, false, true, false]; // q0=1,q1=0,q2=1,q3=0 -> 5
        let (_, captured) = scan.scan_test(&state, &[true]);
        // 5 + 1 = 6 = 0b0110 -> q0=0,q1=1,q2=1,q3=0
        assert_eq!(captured, vec![false, true, true, false]);
    }

    #[test]
    fn functional_mode_ignores_scan_in() {
        let c = samples::counter(3);
        let mut sim = ScanSim::new(&c, ScanChains::balanced(3, 1)).unwrap();
        sim.set_scan_enable(false);
        sim.clock(&[true], &[]);
        assert_eq!(sim.seq().state(), &[true, false, false]);
    }

    #[test]
    fn shift_moves_one_position_per_clock() {
        let c = samples::counter(3);
        let mut sim = ScanSim::new(&c, ScanChains::balanced(3, 1)).unwrap();
        sim.set_scan_enable(true);
        sim.clock(&[], &[true]);
        assert_eq!(sim.seq().state(), &[true, false, false]);
        sim.clock(&[], &[false]);
        assert_eq!(sim.seq().state(), &[false, true, false]);
        sim.clock(&[], &[false]);
        assert_eq!(sim.seq().state(), &[false, false, true]);
        let out = sim.clock(&[], &[false]);
        assert_eq!(out, vec![true]); // the 1 falls off the end
    }
}
