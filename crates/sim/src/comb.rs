use std::sync::Arc;

use netlist::{Circuit, CompiledCircuit, Error, NetId};

/// A word-parallel simulator view over a shared [`CompiledCircuit`].
///
/// Construction compiles the netlist once (CSR adjacency + cached
/// levelization); evaluation then runs 64 patterns at a time, one bit per
/// lane of a `u64` word, using the engine's full-sweep kernel. The
/// underlying artifact is reference-counted, so cloning a `CombSim` — or
/// handing the artifact to other engine consumers via
/// [`compiled`](CombSim::compiled) — never re-levelizes the circuit.
///
/// Inputs and outputs follow the circuit's *combinational* interface:
/// [`Circuit::comb_inputs`] order in, [`Circuit::comb_outputs`] order out.
#[derive(Debug, Clone)]
pub struct CombSim {
    cc: Arc<CompiledCircuit>,
}

impl CombSim {
    /// Compiles a simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CombinationalCycle`] if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Result<Self, Error> {
        Ok(CombSim {
            cc: Arc::new(CompiledCircuit::compile(circuit)?),
        })
    }

    /// Wraps an already-compiled artifact (shares it, no recompilation).
    pub fn from_compiled(cc: Arc<CompiledCircuit>) -> Self {
        CombSim { cc }
    }

    /// The shared compiled artifact backing this simulator.
    pub fn compiled(&self) -> &Arc<CompiledCircuit> {
        &self.cc
    }

    /// The combinational inputs this simulator expects, in order.
    pub fn inputs(&self) -> &[NetId] {
        self.cc.inputs()
    }

    /// The combinational outputs this simulator produces, in order.
    pub fn outputs(&self) -> &[NetId] {
        self.cc.outputs()
    }

    /// Number of nets in the compiled circuit.
    pub fn num_nets(&self) -> usize {
        self.cc.num_nets()
    }

    /// Evaluates 64 patterns in parallel: `input_words[i]` carries one bit
    /// per pattern for the i-th combinational input. Returns one word per
    /// combinational output.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn eval_words(&self, input_words: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        self.cc.eval_full_into(input_words, &mut values);
        self.cc
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    /// Like [`eval_words`](CombSim::eval_words) but exposes the value of
    /// *every* net through the caller-provided buffer (used by fault
    /// analysis and the locking heuristics). The buffer is resized as
    /// needed; index it by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn eval_words_into(&self, input_words: &[u64], values: &mut Vec<u64>) {
        self.cc.eval_full_into(input_words, values);
    }

    /// Evaluates many independent 64-pattern batches across `pool`,
    /// returning one output-word vector per batch, in batch order.
    ///
    /// Each batch is one `eval_words` call; batches are distributed over
    /// the pool's workers with results collected in input order, so the
    /// output is bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any batch's length differs from the number of inputs.
    pub fn eval_words_many(&self, pool: &exec::Pool, batches: &[Vec<u64>]) -> Vec<Vec<u64>> {
        pool.par_map("comb_eval_batches", batches, |_, words| self.eval_words(words))
    }

    /// Evaluates a single pattern of booleans.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the number of inputs.
    pub fn eval_bools(&self, input: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = input.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::rng::SplitMix64;
    use netlist::{samples, Circuit};

    fn brute_force_output(c: &Circuit, input: &[bool]) -> Vec<bool> {
        // Recursive reference evaluation.
        fn eval(c: &Circuit, id: NetId, env: &std::collections::HashMap<NetId, bool>) -> bool {
            if let Some(&v) = env.get(&id) {
                return v;
            }
            let g = c.gate(id).expect("non-input must have driver");
            let vals: Vec<bool> = g.fanin.iter().map(|&f| eval(c, f, env)).collect();
            g.kind.eval(vals)
        }
        let env: std::collections::HashMap<NetId, bool> = c
            .comb_inputs()
            .iter()
            .copied()
            .zip(input.iter().copied())
            .collect();
        c.comb_outputs().iter().map(|&o| eval(c, o, &env)).collect()
    }

    #[test]
    fn full_adder_truth_table() {
        let c = samples::full_adder();
        let sim = CombSim::new(&c).unwrap();
        for bits in 0..8u32 {
            let input = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = sim.eval_bools(&input);
            let total = input.iter().filter(|&&b| b).count();
            assert_eq!(out[0], total % 2 == 1, "sum for {input:?}");
            assert_eq!(out[1], total >= 2, "carry for {input:?}");
        }
    }

    #[test]
    fn matches_reference_on_random_circuit() {
        let c = netlist::generate::random_comb(11, 10, 6, 120).unwrap();
        let sim = CombSim::new(&c).unwrap();
        let mut rng = SplitMix64::new(99);
        for _ in 0..50 {
            let input: Vec<bool> = (0..10).map(|_| rng.bool()).collect();
            assert_eq!(sim.eval_bools(&input), brute_force_output(&c, &input));
        }
    }

    #[test]
    fn word_lanes_are_independent() {
        let c = samples::c17();
        let sim = CombSim::new(&c).unwrap();
        let mut rng = SplitMix64::new(5);
        let words: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        let out_words = sim.eval_words(&words);
        for lane in 0..64 {
            let input: Vec<bool> = words.iter().map(|w| (w >> lane) & 1 == 1).collect();
            let expect = sim.eval_bools(&input);
            for (o, &w) in out_words.iter().enumerate() {
                assert_eq!((w >> lane) & 1 == 1, expect[o], "lane {lane} output {o}");
            }
        }
    }

    #[test]
    fn counter_comb_part() {
        let c = samples::counter(3);
        let sim = CombSim::new(&c).unwrap();
        // inputs: en, q0, q1, q2 -> outputs: po q0,q1,q2 then d0,d1,d2
        let out = sim.eval_bools(&[true, true, true, false]);
        // q=011 + 1 = 100 -> d = [false, false, true]
        assert_eq!(&out[3..], &[false, false, true]);
    }

    #[test]
    fn exposes_internal_nets() {
        let c = samples::majority3();
        let sim = CombSim::new(&c).unwrap();
        let mut values = Vec::new();
        sim.eval_words_into(&[!0u64, !0u64, 0u64], &mut values);
        let n1 = c.find("n1").unwrap(); // NAND(a,b) with a=b=1 -> 0
        assert_eq!(values[n1.index()], 0);
    }

    #[test]
    #[should_panic(expected = "input words")]
    fn wrong_input_count_panics() {
        let c = samples::c17();
        let sim = CombSim::new(&c).unwrap();
        let _ = sim.eval_words(&[0, 0]);
    }

    #[test]
    fn shared_artifact_not_recompiled() {
        let c = samples::c17();
        let sim = CombSim::new(&c).unwrap();
        let view = CombSim::from_compiled(Arc::clone(sim.compiled()));
        assert!(Arc::ptr_eq(sim.compiled(), view.compiled()));
        assert_eq!(sim.eval_bools(&[true; 5]), view.eval_bools(&[true; 5]));
    }

    #[test]
    fn constants_evaluate() {
        let mut c = Circuit::new("k");
        let a = c.add_input("a");
        let one = c.add_gate(netlist::GateKind::Const1, vec![], "one").unwrap();
        let y = c.add_gate(netlist::GateKind::And, vec![a, one], "y").unwrap();
        c.mark_output(y);
        let sim = CombSim::new(&c).unwrap();
        assert_eq!(sim.eval_bools(&[true]), vec![true]);
        assert_eq!(sim.eval_bools(&[false]), vec![false]);
    }
}
