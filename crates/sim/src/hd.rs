//! Output-corruption (Hamming distance) measurement.
//!
//! Table I of the paper evaluates the combination OraP + weighted logic
//! locking by the average Hamming distance between the outputs produced
//! under the *valid* key and under *random wrong* keys, over long
//! pseudorandom input sequences. 50% is the optimum (maximum ambiguity);
//! SAT-resistant schemes typically manage well under 1%, which is the
//! corruptibility argument the paper makes.

use netlist::rng::SplitMix64;
use netlist::{Circuit, Error, NetId};

use crate::CombSim;

/// Result of a Hamming-distance measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdReport {
    /// Patterns simulated.
    pub patterns: usize,
    /// Output bits compared per pattern.
    pub outputs: usize,
    /// Total flipped output bits across all patterns.
    pub flipped: u64,
}

impl HdReport {
    /// Average Hamming distance as a percentage of output bits.
    pub fn percent(&self) -> f64 {
        if self.patterns == 0 || self.outputs == 0 {
            return 0.0;
        }
        100.0 * self.flipped as f64 / (self.patterns as f64 * self.outputs as f64)
    }
}

/// Splits a locked circuit's combinational inputs into (data, key) positions.
fn input_roles(sim: &CombSim, key_nets: &[NetId]) -> (Vec<usize>, Vec<usize>) {
    let mut data = Vec::new();
    let mut key = Vec::new();
    for (i, n) in sim.inputs().iter().enumerate() {
        if key_nets.contains(n) {
            key.push(i);
        } else {
            data.push(i);
        }
    }
    (data, key)
}

fn broadcast(b: bool) -> u64 {
    if b {
        !0
    } else {
        0
    }
}

/// Measures the average output Hamming distance between running `circuit`
/// with key `key_a` and with key `key_b`, over `patterns` pseudorandom data
/// patterns (rounded up to a multiple of 64).
///
/// `key_nets` lists which combinational inputs are key inputs; `key_a` /
/// `key_b` give their values in the same order.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
///
/// # Panics
///
/// Panics if the key slices do not match `key_nets` in length.
pub fn hamming_between_keys(
    circuit: &Circuit,
    key_nets: &[NetId],
    key_a: &[bool],
    key_b: &[bool],
    patterns: usize,
    seed: u64,
) -> Result<HdReport, Error> {
    let sim = CombSim::new(circuit)?;
    let (data_pos, key_pos) = input_roles(&sim, key_nets);
    Ok(hamming_on_sim(
        &sim, &data_pos, &key_pos, key_a, key_b, patterns, seed,
    ))
}

/// Core HD measurement against a prebuilt simulator (shared by the public
/// entry points so the parallel key sweep compiles the circuit only once).
fn hamming_on_sim(
    sim: &CombSim,
    data_pos: &[usize],
    key_pos: &[usize],
    key_a: &[bool],
    key_b: &[bool],
    patterns: usize,
    seed: u64,
) -> HdReport {
    assert_eq!(key_a.len(), key_pos.len(), "key_a width mismatch");
    assert_eq!(key_b.len(), key_pos.len(), "key_b width mismatch");
    let mut rng = SplitMix64::new(seed);
    let words = patterns.div_ceil(64).max(1);
    let mut input = vec![0u64; sim.inputs().len()];
    let mut flipped = 0u64;
    for _ in 0..words {
        for &d in data_pos {
            input[d] = rng.next_u64();
        }
        for (k, &pos) in key_pos.iter().enumerate() {
            input[pos] = broadcast(key_a[k]);
        }
        let out_a = sim.eval_words(&input);
        for (k, &pos) in key_pos.iter().enumerate() {
            input[pos] = broadcast(key_b[k]);
        }
        let out_b = sim.eval_words(&input);
        for (wa, wb) in out_a.iter().zip(&out_b) {
            flipped += (wa ^ wb).count_ones() as u64;
        }
    }
    HdReport {
        patterns: words * 64,
        outputs: sim.outputs().len(),
        flipped,
    }
}

/// Measures the average Hamming distance between the valid key and
/// `num_random_keys` random wrong keys — the Table I methodology.
///
/// Returns the mean of the per-key HD percentages.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
///
/// # Panics
///
/// Panics if `correct_key.len() != key_nets.len()`.
pub fn average_hd_random_keys(
    circuit: &Circuit,
    key_nets: &[NetId],
    correct_key: &[bool],
    num_random_keys: usize,
    patterns_per_key: usize,
    seed: u64,
) -> Result<f64, Error> {
    average_hd_random_keys_on(
        exec::global(),
        circuit,
        key_nets,
        correct_key,
        num_random_keys,
        patterns_per_key,
        seed,
    )
}

/// [`average_hd_random_keys`] on an explicit [`exec::Pool`].
///
/// The wrong keys are drawn sequentially from one PRNG stream (so the key
/// set is independent of the thread count), then each key's measurement
/// runs as one pool task and the per-key percentages are averaged in key
/// order — the result is bit-identical for any pool size.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
///
/// # Panics
///
/// Panics if `correct_key.len() != key_nets.len()`.
pub fn average_hd_random_keys_on(
    pool: &exec::Pool,
    circuit: &Circuit,
    key_nets: &[NetId],
    correct_key: &[bool],
    num_random_keys: usize,
    patterns_per_key: usize,
    seed: u64,
) -> Result<f64, Error> {
    assert_eq!(correct_key.len(), key_nets.len(), "key width mismatch");
    let sim = CombSim::new(circuit)?;
    let (data_pos, key_pos) = input_roles(&sim, key_nets);
    let mut rng = SplitMix64::new(seed ^ 0x4844_5f4b_4559_u64);
    let wrong_keys: Vec<Vec<bool>> = (0..num_random_keys)
        .map(|_| {
            let mut wrong: Vec<bool> = (0..key_nets.len()).map(|_| rng.bool()).collect();
            if wrong == correct_key {
                // Astronomically unlikely for real key sizes; flip one bit.
                wrong[0] = !wrong[0];
            }
            wrong
        })
        .collect();
    let percents = pool.par_map("hd_random_keys", &wrong_keys, |k, wrong| {
        hamming_on_sim(
            &sim,
            &data_pos,
            &key_pos,
            correct_key,
            wrong,
            patterns_per_key,
            seed.wrapping_add(k as u64 + 1),
        )
        .percent()
    });
    let total: f64 = percents.iter().fold(0.0, |a, &p| a + p);
    Ok(if wrong_keys.is_empty() {
        0.0
    } else {
        total / wrong_keys.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{GateKind, NetId};

    /// A circuit whose output equals input XOR key: wrong key flips every
    /// output bit -> HD is exactly 100%.
    fn xor_locked(width: usize) -> (netlist::Circuit, Vec<NetId>) {
        let mut c = netlist::Circuit::new("xorlock");
        let mut keys = Vec::new();
        for i in 0..width {
            let a = c.add_input(format!("a{i}"));
            let k = c.add_input(format!("k{i}"));
            keys.push(k);
            let y = c
                .add_gate(GateKind::Xor, vec![a, k], format!("y{i}"))
                .unwrap();
            c.mark_output(y);
        }
        (c, keys)
    }

    #[test]
    fn hd_of_all_flipping_key_is_100() {
        let (c, keys) = xor_locked(8);
        let a = vec![false; 8];
        let b = vec![true; 8];
        let rep = hamming_between_keys(&c, &keys, &a, &b, 256, 1).unwrap();
        assert_eq!(rep.percent(), 100.0);
    }

    #[test]
    fn hd_of_identical_keys_is_0() {
        let (c, keys) = xor_locked(8);
        let a = vec![true; 8];
        let rep = hamming_between_keys(&c, &keys, &a, &a, 256, 1).unwrap();
        assert_eq!(rep.percent(), 0.0);
    }

    #[test]
    fn hd_of_half_flipping_key_is_50() {
        let (c, keys) = xor_locked(8);
        let a = vec![false; 8];
        let mut b = vec![false; 8];
        for bit in b.iter_mut().take(4) {
            *bit = true;
        }
        let rep = hamming_between_keys(&c, &keys, &a, &b, 256, 1).unwrap();
        assert_eq!(rep.percent(), 50.0);
    }

    #[test]
    fn random_keys_average_near_half_for_xor_lock() {
        let (c, keys) = xor_locked(16);
        let correct = vec![false; 16];
        let avg = average_hd_random_keys(&c, &keys, &correct, 20, 128, 7).unwrap();
        // Random keys flip on average half the bits of an XOR lock.
        assert!((40.0..60.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn patterns_round_up_to_word() {
        let (c, keys) = xor_locked(4);
        let rep =
            hamming_between_keys(&c, &keys, &[false; 4], &[true; 4], 10, 3).unwrap();
        assert_eq!(rep.patterns, 64);
    }
}
