use netlist::{Circuit, Error};

use crate::CombSim;

/// Cycle-accurate sequential simulator.
///
/// Holds the flip-flop state between clock edges. Each [`step`](SeqSim::step)
/// applies primary inputs, evaluates the combinational part, returns the
/// primary outputs and latches the next state.
#[derive(Debug, Clone)]
pub struct SeqSim {
    comb: CombSim,
    num_pis: usize,
    num_pos: usize,
    state: Vec<bool>,
}

impl SeqSim {
    /// Builds a sequential simulator for `circuit`.
    ///
    /// The initial state is all-zero (as after a global reset).
    ///
    /// # Errors
    ///
    /// Returns [`Error::CombinationalCycle`] if the combinational part is
    /// cyclic.
    pub fn new(circuit: &Circuit) -> Result<Self, Error> {
        Ok(SeqSim {
            comb: CombSim::new(circuit)?,
            num_pis: circuit.primary_inputs().len(),
            num_pos: circuit.primary_outputs().len(),
            state: vec![false; circuit.dffs().len()],
        })
    }

    /// The current flip-flop state, in [`Circuit::dffs`] order.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overwrites the flip-flop state (e.g. after a scan load).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of flip-flops.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Resets all flip-flops to zero.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|b| *b = false);
    }

    /// Evaluates the combinational part for the current state and the given
    /// primary inputs *without* latching: returns `(primary_outputs,
    /// next_state)`.
    ///
    /// # Panics
    ///
    /// Panics if `pis.len()` differs from the number of primary inputs.
    pub fn peek(&self, pis: &[bool]) -> (Vec<bool>, Vec<bool>) {
        assert_eq!(pis.len(), self.num_pis, "primary input width mismatch");
        let mut input = Vec::with_capacity(self.num_pis + self.state.len());
        input.extend_from_slice(pis);
        input.extend_from_slice(&self.state);
        let out = self.comb.eval_bools(&input);
        let pos = out[..self.num_pos].to_vec();
        let next = out[self.num_pos..].to_vec();
        (pos, next)
    }

    /// Applies one clock cycle: evaluates outputs and latches the next state.
    ///
    /// # Panics
    ///
    /// Panics if `pis.len()` differs from the number of primary inputs.
    pub fn step(&mut self, pis: &[bool]) -> Vec<bool> {
        let (pos, next) = self.peek(pis);
        self.state = next;
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn counter_counts() {
        let c = samples::counter(4);
        let mut sim = SeqSim::new(&c).unwrap();
        for expected in 1..=10u32 {
            sim.step(&[true]);
            let value = sim
                .state()
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i));
            assert_eq!(value, expected % 16);
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let c = samples::counter(4);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.step(&[true]);
        sim.step(&[true]);
        let before = sim.state().to_vec();
        sim.step(&[false]);
        assert_eq!(sim.state(), &before[..]);
    }

    #[test]
    fn outputs_reflect_pre_clock_state() {
        let c = samples::counter(2);
        let mut sim = SeqSim::new(&c).unwrap();
        // Outputs are the q bits themselves: first step sees the reset state.
        let out = sim.step(&[true]);
        assert_eq!(out, vec![false, false]);
        let out = sim.step(&[true]);
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn set_state_and_reset() {
        let c = samples::counter(3);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.set_state(&[true, false, true]);
        assert_eq!(sim.state(), &[true, false, true]);
        sim.reset();
        assert_eq!(sim.state(), &[false, false, false]);
    }

    #[test]
    fn peek_does_not_latch() {
        let c = samples::counter(3);
        let sim0 = SeqSim::new(&c).unwrap();
        let (_, next) = sim0.peek(&[true]);
        assert_eq!(next, vec![true, false, false]);
        assert_eq!(sim0.state(), &[false, false, false]);
    }
}
