//! Randomized combinational equivalence checking.
//!
//! Used throughout the workspace to validate that synthesis passes and
//! locking transforms preserve function: two circuits with the same
//! combinational interface are simulated on the same pseudorandom patterns
//! and the first mismatching pattern, if any, is reported.

use netlist::rng::SplitMix64;
use netlist::{Circuit, Error};

use crate::CombSim;

/// A counterexample found by [`check_random`]: the inputs (in comb-input
/// order) plus the differing output index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Input assignment that distinguishes the circuits.
    pub inputs: Vec<bool>,
    /// Index (in comb-output order) of the first differing output.
    pub output_index: usize,
}

/// Simulates `a` and `b` on `patterns` pseudorandom input patterns (rounded
/// up to a multiple of 64) and reports the first mismatch, or `None` when all
/// patterns agree.
///
/// Inputs are matched positionally over the combinational interface, so the
/// circuits must have the same number of combinational inputs and outputs.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
///
/// # Panics
///
/// Panics if the interfaces disagree in width.
pub fn check_random(
    a: &Circuit,
    b: &Circuit,
    patterns: usize,
    seed: u64,
) -> Result<Option<Counterexample>, Error> {
    let sa = CombSim::new(a)?;
    let sb = CombSim::new(b)?;
    assert_eq!(
        sa.inputs().len(),
        sb.inputs().len(),
        "input interface mismatch"
    );
    assert_eq!(
        sa.outputs().len(),
        sb.outputs().len(),
        "output interface mismatch"
    );
    let mut rng = SplitMix64::new(seed);
    let words = patterns.div_ceil(64).max(1);
    let mut input = vec![0u64; sa.inputs().len()];
    for _ in 0..words {
        for w in input.iter_mut() {
            *w = rng.next_u64();
        }
        let oa = sa.eval_words(&input);
        let ob = sb.eval_words(&input);
        for (oi, (wa, wb)) in oa.iter().zip(&ob).enumerate() {
            let diff = wa ^ wb;
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let inputs = input.iter().map(|w| (w >> lane) & 1 == 1).collect();
                return Ok(Some(Counterexample {
                    inputs,
                    output_index: oi,
                }));
            }
        }
    }
    Ok(None)
}

/// Exhaustively compares two circuits over all input assignments.
///
/// Only feasible for small input counts; intended for tests.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
///
/// # Panics
///
/// Panics if the interfaces disagree or if there are more than 24
/// combinational inputs (2^24 patterns is the sanity cap).
pub fn check_exhaustive(a: &Circuit, b: &Circuit) -> Result<Option<Counterexample>, Error> {
    let sa = CombSim::new(a)?;
    let sb = CombSim::new(b)?;
    let n = sa.inputs().len();
    assert_eq!(n, sb.inputs().len(), "input interface mismatch");
    assert_eq!(
        sa.outputs().len(),
        sb.outputs().len(),
        "output interface mismatch"
    );
    assert!(n <= 24, "exhaustive check capped at 24 inputs, got {n}");
    let total = 1u64 << n;
    let mut input = vec![0u64; n];
    let mut base = 0u64;
    while base < total {
        let lanes = (total - base).min(64) as u32;
        for (i, w) in input.iter_mut().enumerate() {
            let mut word = 0u64;
            for lane in 0..lanes {
                let pattern = base + lane as u64;
                if (pattern >> i) & 1 == 1 {
                    word |= 1u64 << lane;
                }
            }
            *w = word;
        }
        let oa = sa.eval_words(&input);
        let ob = sb.eval_words(&input);
        for (oi, (wa, wb)) in oa.iter().zip(&ob).enumerate() {
            let mask = if lanes == 64 { !0u64 } else { (1u64 << lanes) - 1 };
            let diff = (wa ^ wb) & mask;
            if diff != 0 {
                let lane = diff.trailing_zeros() as u64;
                let pattern = base + lane;
                let inputs = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
                return Ok(Some(Counterexample {
                    inputs,
                    output_index: oi,
                }));
            }
        }
        base += 64;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, GateKind};

    #[test]
    fn identical_circuits_equivalent() {
        let c = samples::c17();
        assert_eq!(check_random(&c, &c, 256, 1).unwrap(), None);
        assert_eq!(check_exhaustive(&c, &c).unwrap(), None);
    }

    #[test]
    fn nand_vs_and_not_equivalent_forms() {
        // y = NAND(a,b) versus y = NOT(AND(a,b))
        let mut a = netlist::Circuit::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.add_gate(GateKind::Nand, vec![x, y], "g").unwrap();
        a.mark_output(g);

        let mut b = netlist::Circuit::new("b");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let t = b.add_gate(GateKind::And, vec![x2, y2], "t").unwrap();
        let g2 = b.add_gate(GateKind::Not, vec![t], "g").unwrap();
        b.mark_output(g2);

        assert_eq!(check_exhaustive(&a, &b).unwrap(), None);
    }

    #[test]
    fn detects_difference() {
        let mut a = netlist::Circuit::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.add_gate(GateKind::And, vec![x, y], "g").unwrap();
        a.mark_output(g);

        let mut b = netlist::Circuit::new("b");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let g2 = b.add_gate(GateKind::Or, vec![x2, y2], "g").unwrap();
        b.mark_output(g2);

        let cex = check_exhaustive(&a, &b).unwrap().expect("AND != OR");
        // AND and OR differ exactly when inputs differ.
        assert_ne!(cex.inputs[0], cex.inputs[1]);
        assert!(check_random(&a, &b, 256, 3).unwrap().is_some());
    }

    #[test]
    fn counterexample_is_genuine() {
        let mut a = netlist::Circuit::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let z = a.add_input("z");
        let g = a.add_gate(GateKind::And, vec![x, y, z], "g").unwrap();
        a.mark_output(g);

        let mut b = netlist::Circuit::new("b");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let z2 = b.add_input("z");
        let t = b.add_gate(GateKind::And, vec![x2, y2], "t").unwrap();
        let g2 = b.add_gate(GateKind::Or, vec![t, z2], "g").unwrap();
        b.mark_output(g2);

        let cex = check_random(&a, &b, 512, 11).unwrap().expect("different");
        let sa = crate::CombSim::new(&a).unwrap();
        let sb = crate::CombSim::new(&b).unwrap();
        let oa = sa.eval_bools(&cex.inputs);
        let ob = sb.eval_bools(&cex.inputs);
        assert_ne!(oa[cex.output_index], ob[cex.output_index]);
    }
}
