use std::collections::HashMap;

use netlist::{Circuit, Error, GateKind, Levelization, NetId};

/// A literal in the AIG: a node index with a complement flag, packed as
/// `node << 1 | complemented`. Node 0 is the constant-FALSE node, so
/// `AigLit::FALSE` is `0` and `AigLit::TRUE` is `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal for a node.
    #[inline]
    pub fn new(node: usize, complemented: bool) -> Self {
        AigLit(((node as u32) << 1) | u32::from(complemented))
    }

    /// The node index.
    #[inline]
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;

    #[inline]
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Const,
    Input(u32),       // index into inputs
    And(AigLit, AigLit),
}

/// An and-inverter graph with structural hashing.
///
/// Nodes are created through [`Aig::and`] (and the derived [`Aig::or`],
/// [`Aig::xor_lit`], [`Aig::mux`]); identical structures are shared, constant
/// and trivial cases fold immediately.
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(AigLit, AigLit), usize>,
    num_inputs: usize,
    outputs: Vec<AigLit>,
}

impl Aig {
    /// Creates an AIG with `num_inputs` inputs and no outputs.
    pub fn new(num_inputs: usize) -> Self {
        let mut nodes = Vec::with_capacity(num_inputs + 1);
        nodes.push(Node::Const);
        for i in 0..num_inputs {
            nodes.push(Node::Input(i as u32));
        }
        Aig {
            nodes,
            strash: HashMap::new(),
            num_inputs,
            outputs: Vec::new(),
        }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The literal of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input(&self, i: usize) -> AigLit {
        assert!(i < self.num_inputs, "input {i} out of range");
        AigLit::new(1 + i, false)
    }

    /// Registers an output.
    pub fn add_output(&mut self, lit: AigLit) {
        self.outputs.push(lit);
    }

    /// The outputs.
    pub fn outputs(&self) -> &[AigLit] {
        &self.outputs
    }

    /// Total node count (constant + inputs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The fanins of an AND node, or `None` for inputs/constant.
    pub fn and_fanins(&self, node: usize) -> Option<(AigLit, AigLit)> {
        match self.nodes[node] {
            Node::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// The input index of an input node, or `None` for ANDs/constant.
    pub fn input_of(&self, node: usize) -> Option<usize> {
        match self.nodes[node] {
            Node::Input(i) => Some(i as usize),
            _ => None,
        }
    }

    /// Per-node cone-of-influence membership: `result[n]` is `true` iff some
    /// input `i` with `flagged[i]` set lies in node `n`'s transitive fanin
    /// (inputs themselves included). One forward pass — node indices are
    /// topologically ordered by construction.
    ///
    /// The SAT-attack encoder uses this with the key inputs flagged to
    /// restrict miter encoding to the key-affected output cones.
    ///
    /// # Panics
    ///
    /// Panics if `flagged.len() != num_inputs`.
    pub fn input_dependence(&self, flagged: &[bool]) -> Vec<bool> {
        assert_eq!(flagged.len(), self.num_inputs, "flag width mismatch");
        let mut dep = vec![false; self.nodes.len()];
        for n in 0..self.nodes.len() {
            dep[n] = match self.nodes[n] {
                Node::Const => false,
                Node::Input(i) => flagged[i as usize],
                Node::And(a, b) => dep[a.node()] || dep[b.node()],
            };
        }
        dep
    }

    /// AND of two literals, with structural hashing and trivial-case folding.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Normalize order.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        // Trivial cases.
        if a == AigLit::FALSE {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return AigLit::FALSE;
        }
        if let Some(&n) = self.strash.get(&(a, b)) {
            return AigLit::new(n, false);
        }
        let n = self.nodes.len();
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), n);
        AigLit::new(n, false)
    }

    /// OR of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR of two literals (three AND nodes worst case):
    /// `a ^ b = !(a&b) & !(!a&!b)`.
    pub fn xor_lit(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let nand_ab = !self.and(a, b);
        let nand_nanb = !self.and(!a, !b);
        self.and(nand_ab, nand_nanb)
    }

    /// Multiplexer: `s ? t : e`.
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Number of AND nodes *reachable from the outputs* — the area metric.
    /// Dead nodes left behind by rewriting do not count.
    pub fn num_ands(&self) -> usize {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|l| l.node()).collect();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if mark[n] {
                continue;
            }
            mark[n] = true;
            if let Node::And(a, b) = self.nodes[n] {
                count += 1;
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        count
    }

    /// Depth (maximum AND-chain length from any input to any output).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if let Node::And(a, b) = self.nodes[n] {
                level[n] = 1 + level[a.node()].max(level[b.node()]);
            }
        }
        self.outputs
            .iter()
            .map(|l| level[l.node()])
            .max()
            .unwrap_or(0)
    }

    /// Per-node levels (0 for inputs/constant).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if let Node::And(a, b) = self.nodes[n] {
                level[n] = 1 + level[a.node()].max(level[b.node()]);
            }
        }
        level
    }

    /// Fanout count per node, counting output references too.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut f = vec![0u32; self.nodes.len()];
        for n in 0..self.nodes.len() {
            if let Node::And(a, b) = self.nodes[n] {
                f[a.node()] += 1;
                f[b.node()] += 1;
            }
        }
        for o in &self.outputs {
            f[o.node()] += 1;
        }
        f
    }

    /// Evaluates the AIG on 64 packed patterns per input word.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        let mut v = vec![0u64; self.nodes.len()];
        for n in 0..self.nodes.len() {
            v[n] = match self.nodes[n] {
                Node::Const => 0,
                Node::Input(i) => inputs[i as usize],
                Node::And(a, b) => {
                    let va = v[a.node()] ^ if a.complemented() { !0 } else { 0 };
                    let vb = v[b.node()] ^ if b.complemented() { !0 } else { 0 };
                    va & vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|l| v[l.node()] ^ if l.complemented() { !0 } else { 0 })
            .collect()
    }

    /// Evaluates on booleans.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval_bools(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words).into_iter().map(|w| w & 1 == 1).collect()
    }

    /// Encodes the combinational part of a [`Circuit`] into an AIG. Inputs
    /// follow [`Circuit::comb_inputs`] order, outputs
    /// [`Circuit::comb_outputs`] order.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit is cyclic.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, Error> {
        let lv = Levelization::build(circuit)?;
        let comb_inputs = circuit.comb_inputs();
        let mut aig = Aig::new(comb_inputs.len());
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; circuit.num_nets()];
        for (i, &n) in comb_inputs.iter().enumerate() {
            map[n.index()] = aig.input(i);
        }
        for &id in lv.order() {
            if let Some(g) = circuit.gate(id) {
                let f: Vec<AigLit> = g.fanin.iter().map(|x| map[x.index()]).collect();
                let lit = match g.kind {
                    GateKind::And => f.iter().copied().reduce(|a, b| aig.and(a, b)).expect("arity"),
                    GateKind::Nand => {
                        !f.iter().copied().reduce(|a, b| aig.and(a, b)).expect("arity")
                    }
                    GateKind::Or => f.iter().copied().reduce(|a, b| aig.or(a, b)).expect("arity"),
                    GateKind::Nor => {
                        !f.iter().copied().reduce(|a, b| aig.or(a, b)).expect("arity")
                    }
                    GateKind::Xor => f
                        .iter()
                        .copied()
                        .reduce(|a, b| aig.xor_lit(a, b))
                        .expect("arity"),
                    GateKind::Xnor => {
                        !f.iter()
                            .copied()
                            .reduce(|a, b| aig.xor_lit(a, b))
                            .expect("arity")
                    }
                    GateKind::Not => !f[0],
                    GateKind::Buf => f[0],
                    GateKind::Const0 => AigLit::FALSE,
                    GateKind::Const1 => AigLit::TRUE,
                };
                map[id.index()] = lit;
            }
        }
        for &o in &circuit.comb_outputs() {
            let lit = map[o.index()];
            aig.add_output(lit);
        }
        Ok(aig)
    }

    /// Decodes the AIG back into a gate-level circuit of AND2/NOT gates.
    /// The i-th input becomes primary input `i<i>`; the j-th output becomes
    /// primary output `o<j>` (the flip-flop boundary is not reconstructed —
    /// the optimizer works on the combinational part, which is all the
    /// paper's metrics need).
    pub fn to_circuit(&self, name: &str) -> Circuit {
        let mut c = Circuit::new(name);
        let mut net_of_node: Vec<Option<NetId>> = vec![None; self.nodes.len()];
        let mut not_cache: HashMap<NetId, NetId> = HashMap::new();
        for i in 0..self.num_inputs {
            net_of_node[1 + i] = Some(c.add_input(format!("i{i}")));
        }
        let const0 = std::cell::Cell::new(None::<NetId>);
        let lit_net = |c: &mut Circuit,
                           net_of_node: &mut Vec<Option<NetId>>,
                           not_cache: &mut HashMap<NetId, NetId>,
                           lit: AigLit|
         -> NetId {
            let base = if lit.node() == 0 {
                if const0.get().is_none() {
                    let z = c
                        .add_gate(GateKind::Const0, vec![], "const0")
                        .expect("const arity");
                    const0.set(Some(z));
                }
                const0.get().expect("just set")
            } else {
                net_of_node[lit.node()].expect("topological construction")
            };
            if lit.complemented() {
                *not_cache.entry(base).or_insert_with(|| {
                    c.add_gate(GateKind::Not, vec![base], format!("n_{}", base.index()))
                        .expect("NOT arity")
                })
            } else {
                base
            }
        };
        for n in 0..self.nodes.len() {
            if let Node::And(a, b) = self.nodes[n] {
                let fa = lit_net(&mut c, &mut net_of_node, &mut not_cache, a);
                let fb = lit_net(&mut c, &mut net_of_node, &mut not_cache, b);
                let g = c
                    .add_gate(GateKind::And, vec![fa, fb], format!("a{n}"))
                    .expect("AND arity");
                net_of_node[n] = Some(g);
            }
        }
        for (j, &o) in self.outputs.iter().enumerate() {
            let net = lit_net(&mut c, &mut net_of_node, &mut not_cache, o);
            // Buffer so multiple outputs pointing at the same literal keep
            // distinct names.
            let buf = c
                .add_gate(GateKind::Buf, vec![net], format!("o{j}"))
                .expect("BUFF arity");
            c.mark_output(buf);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn literal_packing() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.complemented());
        assert_eq!(!l, AigLit::new(5, false));
        assert_eq!(AigLit::TRUE, !AigLit::FALSE);
    }

    #[test]
    fn strash_shares_structure() {
        let mut a = Aig::new(2);
        let (x, y) = (a.input(0), a.input(1));
        let g1 = a.and(x, y);
        let g2 = a.and(y, x);
        assert_eq!(g1, g2);
        assert_eq!(a.num_ands_total(), 1);
    }

    impl Aig {
        fn num_ands_total(&self) -> usize {
            self.nodes
                .iter()
                .filter(|n| matches!(n, Node::And(..)))
                .count()
        }
    }

    #[test]
    fn trivial_folding() {
        let mut a = Aig::new(1);
        let x = a.input(0);
        assert_eq!(a.and(x, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(a.and(x, AigLit::TRUE), x);
        assert_eq!(a.and(x, x), x);
        assert_eq!(a.and(x, !x), AigLit::FALSE);
        assert_eq!(a.num_ands_total(), 0);
    }

    #[test]
    fn xor_and_mux_truth() {
        let mut a = Aig::new(3);
        let (x, y, s) = (a.input(0), a.input(1), a.input(2));
        let xo = a.xor_lit(x, y);
        let m = a.mux(s, x, y);
        a.add_output(xo);
        a.add_output(m);
        for bits in 0..8u32 {
            let input = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = a.eval_bools(&input);
            assert_eq!(out[0], input[0] ^ input[1]);
            assert_eq!(out[1], if input[2] { input[0] } else { input[1] });
        }
    }

    #[test]
    fn from_circuit_matches_netlist() {
        let c = samples::full_adder();
        let aig = Aig::from_circuit(&c).unwrap();
        for bits in 0..8u32 {
            let input = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expect = {
                let total = input.iter().filter(|&&b| b).count();
                vec![total % 2 == 1, total >= 2]
            };
            assert_eq!(aig.eval_bools(&input), expect, "{input:?}");
        }
    }

    #[test]
    fn roundtrip_through_circuit() {
        let c = netlist::generate::random_comb(9, 8, 5, 80).unwrap();
        let aig = Aig::from_circuit(&c).unwrap();
        let back = aig.to_circuit("rt");
        let aig2 = Aig::from_circuit(&back).unwrap();
        let mut rng = netlist::rng::SplitMix64::new(4);
        for _ in 0..64 {
            let input: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
            assert_eq!(aig.eval_bools(&input), aig2.eval_bools(&input));
        }
    }

    #[test]
    fn depth_and_area_of_chain() {
        let mut a = Aig::new(4);
        let mut acc = a.input(0);
        for i in 1..4 {
            let x = a.input(i);
            acc = a.and(acc, x);
        }
        a.add_output(acc);
        assert_eq!(a.num_ands(), 3);
        assert_eq!(a.depth(), 3);
    }

    #[test]
    fn dead_nodes_not_counted() {
        let mut a = Aig::new(2);
        let (x, y) = (a.input(0), a.input(1));
        let _dead = a.and(x, y);
        let live = a.or(x, y);
        a.add_output(live);
        assert_eq!(a.num_ands(), 1);
        assert_eq!(a.num_ands_total(), 2);
    }

    #[test]
    fn const_gates_convert() {
        let mut c = netlist::Circuit::new("k");
        let a = c.add_input("a");
        let one = c.add_gate(GateKind::Const1, vec![], "one").unwrap();
        let y = c.add_gate(GateKind::Or, vec![a, one], "y").unwrap();
        c.mark_output(y);
        let aig = Aig::from_circuit(&c).unwrap();
        assert_eq!(aig.eval_bools(&[false]), vec![true]);
        assert_eq!(aig.num_ands(), 0, "OR with const 1 folds away");
    }
}
