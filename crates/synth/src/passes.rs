//! Optimization passes over the [`Aig`].
//!
//! All passes are *rebuilding* passes: they construct a fresh, structurally
//! hashed AIG containing only logic reachable from the outputs, translating
//! node by node in topological order (the node vector is topologically
//! ordered by construction). This keeps every pass safe: the worst a bad
//! heuristic can do is fail to shrink the graph.

use std::collections::HashMap;

use crate::{Aig, AigLit};

/// Standard cofactor patterns for up to 6 truth-table variables.
const VAR_PATTERN: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

fn xlate(map: &[AigLit], lit: AigLit) -> AigLit {
    let m = map[lit.node()];
    if lit.complemented() {
        !m
    } else {
        m
    }
}

fn reachable(aig: &Aig) -> Vec<bool> {
    let mut mark = vec![false; aig.num_nodes()];
    mark[0] = true;
    let mut stack: Vec<usize> = aig.outputs().iter().map(|l| l.node()).collect();
    while let Some(n) = stack.pop() {
        if mark[n] {
            continue;
        }
        mark[n] = true;
        if let Some((a, b)) = aig.and_fanins(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    for m in mark.iter_mut().take(aig.num_inputs() + 1) {
        *m = true;
    }
    mark
}

/// Structural hashing / dead-node sweep: rebuilds the reachable logic with
/// hashing and trivial-case folding (ABC's `strash`).
pub fn strash(aig: &Aig) -> Aig {
    let live = reachable(aig);
    let mut new = Aig::new(aig.num_inputs());
    let mut map = vec![AigLit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[1 + i] = new.input(i);
    }
    for n in 0..aig.num_nodes() {
        if !live[n] {
            continue;
        }
        if let Some((a, b)) = aig.and_fanins(n) {
            let (ta, tb) = (xlate(&map, a), xlate(&map, b));
            map[n] = new.and(ta, tb);
        }
    }
    for &o in aig.outputs() {
        let lit = xlate(&map, o);
        new.add_output(lit);
    }
    new
}

/// AND-tree balancing: collects maximal single-fanout conjunction trees and
/// rebuilds them depth-optimally (Huffman pairing on levels), reducing the
/// delay metric (ABC's `balance`).
pub fn balance(aig: &Aig) -> Aig {
    let live = reachable(aig);
    let fanout = aig.fanout_counts();
    let mut new = Aig::new(aig.num_inputs());
    let mut map = vec![AigLit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[1 + i] = new.input(i);
    }
    for n in 0..aig.num_nodes() {
        if !live[n] {
            continue;
        }
        if aig.and_fanins(n).is_some() {
            // Gather conjunction leaves by descending through
            // non-complemented, single-fanout AND children.
            let mut leaves: Vec<AigLit> = Vec::new();
            let mut stack = vec![AigLit::new(n, false)];
            while let Some(l) = stack.pop() {
                let expandable = !l.complemented()
                    && l.node() != n_is_leaf_sentinel()
                    && aig.and_fanins(l.node()).is_some()
                    && (l.node() == n || fanout[l.node()] == 1);
                if expandable {
                    let (a, b) = aig.and_fanins(l.node()).expect("checked");
                    stack.push(a);
                    stack.push(b);
                } else {
                    leaves.push(xlate(&map, l));
                }
            }
            // Pair the two shallowest leaves repeatedly.
            let levels = new.levels();
            let mut items: Vec<(usize, AigLit)> = leaves
                .into_iter()
                .map(|l| (levels[l.node()], l))
                .collect();
            while items.len() > 1 {
                items.sort_by_key(|&(lv, _)| std::cmp::Reverse(lv));
                let (la, a) = items.pop().expect("len > 1");
                let (lb, b) = items.pop().expect("len > 1");
                let g = new.and(a, b);
                items.push((la.max(lb) + 1, g));
            }
            map[n] = items.pop().expect("at least one leaf").1;
        }
    }
    for &o in aig.outputs() {
        let lit = xlate(&map, o);
        new.add_output(lit);
    }
    new
}

// Balance never treats a node index as this; helper kept for clarity of the
// expandable condition (no real sentinel is needed because node 0 is the
// constant and has no fanins).
fn n_is_leaf_sentinel() -> usize {
    usize::MAX
}

/// Cut-based local resynthesis (ABC's `rewrite`/`refactor` simplified): for
/// each node, extract a cut of at most `k` (≤ 6) leaves, compute its truth
/// table, resynthesize it by Shannon decomposition, and keep whichever of
/// {original structure, resynthesized structure} adds fewer nodes.
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 6.
pub fn rewrite(aig: &Aig, k: usize) -> Aig {
    assert!((1..=6).contains(&k), "cut size must be 1..=6");
    let live = reachable(aig);
    let fanout = aig.fanout_counts();
    let mut new = Aig::new(aig.num_inputs());
    let mut map = vec![AigLit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[1 + i] = new.input(i);
    }
    for n in 0..aig.num_nodes() {
        if !live[n] {
            continue;
        }
        let Some((a, b)) = aig.and_fanins(n) else {
            continue;
        };
        let cut = find_cut(aig, n, k, &fanout);
        let candidate = if cut.len() <= k {
            let tt = truth_table(aig, n, &cut);
            let leaf_lits: Vec<AigLit> = cut.iter().map(|&c| map[c]).collect();
            // Try resynthesis first, then the plain translation; pick the
            // variant that grew the graph least (dead nodes are swept by the
            // next strash).
            let before = new.num_nodes();
            let resynth = synth_tt(&mut new, tt, &leaf_lits, cut.len());
            let added_resynth = new.num_nodes() - before;
            let before2 = new.num_nodes();
            let plain = {
                let (ta, tb) = (xlate(&map, a), xlate(&map, b));
                new.and(ta, tb)
            };
            let added_plain = new.num_nodes() - before2;
            if added_resynth < added_plain {
                resynth
            } else {
                plain
            }
        } else {
            let (ta, tb) = (xlate(&map, a), xlate(&map, b));
            new.and(ta, tb)
        };
        map[n] = candidate;
    }
    for &o in aig.outputs() {
        let lit = xlate(&map, o);
        new.add_output(lit);
    }
    strash(&new)
}

/// Greedily grows a cut from `root`, expanding AND nodes (preferring
/// single-fanout ones) while the leaf set stays within `k`. Returns leaf
/// node indices, deterministic order.
fn find_cut(aig: &Aig, root: usize, k: usize, fanout: &[u32]) -> Vec<usize> {
    let mut leaves: Vec<usize> = Vec::new();
    let (a, b) = aig.and_fanins(root).expect("cut of an AND node");
    leaves.push(a.node());
    if !leaves.contains(&b.node()) {
        leaves.push(b.node());
    }
    loop {
        // Find the best expandable leaf: an AND node whose expansion keeps
        // the leaf count within k; prefer single-fanout leaves.
        let mut best: Option<(usize, usize)> = None; // (score, position)
        for (pos, &leaf) in leaves.iter().enumerate() {
            let Some((la, lb)) = aig.and_fanins(leaf) else {
                continue;
            };
            let mut grow = 0usize;
            if !leaves.contains(&la.node()) {
                grow += 1;
            }
            if !leaves.contains(&lb.node()) && la.node() != lb.node() {
                grow += 1;
            }
            if leaves.len() - 1 + grow > k {
                continue;
            }
            let score = if fanout[leaf] == 1 { 0 } else { 1 };
            if best.map(|(s, _)| score < s).unwrap_or(true) {
                best = Some((score, pos));
            }
        }
        match best {
            Some((_, pos)) => {
                let leaf = leaves.swap_remove(pos);
                let (la, lb) = aig.and_fanins(leaf).expect("expandable");
                if !leaves.contains(&la.node()) {
                    leaves.push(la.node());
                }
                if !leaves.contains(&lb.node()) {
                    leaves.push(lb.node());
                }
            }
            None => break,
        }
    }
    leaves.sort_unstable();
    leaves
}

/// Truth table of node `root` as a function of the cut leaves (≤ 6).
fn truth_table(aig: &Aig, root: usize, cut: &[usize]) -> u64 {
    let mut memo: HashMap<usize, u64> = HashMap::new();
    for (i, &leaf) in cut.iter().enumerate() {
        memo.insert(leaf, VAR_PATTERN[i]);
    }
    memo.insert(0, 0); // constant node
    fn rec(aig: &Aig, n: usize, memo: &mut HashMap<usize, u64>) -> u64 {
        if let Some(&v) = memo.get(&n) {
            return v;
        }
        let (a, b) = aig
            .and_fanins(n)
            .expect("inner cone nodes are AND nodes");
        let va = rec(aig, a.node(), memo) ^ if a.complemented() { !0 } else { 0 };
        let vb = rec(aig, b.node(), memo) ^ if b.complemented() { !0 } else { 0 };
        let v = va & vb;
        memo.insert(n, v);
        v
    }
    let tt = rec(aig, root, &mut memo);
    tt & mask(cut.len())
}

fn mask(vars: usize) -> u64 {
    if vars >= 6 {
        !0
    } else {
        (1u64 << (1 << vars)) - 1
    }
}

/// Shannon-decomposition resynthesis of a truth table over the given leaf
/// literals. Structural hashing provides sharing between cofactors.
fn synth_tt(aig: &mut Aig, tt: u64, leaves: &[AigLit], vars: usize) -> AigLit {
    let m = mask(vars);
    let tt = tt & m;
    if tt == 0 {
        return AigLit::FALSE;
    }
    if tt == m {
        return AigLit::TRUE;
    }
    debug_assert!(vars > 0, "non-constant table needs variables");
    // Split on the highest variable: low half = cofactor at 0, high = at 1.
    let v = vars - 1;
    let half = 1usize << v;
    let (f0, f1) = if vars == 6 {
        (tt & mask(5), tt >> 32)
    } else {
        let low_mask = (1u64 << half) - 1;
        (tt & low_mask, (tt >> half) & low_mask)
    };
    // Re-expand cofactors to full patterns of `v` variables.
    let r0 = synth_tt(aig, spread(f0, v), leaves, v);
    let r1 = synth_tt(aig, spread(f1, v), leaves, v);
    let s = leaves[v];
    if r0 == r1 {
        return r0;
    }
    if r0 == !r1 {
        // f = s ? r1 : !r1  =  s XNOR r1... check: s=0 -> r0 = !r1. So
        // f = (s & r1) | (!s & !r1) = XNOR(s, r1).
        return !aig.xor_lit(s, r1);
    }
    aig.mux(s, r1, r0)
}

/// Repeats a `2^vars`-bit table to fill the 64-bit word (so recursion can
/// keep using the same VAR_PATTERN masks).
fn spread(tt: u64, vars: usize) -> u64 {
    let bits = 1usize << vars;
    if bits >= 64 {
        return tt;
    }
    let mut out = tt & ((1u64 << bits) - 1);
    let mut width = bits;
    while width < 64 {
        out |= out << width;
        width *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::rng::SplitMix64;

    fn random_aig(seed: u64, inputs: usize, gates: usize) -> Aig {
        let mut rng = SplitMix64::new(seed);
        let mut aig = Aig::new(inputs);
        let mut lits: Vec<AigLit> = (0..inputs).map(|i| aig.input(i)).collect();
        for _ in 0..gates {
            let a = lits[rng.below_usize(lits.len())];
            let b = lits[rng.below_usize(lits.len())];
            let a = if rng.bool() { !a } else { a };
            let b = if rng.bool() { !b } else { b };
            let g = aig.and(a, b);
            lits.push(g);
        }
        for _ in 0..4 {
            let o = lits[lits.len() - 1 - rng.below_usize(lits.len() / 2)];
            aig.add_output(if rng.bool() { !o } else { o });
        }
        aig
    }

    fn assert_equiv(a: &Aig, b: &Aig, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        assert_eq!(a.num_inputs(), b.num_inputs());
        for _ in 0..32 {
            let input: Vec<u64> = (0..a.num_inputs()).map(|_| rng.next_u64()).collect();
            assert_eq!(a.eval_words(&input), b.eval_words(&input));
        }
    }

    #[test]
    fn strash_preserves_function() {
        for seed in 0..5 {
            let aig = random_aig(seed, 8, 60);
            let s = strash(&aig);
            assert_equiv(&aig, &s, seed + 100);
            assert!(s.num_ands() <= aig.num_ands());
        }
    }

    #[test]
    fn balance_preserves_function_and_depth_not_worse_much() {
        for seed in 0..5 {
            let aig = random_aig(seed, 8, 80);
            let b = balance(&aig);
            assert_equiv(&aig, &b, seed + 200);
        }
    }

    #[test]
    fn balance_flattens_chain() {
        // A linear 8-input AND chain (depth 7) balances to depth 3.
        let mut aig = Aig::new(8);
        let mut acc = aig.input(0);
        for i in 1..8 {
            let x = aig.input(i);
            acc = aig.and(acc, x);
        }
        aig.add_output(acc);
        assert_eq!(aig.depth(), 7);
        let b = balance(&aig);
        assert_eq!(b.depth(), 3);
        assert_equiv(&aig, &b, 42);
    }

    #[test]
    fn rewrite_preserves_function() {
        for seed in 0..8 {
            let aig = random_aig(seed, 10, 120);
            let r = rewrite(&aig, 4);
            assert_equiv(&aig, &r, seed + 300);
            let r6 = rewrite(&aig, 6);
            assert_equiv(&aig, &r6, seed + 400);
        }
    }

    #[test]
    fn rewrite_removes_redundancy() {
        // Build and(a, and(a, b)) style redundancy that plain strash cannot
        // see but a 2-input cut truth table can: f = a & (a & b) == a & b.
        let mut aig = Aig::new(2);
        let a = aig.input(0);
        let b = aig.input(1);
        let inner = aig.and(a, b);
        let outer = aig.and(a, inner);
        aig.add_output(outer);
        assert_eq!(aig.num_ands(), 2);
        let r = rewrite(&aig, 4);
        assert_equiv(&aig, &r, 7);
        assert_eq!(r.num_ands(), 1, "redundant conjunction should collapse");
    }

    #[test]
    fn synth_tt_reproduces_tables() {
        // For every 3-variable truth table, resynthesize and compare.
        for tt in 0u64..256 {
            let mut aig = Aig::new(3);
            let leaves = [aig.input(0), aig.input(1), aig.input(2)];
            let lit = synth_tt(&mut aig, tt, &leaves, 3);
            aig.add_output(lit);
            for m in 0..8u64 {
                let input = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
                let expect = (tt >> m) & 1 == 1;
                assert_eq!(aig.eval_bools(&input)[0], expect, "tt={tt:#x} m={m}");
            }
        }
    }

    #[test]
    fn spread_fills_word() {
        assert_eq!(spread(0b10, 1), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(spread(0b1100, 2), 0xCCCC_CCCC_CCCC_CCCC);
    }

    #[test]
    fn var_patterns_are_cofactor_masks() {
        for (i, &p) in VAR_PATTERN.iter().enumerate() {
            for m in 0..64u64 {
                let expect = (m >> i) & 1 == 1;
                assert_eq!((p >> m) & 1 == 1, expect, "var {i} minterm {m}");
            }
        }
    }
}
