//! AIG-based structural synthesis — the workspace's stand-in for ABC.
//!
//! The paper estimates area and delay overhead by optimizing both the
//! original and the protected circuit with ABC's `strash → refactor →
//! rewrite` pipeline and comparing gate counts and logic levels. This crate
//! reimplements that flow on an and-inverter graph:
//!
//! - [`Aig`]: two-input AND nodes with complemented edges and structural
//!   hashing (`strash` happens on construction),
//! - [`passes::balance`]: AND-tree balancing (delay),
//! - [`passes::rewrite`]: cut-based local resynthesis (area) — a simplified
//!   but genuine version of ABC's rewriting: per-node 4–6 input cuts, truth
//!   table extraction, Shannon-decomposition resynthesis, accepted when it
//!   saves nodes,
//! - [`optimize`]: the full pipeline, returning the [`OptReport`] (area in
//!   AND nodes, delay in AIG levels) used for Table I's overhead columns.
//!
//! Because the same optimizer is applied to both the original and the
//! protected netlist, relative overheads remain meaningful even though the
//! absolute gate counts differ from ABC's.
//!
//! # Example
//!
//! ```
//! use aigsynth::{optimize, Aig};
//! use netlist::samples;
//!
//! let c = samples::ripple_adder(8);
//! let report = optimize(&c).expect("acyclic");
//! assert!(report.area > 0);
//! let aig = Aig::from_circuit(&c).expect("acyclic");
//! assert!(report.area <= aig.num_ands());
//! ```

#![warn(missing_docs)]

mod aig;
pub mod passes;

pub use aig::{Aig, AigLit};

use netlist::{Circuit, Error};

/// Result of running the optimization pipeline on a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptReport {
    /// AND-node count after optimization (the area metric; inverters are
    /// free on an AIG, matching the paper's inverter-free gate counts).
    pub area: usize,
    /// AIG depth after optimization (the delay metric, logic levels).
    pub depth: usize,
}

/// Runs the paper's pipeline (`strash → refactor → rewrite`, here: strash →
/// balance → rewrite(6) → rewrite(4), iterated twice) and reports the final
/// area and depth.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn optimize(circuit: &Circuit) -> Result<OptReport, Error> {
    let aig = Aig::from_circuit(circuit)?;
    let optimized = optimize_aig(&aig);
    Ok(OptReport {
        area: optimized.num_ands(),
        depth: optimized.depth(),
    })
}

/// The same pipeline at the AIG level, returning the optimized graph.
///
/// The result never has more AND nodes than `strash(aig)`: every pass is
/// speculative and the best graph seen (area-first, depth tie-break) wins.
pub fn optimize_aig(aig: &Aig) -> Aig {
    let mut best = passes::strash(aig);
    let mut cur = best.clone();
    for _ in 0..2 {
        cur = passes::balance(&cur);
        cur = passes::rewrite(&cur, 6);
        cur = passes::rewrite(&cur, 4);
        let better_area = cur.num_ands() < best.num_ands();
        let same_area_less_depth =
            cur.num_ands() == best.num_ands() && cur.depth() < best.depth();
        if better_area || same_area_less_depth {
            best = passes::strash(&cur);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn optimize_reduces_or_preserves_area() {
        for c in [samples::c17(), samples::ripple_adder(8), samples::majority3()] {
            let before = Aig::from_circuit(&c).unwrap().num_ands();
            let rep = optimize(&c).unwrap();
            assert!(rep.area <= before, "{}: {} > {}", c.name(), rep.area, before);
            assert!(rep.depth > 0);
        }
    }

    #[test]
    fn optimized_aig_stays_equivalent() {
        let c = netlist::generate::random_comb(3, 10, 6, 150).unwrap();
        let aig = Aig::from_circuit(&c).unwrap();
        let opt = optimize_aig(&aig);
        let back = opt.to_circuit("opt");
        assert_eq!(
            gatesim_equiv(&c, &back),
            None,
            "optimization changed function"
        );
    }

    fn gatesim_equiv(a: &Circuit, b: &Circuit) -> Option<usize> {
        // Local randomized equivalence without depending on gatesim (synth
        // must stay independent); 64 * 32 patterns.
        use netlist::rng::SplitMix64;
        let sa = simple_eval_fn(a);
        let sb = simple_eval_fn(b);
        let mut rng = SplitMix64::new(77);
        let n = a.comb_inputs().len();
        for _ in 0..256 {
            let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            let (oa, ob) = (sa(&input), sb(&input));
            if oa != ob {
                return Some(0);
            }
        }
        None
    }

    fn simple_eval_fn(c: &Circuit) -> impl Fn(&[bool]) -> Vec<bool> + '_ {
        move |input: &[bool]| {
            let order = netlist::Levelization::build(c).unwrap();
            let mut vals = vec![false; c.num_nets()];
            for (net, &v) in c.comb_inputs().iter().zip(input) {
                vals[net.index()] = v;
            }
            for &id in order.order() {
                if let Some(g) = c.gate(id) {
                    vals[id.index()] = g.kind.eval(g.fanin.iter().map(|f| vals[f.index()]));
                }
            }
            c.comb_outputs().iter().map(|o| vals[o.index()]).collect()
        }
    }
}
