//! PODEM deterministic test generation.
//!
//! PODEM (path-oriented decision making) searches the primary-input space
//! directly: pick an objective (excite the fault, then advance its effect
//! through the D-frontier), backtrace the objective to an unassigned input,
//! imply, and backtrack on failure. The search is complete, so an exhausted
//! decision stack proves the fault *redundant*; hitting the backtrack limit
//! *aborts* the fault. These are exactly the Atalanta outcome classes that
//! the paper's Table II counts.

use std::sync::Arc;

use netlist::{Circuit, CompiledCircuit, Error, GateKind, NetId};

use crate::fault::{Fault, FaultSite};

/// Result of targeting one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A detecting input assignment over the combinational inputs
    /// (don't-cares filled with 0).
    Test(Vec<bool>),
    /// Proven untestable.
    Redundant,
    /// Backtrack limit exhausted.
    Aborted,
}

/// A PODEM test generator over a shared [`CompiledCircuit`].
#[derive(Debug)]
pub struct Podem {
    cc: Arc<CompiledCircuit>,
    input_pos: Vec<Option<u32>>, // net index -> comb input position
    backtrack_limit: usize,
    good: Vec<Option<bool>>,
    faulty: Vec<Option<bool>>,
    /// Nets with a known fault effect (good != faulty, both assigned).
    effected: Vec<bool>,
    /// Count of *outputs* currently showing a fault effect.
    effect_at_outputs: usize,
    /// Event-queue scratch.
    scheduled: Vec<bool>,
}

fn eval3(kind: GateKind, vals: &[Option<bool>]) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => {
            let invert = kind == GateKind::Nand;
            if vals.contains(&Some(false)) {
                Some(invert)
            } else if vals.iter().all(|v| *v == Some(true)) {
                Some(!invert)
            } else {
                None
            }
        }
        GateKind::Or | GateKind::Nor => {
            let invert = kind == GateKind::Nor;
            if vals.contains(&Some(true)) {
                Some(!invert)
            } else if vals.iter().all(|v| *v == Some(false)) {
                Some(invert)
            } else {
                None
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            if vals.iter().all(Option::is_some) {
                let p = vals.iter().fold(false, |acc, v| acc ^ v.expect("checked"));
                Some(if kind == GateKind::Xor { p } else { !p })
            } else {
                None
            }
        }
        GateKind::Not => vals[0].map(|b| !b),
        GateKind::Buf => vals[0],
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
    }
}

impl Podem {
    /// Compiles a generator with the given backtrack limit.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit is cyclic.
    pub fn new(circuit: &Circuit, backtrack_limit: usize) -> Result<Self, Error> {
        Ok(Self::from_compiled(
            Arc::new(CompiledCircuit::compile(circuit)?),
            backtrack_limit,
        ))
    }

    /// Wraps an already-compiled artifact (shares it, no recompilation).
    pub fn from_compiled(cc: Arc<CompiledCircuit>, backtrack_limit: usize) -> Self {
        let n = cc.num_nets();
        let mut input_pos = vec![None; n];
        for (i, id) in cc.inputs().iter().enumerate() {
            input_pos[id.index()] = Some(i as u32);
        }
        Podem {
            cc,
            input_pos,
            backtrack_limit,
            good: vec![None; n],
            faulty: vec![None; n],
            effected: vec![false; n],
            effect_at_outputs: 0,
            scheduled: vec![false; n],
        }
    }

    /// Refreshes the effect bookkeeping for one net after its values change.
    fn refresh_effect(&mut self, net: usize) {
        let now = matches!(
            (self.good[net], self.faulty[net]),
            (Some(a), Some(b)) if a != b
        );
        if now != self.effected[net] {
            self.effected[net] = now;
            if self.cc.is_output(net as u32) {
                if now {
                    self.effect_at_outputs += 1;
                } else {
                    self.effect_at_outputs -= 1;
                }
            }
        }
    }

    /// Recomputes one gate's good/faulty values under `fault`. Returns true
    /// when either value changed.
    fn recompute(&mut self, net: usize, fault: &Fault) -> bool {
        let cc = Arc::clone(&self.cc);
        let Some(kind) = cc.kind_of(net as u32) else {
            return false;
        };
        let fanin = cc.fanin(net as u32);
        let gvals: Vec<Option<bool>> = fanin.iter().map(|&f| self.good[f as usize]).collect();
        let new_good = eval3(kind, &gvals);
        let mut fvals: Vec<Option<bool>> =
            fanin.iter().map(|&f| self.faulty[f as usize]).collect();
        if let FaultSite::Pin { gate_out, pin } = fault.site {
            if gate_out.index() == net {
                fvals[pin] = Some(fault.stuck_at);
            }
        }
        let mut new_faulty = eval3(kind, &fvals);
        if let FaultSite::Stem(n) = fault.site {
            if n.index() == net {
                new_faulty = Some(fault.stuck_at);
            }
        }
        let changed = new_good != self.good[net] || new_faulty != self.faulty[net];
        self.good[net] = new_good;
        self.faulty[net] = new_faulty;
        if changed {
            self.refresh_effect(net);
        }
        changed
    }

    /// Event-driven re-implication after one primary input changed.
    fn propagate_from(&mut self, start_net: usize, fault: &Fault) {
        let cc = Arc::clone(&self.cc);
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>> =
            std::collections::BinaryHeap::new();
        for &f in cc.fanout(start_net as u32) {
            if !self.scheduled[f as usize] {
                self.scheduled[f as usize] = true;
                queue.push(std::cmp::Reverse((cc.rank(f), f)));
            }
        }
        while let Some(std::cmp::Reverse((_, n))) = queue.pop() {
            self.scheduled[n as usize] = false;
            if self.recompute(n as usize, fault) {
                for &f in cc.fanout(n) {
                    if !self.scheduled[f as usize] {
                        self.scheduled[f as usize] = true;
                        queue.push(std::cmp::Reverse((cc.rank(f), f)));
                    }
                }
            }
        }
    }

    /// Applies one primary-input change (assignment or retraction) and
    /// re-implies incrementally.
    fn update_pi(&mut self, idx: usize, value: Option<bool>, fault: &Fault) {
        let net = self.cc.inputs()[idx].index();
        self.good[net] = value;
        self.faulty[net] = value;
        if let FaultSite::Stem(n) = fault.site {
            if n.index() == net {
                self.faulty[net] = Some(fault.stuck_at);
            }
        }
        self.refresh_effect(net);
        self.propagate_from(net, fault);
    }

    /// Three-valued dual (good/faulty) implication from scratch (used once
    /// per fault; decisions and backtracks then use [`Self::update_pi`]).
    fn imply(&mut self, pi: &[Option<bool>], fault: &Fault) {
        let cc = Arc::clone(&self.cc);
        self.effected.iter_mut().for_each(|b| *b = false);
        self.effect_at_outputs = 0;
        for v in self.good.iter_mut() {
            *v = None;
        }
        for v in self.faulty.iter_mut() {
            *v = None;
        }
        for (i, n) in cc.inputs().iter().enumerate() {
            self.good[n.index()] = pi[i];
            self.faulty[n.index()] = pi[i];
        }
        let stuck = Some(fault.stuck_at);
        if let FaultSite::Stem(n) = fault.site {
            self.faulty[n.index()] = stuck;
        }
        for &id in cc.order() {
            let Some(kind) = cc.kind_of(id.index() as u32) else {
                continue;
            };
            let fanin = cc.fanin(id.index() as u32);
            let gvals: Vec<Option<bool>> =
                fanin.iter().map(|&f| self.good[f as usize]).collect();
            self.good[id.index()] = eval3(kind, &gvals);
            let mut fvals: Vec<Option<bool>> =
                fanin.iter().map(|&f| self.faulty[f as usize]).collect();
            if let FaultSite::Pin { gate_out, pin } = fault.site {
                if gate_out == id {
                    fvals[pin] = stuck;
                }
            }
            let fv = eval3(kind, &fvals);
            self.faulty[id.index()] = fv;
            if let FaultSite::Stem(n) = fault.site {
                if n == id {
                    self.faulty[id.index()] = stuck;
                }
            }
        }
        // Stem faults on inputs stay forced (set above, nothing overwrites).
        for i in 0..self.good.len() {
            self.refresh_effect(i);
        }
    }

    fn effect_at_output(&self) -> bool {
        debug_assert_eq!(
            self.effect_at_outputs,
            self.cc
                .outputs()
                .iter()
                .filter(|o| matches!(
                    (self.good[o.index()], self.faulty[o.index()]),
                    (Some(a), Some(b)) if a != b
                ))
                .count()
        );
        self.effect_at_outputs > 0
    }

    fn has_effect(&self, net: usize) -> bool {
        matches!(
            (self.good[net], self.faulty[net]),
            (Some(a), Some(b)) if a != b
        )
    }

    /// Picks the next objective `(net, value)` or `None` when the search
    /// state is hopeless (fault unexcitable / empty D-frontier).
    fn objective(&self, fault: &Fault) -> Option<(NetId, bool)> {
        // 1. Excitation: the good value at the fault site must become the
        //    complement of the stuck value.
        let (site_net, site_good) = match fault.site {
            FaultSite::Stem(n) => (n, self.good[n.index()]),
            FaultSite::Pin { gate_out, pin } => {
                let fanin = self.cc.fanin(gate_out.index() as u32);
                debug_assert!(!fanin.is_empty(), "pin fault implies gate");
                let n = NetId::from_index(fanin[pin] as usize);
                (n, self.good[n.index()])
            }
        };
        match site_good {
            None => return Some((site_net, !fault.stuck_at)),
            Some(v) if v == fault.stuck_at => return None, // unexcitable here
            _ => {}
        }
        // 2. Propagation: find a D-frontier gate — an output without effect
        //    yet, with at least one effected input — and set one of its X
        //    inputs to the non-controlling value. Candidates are the fanouts
        //    of effected nets (plus the faulted gate for pin faults), sorted
        //    by rank for determinism.
        let mut candidates: Vec<NetId> = Vec::new();
        for (n, &eff) in self.effected.iter().enumerate() {
            if eff {
                candidates.extend(
                    self.cc
                        .fanout(n as u32)
                        .iter()
                        .map(|&f| NetId::from_index(f as usize)),
                );
            }
        }
        if let FaultSite::Pin { gate_out, .. } = fault.site {
            candidates.push(gate_out);
        }
        candidates.sort_by_key(|n| self.cc.rank(n.index() as u32));
        candidates.dedup();
        for &id in &candidates {
            let Some(kind) = self.cc.kind_of(id.index() as u32) else {
                continue;
            };
            let fanin = self.cc.fanin(id.index() as u32);
            if self.has_effect(id.index()) {
                continue;
            }
            if self.good[id.index()].is_some() && self.faulty[id.index()].is_some() {
                continue; // both known & equal: effect blocked through here
            }
            let any_effected_input = fanin.iter().enumerate().any(|(k, &f)| {
                if self.effected[f as usize] {
                    return true;
                }
                // A pin fault's effect originates at the pin itself: the
                // faulted gate joins the D-frontier once its pin sees the
                // complement of the stuck value in the good machine.
                if let FaultSite::Pin { gate_out, pin } = fault.site {
                    gate_out == id
                        && pin == k
                        && self.good[f as usize] == Some(!fault.stuck_at)
                } else {
                    false
                }
            });
            if !any_effected_input {
                continue;
            }
            let x_input = fanin
                .iter()
                .find(|&&f| self.good[f as usize].is_none())
                .copied();
            if let Some(f) = x_input {
                let value = match kind {
                    GateKind::And | GateKind::Nand => true,
                    GateKind::Or | GateKind::Nor => false,
                    // XOR family has no controlling value; either binds.
                    _ => false,
                };
                return Some((NetId::from_index(f as usize), value));
            }
        }
        None
    }

    /// Walks an objective backwards to an unassigned primary input.
    fn backtrace(&self, mut net: NetId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            if let Some(pos) = self.input_pos[net.index()] {
                debug_assert!(self.good[net.index()].is_none());
                return Some((pos as usize, value));
            }
            let kind = self.cc.kind_of(net.index() as u32)?;
            let fanin = self.cc.fanin(net.index() as u32);
            let x_input = fanin
                .iter()
                .find(|&&f| self.good[f as usize].is_none())
                .copied()?;
            value = match kind {
                GateKind::And | GateKind::Buf => value,
                GateKind::Nand | GateKind::Not => !value,
                GateKind::Or => value,
                GateKind::Nor => !value,
                // Parity gates: target the same value (heuristic only;
                // completeness comes from backtracking).
                GateKind::Xor | GateKind::Xnor => value,
                GateKind::Const0 | GateKind::Const1 => return None,
            };
            net = NetId::from_index(x_input as usize);
        }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: &Fault) -> Outcome {
        let n_pi = self.cc.inputs().len();
        let mut pi: Vec<Option<bool>> = vec![None; n_pi];
        // Decision stack: (pi index, current value, other value tried?).
        let mut decisions: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;
        self.imply(&pi, fault);
        loop {
            if self.effect_at_output() {
                return Outcome::Test(pi.iter().map(|v| v.unwrap_or(false)).collect());
            }
            let advance = self
                .objective(fault)
                .and_then(|(net, val)| self.backtrace(net, val));
            match advance {
                Some((idx, val)) => {
                    debug_assert!(pi[idx].is_none());
                    pi[idx] = Some(val);
                    decisions.push((idx, val, false));
                    self.update_pi(idx, Some(val), fault);
                }
                None => {
                    // Backtrack.
                    loop {
                        match decisions.pop() {
                            None => return Outcome::Redundant,
                            Some((idx, val, tried_other)) => {
                                pi[idx] = None;
                                self.update_pi(idx, None, fault);
                                if !tried_other {
                                    backtracks += 1;
                                    if backtracks > self.backtrack_limit {
                                        return Outcome::Aborted;
                                    }
                                    pi[idx] = Some(!val);
                                    decisions.push((idx, !val, true));
                                    self.update_pi(idx, Some(!val), fault);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsim::FaultSim;
    use netlist::samples;

    fn check_all_faults(c: &Circuit) -> (usize, usize, usize) {
        let faults = crate::collapse(c, crate::enumerate_faults(c));
        let mut podem = Podem::new(c, 10_000).unwrap();
        let mut fsim = FaultSim::new(c).unwrap();
        let (mut tested, mut redundant, mut aborted) = (0, 0, 0);
        for f in &faults {
            match podem.generate(f) {
                Outcome::Test(pattern) => {
                    assert!(
                        fsim.detects(&pattern, f),
                        "PODEM test {pattern:?} fails to detect {f} in {}",
                        c.name()
                    );
                    tested += 1;
                }
                Outcome::Redundant => redundant += 1,
                Outcome::Aborted => aborted += 1,
            }
        }
        (tested, redundant, aborted)
    }

    #[test]
    fn c17_all_faults_tested() {
        let (tested, redundant, aborted) = check_all_faults(&samples::c17());
        assert_eq!(redundant, 0);
        assert_eq!(aborted, 0);
        assert!(tested > 0);
    }

    #[test]
    fn adder_all_faults_tested() {
        let (_, redundant, aborted) = check_all_faults(&samples::ripple_adder(3));
        assert_eq!(redundant, 0);
        assert_eq!(aborted, 0);
    }

    #[test]
    fn majority_and_mux_tested() {
        for c in [samples::majority3(), samples::mux2()] {
            let (_, redundant, aborted) = check_all_faults(&c);
            assert_eq!(redundant, 0, "{}", c.name());
            assert_eq!(aborted, 0, "{}", c.name());
        }
    }

    #[test]
    fn random_circuits_tests_verified_by_fault_sim() {
        for seed in 0..4 {
            let c = netlist::generate::random_comb(seed, 8, 4, 60).unwrap();
            // check_all_faults asserts every returned test really detects.
            let (tested, _, aborted) = check_all_faults(&c);
            assert!(tested > 0);
            assert_eq!(aborted, 0, "tiny circuits should not abort");
        }
    }

    #[test]
    fn redundant_fault_proven() {
        // y = a & (a | b): b's OR pin is redundant.
        let mut c = netlist::Circuit::new("red");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let o = c.add_gate(GateKind::Or, vec![a, b], "o").unwrap();
        let y = c.add_gate(GateKind::And, vec![a, o], "y").unwrap();
        c.mark_output(y);
        let mut podem = Podem::new(&c, 10_000).unwrap();
        // b stuck-at-1: to detect we need a=1 (to sensitize the AND) and
        // o to differ; with a=1, o=1 regardless of b -> redundant.
        let f = Fault::stem_sa1(b);
        assert_eq!(podem.generate(&f), Outcome::Redundant);
    }

    #[test]
    fn tiny_backtrack_limit_aborts_or_solves() {
        let c = netlist::generate::random_comb(5, 10, 4, 100).unwrap();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut podem = Podem::new(&c, 0).unwrap();
        let mut outcomes = std::collections::HashSet::new();
        for f in faults.iter().take(40) {
            match podem.generate(f) {
                Outcome::Test(_) => outcomes.insert("test"),
                Outcome::Redundant => outcomes.insert("red"),
                Outcome::Aborted => outcomes.insert("abort"),
            };
        }
        // With a zero budget the generator must still terminate; it may
        // still find easy tests that need no backtracking.
        assert!(!outcomes.is_empty());
    }

    #[test]
    fn input_stem_fault_test() {
        let c = samples::majority3();
        let a = c.primary_inputs()[0];
        let mut podem = Podem::new(&c, 1000).unwrap();
        let mut fsim = FaultSim::new(&c).unwrap();
        for f in [Fault::stem_sa0(a), Fault::stem_sa1(a)] {
            match podem.generate(&f) {
                Outcome::Test(p) => assert!(fsim.detects(&p, &f)),
                other => panic!("expected test for {f}, got {other:?}"),
            }
        }
    }
}
