//! Parallel-pattern fault simulation with fault dropping (the HOPE role).

use netlist::{Circuit, Error, GateKind, Levelization, NetId};

use crate::fault::{Fault, FaultSite};

/// A 64-pattern-parallel fault simulator.
///
/// For each batch of 64 input patterns it computes the good-circuit values
/// once; every candidate fault is then simulated *event-driven*: only the
/// gates whose value actually changes are re-evaluated, in topological
/// order, which keeps per-fault cost proportional to the disturbed cone
/// rather than the whole circuit.
#[derive(Debug, Clone)]
pub struct FaultSim {
    order: Vec<NetId>,
    /// Topological rank of each net (for the event queue).
    rank: Vec<u32>,
    gates: Vec<Option<(GateKind, Vec<u32>)>>,
    fanouts: Vec<Vec<u32>>,
    inputs: Vec<NetId>,
    output_mask: Vec<bool>,
    num_nets: usize,
    good: Vec<u64>,
    faulty: Vec<u64>,
    /// Scratch: nets touched by the last fault propagation.
    touched: Vec<u32>,
    /// Scratch: scheduled flags for the event queue.
    scheduled: Vec<bool>,
}

impl FaultSim {
    /// Compiles a fault simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Result<Self, Error> {
        let lv = Levelization::build(circuit)?;
        let mut gates = vec![None; circuit.num_nets()];
        for id in circuit.net_ids() {
            if let Some(g) = circuit.gate(id) {
                gates[id.index()] = Some((
                    g.kind,
                    g.fanin.iter().map(|f| f.index() as u32).collect(),
                ));
            }
        }
        let mut rank = vec![0u32; circuit.num_nets()];
        for (r, id) in lv.order().iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        let fanouts: Vec<Vec<u32>> = circuit
            .fanouts()
            .into_iter()
            .map(|v| v.into_iter().map(|n| n.index() as u32).collect())
            .collect();
        let mut output_mask = vec![false; circuit.num_nets()];
        for o in circuit.comb_outputs() {
            output_mask[o.index()] = true;
        }
        Ok(FaultSim {
            order: lv.order().to_vec(),
            rank,
            gates,
            fanouts,
            inputs: circuit.comb_inputs(),
            output_mask,
            num_nets: circuit.num_nets(),
            good: vec![0; circuit.num_nets()],
            faulty: vec![0; circuit.num_nets()],
            touched: Vec::new(),
            scheduled: vec![false; circuit.num_nets()],
        })
    }

    fn eval_gate(kind: GateKind, fanin: &[u32], values: &[u64]) -> u64 {
        match kind {
            GateKind::And => fanin.iter().fold(!0u64, |a, &x| a & values[x as usize]),
            GateKind::Nand => !fanin.iter().fold(!0u64, |a, &x| a & values[x as usize]),
            GateKind::Or => fanin.iter().fold(0u64, |a, &x| a | values[x as usize]),
            GateKind::Nor => !fanin.iter().fold(0u64, |a, &x| a | values[x as usize]),
            GateKind::Xor => fanin.iter().fold(0u64, |a, &x| a ^ values[x as usize]),
            GateKind::Xnor => !fanin.iter().fold(0u64, |a, &x| a ^ values[x as usize]),
            GateKind::Not => !values[fanin[0] as usize],
            GateKind::Buf => values[fanin[0] as usize],
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
        }
    }

    fn run_good(&mut self, input_words: &[u64]) {
        assert_eq!(input_words.len(), self.inputs.len(), "input width mismatch");
        for v in self.good.iter_mut() {
            *v = 0;
        }
        for (net, &w) in self.inputs.iter().zip(input_words) {
            self.good[net.index()] = w;
        }
        for &id in &self.order {
            if let Some((kind, fanin)) = &self.gates[id.index()] {
                self.good[id.index()] = Self::eval_gate(*kind, fanin, &self.good);
            }
        }
        // Faulty mirror starts equal; fault_effect keeps it in sync through
        // the `touched` undo list.
        self.faulty.copy_from_slice(&self.good);
    }

    /// Event-driven propagation of one fault over the current batch.
    /// Returns the mask of patterns on which some output differs.
    fn fault_effect(&mut self, fault: &Fault) -> u64 {
        debug_assert!(self.touched.is_empty());
        let stuck = if fault.stuck_at { !0u64 } else { 0u64 };
        let mut diff = 0u64;
        // Min-rank-first event queue.
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>> =
            std::collections::BinaryHeap::new();
        let push = |queue: &mut std::collections::BinaryHeap<_>,
                        scheduled: &mut [bool],
                        rank: &[u32],
                        n: u32| {
            if !scheduled[n as usize] {
                scheduled[n as usize] = true;
                queue.push(std::cmp::Reverse((rank[n as usize], n)));
            }
        };

        // Seed the queue.
        let forced_pin = match fault.site {
            FaultSite::Stem(n) => {
                let i = n.index();
                if self.faulty[i] != stuck {
                    self.faulty[i] = stuck;
                    self.touched.push(i as u32);
                    if self.output_mask[i] {
                        diff |= self.good[i] ^ stuck;
                    }
                    for &f in &self.fanouts[i] {
                        push(&mut queue, &mut self.scheduled, &self.rank, f);
                    }
                }
                None
            }
            FaultSite::Pin { gate_out, pin } => {
                push(
                    &mut queue,
                    &mut self.scheduled,
                    &self.rank,
                    gate_out.index() as u32,
                );
                Some((gate_out.index() as u32, pin))
            }
        };

        let stem_forced = matches!(fault.site, FaultSite::Stem(_));
        let stem_net = match fault.site {
            FaultSite::Stem(n) => n.index() as u32,
            _ => u32::MAX,
        };

        while let Some(std::cmp::Reverse((_, n))) = queue.pop() {
            self.scheduled[n as usize] = false;
            if stem_forced && n == stem_net {
                continue; // the stem stays forced
            }
            let Some((kind, fanin)) = &self.gates[n as usize] else {
                continue;
            };
            let new = match forced_pin {
                Some((g, pin)) if g == n => {
                    let mut acc_vals: Vec<u64> = fanin
                        .iter()
                        .map(|&x| self.faulty[x as usize])
                        .collect();
                    acc_vals[pin] = stuck;
                    let idxs: Vec<u32> = (0..acc_vals.len() as u32).collect();
                    Self::eval_gate(*kind, &idxs, &acc_vals)
                }
                _ => Self::eval_gate(*kind, fanin, &self.faulty),
            };
            if new != self.faulty[n as usize] {
                if self.faulty[n as usize] == self.good[n as usize] {
                    self.touched.push(n);
                }
                self.faulty[n as usize] = new;
                if self.output_mask[n as usize] {
                    diff |= self.good[n as usize] ^ new;
                }
                for &f in &self.fanouts[n as usize] {
                    push(&mut queue, &mut self.scheduled, &self.rank, f);
                }
            } else if self.faulty[n as usize] != self.good[n as usize] {
                // Value did not change on requeue but is still divergent;
                // keep it in the touched list (it already is).
            }
        }

        // Undo: restore the faulty mirror to the good values.
        for &n in &self.touched {
            self.faulty[n as usize] = self.good[n as usize];
        }
        self.touched.clear();
        diff
    }

    /// Simulates a batch of 64 patterns and returns the indices (into
    /// `faults`) of the faults detected by at least one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn detect_batch(&mut self, input_words: &[u64], faults: &[Fault]) -> Vec<usize> {
        self.run_good(input_words);
        let mut detected = Vec::new();
        for (i, f) in faults.iter().enumerate() {
            if self.fault_effect(f) != 0 {
                detected.push(i);
            }
        }
        detected
    }

    /// Like [`detect_batch`](FaultSim::detect_batch) but distributes the
    /// fault list across `pool` in fixed-size chunks.
    ///
    /// The good-circuit simulation runs once on a prototype copy; each
    /// chunk task then clones the prototype (good values and the restored
    /// faulty mirror included) and propagates its faults event-driven.
    /// Chunk boundaries depend only on `faults.len()`, and every fault's
    /// effect is independent of chunk placement (the faulty mirror is
    /// restored after each fault), so the detected set is bit-identical to
    /// the sequential [`detect_batch`](FaultSim::detect_batch) for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn detect_batch_par(
        &self,
        pool: &exec::Pool,
        input_words: &[u64],
        faults: &[Fault],
    ) -> Vec<usize> {
        let mut proto = self.clone();
        proto.run_good(input_words);
        // Chunk size from the data only (determinism), floored so the
        // per-chunk simulator clone is amortized over enough faults.
        let chunk = exec::reduce_chunk_size(faults.len()).max(16);
        let per_chunk = pool.par_chunks("fsim_fault_chunks", faults, chunk, |ci, slice| {
            let mut sim = proto.clone();
            let base = ci * chunk;
            let mut detected = Vec::new();
            for (j, f) in slice.iter().enumerate() {
                if sim.fault_effect(f) != 0 {
                    detected.push(base + j);
                }
            }
            detected
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Checks whether a single pattern (booleans over the combinational
    /// inputs) detects a single fault.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the combinational input count.
    pub fn detects(&mut self, pattern: &[bool], fault: &Fault) -> bool {
        let words: Vec<u64> = pattern.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.run_good(&words);
        self.fault_effect(fault) & 1 == 1
    }

    /// Number of nets in the compiled circuit.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    #[cfg(test)]
    fn good_value(&self, net: NetId) -> u64 {
        self.good[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    /// Reference implementation: full resimulation with the fault injected.
    fn full_resim_effect(c: &Circuit, input_words: &[u64], fault: &Fault) -> u64 {
        let lv = Levelization::build(c).unwrap();
        let eval = |values: &mut Vec<u64>, fault: Option<&Fault>| {
            for &id in lv.order() {
                if let Some(g) = c.gate(id) {
                    if let Some(Fault {
                        site: FaultSite::Stem(n),
                        ..
                    }) = fault
                    {
                        if *n == id {
                            continue;
                        }
                    }
                    let mut vals: Vec<u64> =
                        g.fanin.iter().map(|f| values[f.index()]).collect();
                    if let Some(Fault {
                        site: FaultSite::Pin { gate_out, pin },
                        stuck_at,
                    }) = fault
                    {
                        if *gate_out == id {
                            vals[*pin] = if *stuck_at { !0 } else { 0 };
                        }
                    }
                    values[id.index()] = match g.kind {
                        GateKind::And => vals.iter().fold(!0u64, |a, &x| a & x),
                        GateKind::Nand => !vals.iter().fold(!0u64, |a, &x| a & x),
                        GateKind::Or => vals.iter().fold(0u64, |a, &x| a | x),
                        GateKind::Nor => !vals.iter().fold(0u64, |a, &x| a | x),
                        GateKind::Xor => vals.iter().fold(0u64, |a, &x| a ^ x),
                        GateKind::Xnor => !vals.iter().fold(0u64, |a, &x| a ^ x),
                        GateKind::Not => !vals[0],
                        GateKind::Buf => vals[0],
                        GateKind::Const0 => 0,
                        GateKind::Const1 => !0,
                    };
                }
            }
        };
        let mut good = vec![0u64; c.num_nets()];
        for (net, &w) in c.comb_inputs().iter().zip(input_words) {
            good[net.index()] = w;
        }
        eval(&mut good, None);
        let mut bad = vec![0u64; c.num_nets()];
        for (net, &w) in c.comb_inputs().iter().zip(input_words) {
            bad[net.index()] = w;
        }
        if let FaultSite::Stem(n) = fault.site {
            bad[n.index()] = if fault.stuck_at { !0 } else { 0 };
        }
        eval(&mut bad, Some(fault));
        if let FaultSite::Stem(n) = fault.site {
            bad[n.index()] = if fault.stuck_at { !0 } else { 0 };
        }
        let mut diff = 0u64;
        for o in c.comb_outputs() {
            diff |= good[o.index()] ^ bad[o.index()];
        }
        diff
    }

    #[test]
    fn event_driven_matches_full_resimulation() {
        let mut rng = netlist::rng::SplitMix64::new(17);
        for seed in 0..6 {
            let c = netlist::generate::random_comb(seed, 10, 6, 150).unwrap();
            let faults = crate::collapse(&c, crate::enumerate_faults(&c));
            let mut sim = FaultSim::new(&c).unwrap();
            let words: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
            sim.run_good(&words);
            for f in &faults {
                let fast = sim.fault_effect(f);
                let slow = full_resim_effect(&c, &words, f);
                assert_eq!(fast, slow, "fault {f} in seed-{seed} circuit");
            }
        }
    }

    #[test]
    fn faulty_mirror_restored_between_faults() {
        let c = samples::c17();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut sim = FaultSim::new(&c).unwrap();
        let words = vec![0xDEAD_BEEFu64; 5];
        sim.run_good(&words);
        for f in &faults {
            let _ = sim.fault_effect(f);
            assert_eq!(sim.faulty, sim.good, "mirror must be restored after {f}");
        }
    }

    #[test]
    fn input_fault_requires_sensitized_path() {
        // y = AND(a, b): a/sa0 only detectable when a=1 AND b=1.
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(GateKind::And, vec![a, b], "y").unwrap();
        c.mark_output(y);
        let mut sim = FaultSim::new(&c).unwrap();
        let f = Fault::stem_sa0(a);
        assert!(sim.detects(&[true, true], &f));
        assert!(!sim.detects(&[true, false], &f));
        assert!(!sim.detects(&[false, true], &f));
    }

    #[test]
    fn pin_fault_affects_only_one_branch() {
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1").unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, b], "g2").unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut sim = FaultSim::new(&c).unwrap();
        let pin_fault = Fault {
            site: FaultSite::Pin { gate_out: g1, pin: 0 },
            stuck_at: false,
        };
        let words = vec![!0u64, !0u64];
        sim.run_good(&words);
        let diff = sim.fault_effect(&pin_fault);
        assert_eq!(diff, !0u64);
        let _ = sim.good_value(g2);
    }

    #[test]
    fn stem_fault_affects_all_branches() {
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1").unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, b], "g2").unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut sim = FaultSim::new(&c).unwrap();
        let f = Fault::stem_sa0(a);
        let words = vec![!0u64, 0u64];
        sim.run_good(&words);
        let diff = sim.fault_effect(&f);
        assert_eq!(diff, !0u64);
    }

    #[test]
    fn detect_batch_par_identical_for_1_2_8_threads() {
        let mut rng = netlist::rng::SplitMix64::new(23);
        for seed in 0..3 {
            let c = netlist::generate::random_comb(seed, 10, 6, 200).unwrap();
            let faults = crate::collapse(&c, crate::enumerate_faults(&c));
            let mut sim = FaultSim::new(&c).unwrap();
            let words: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
            let sequential = sim.detect_batch(&words, &faults);
            for threads in [1, 2, 8] {
                let pool = exec::Pool::with_threads(threads);
                let par = sim.detect_batch_par(&pool, &words, &faults);
                assert_eq!(par, sequential, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn detect_batch_matches_single_pattern_checks() {
        let c = samples::full_adder();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut sim = FaultSim::new(&c).unwrap();
        let mut words = vec![0u64; 3];
        for m in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if (m >> i) & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let batch = sim.detect_batch(&words, &faults);
        for (i, f) in faults.iter().enumerate() {
            let mut single = false;
            for m in 0..8u64 {
                let pattern: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
                if sim.detects(&pattern, f) {
                    single = true;
                    break;
                }
            }
            assert_eq!(batch.contains(&i), single, "fault {f}");
        }
    }
}
